"""Compatibility shim so editable installs work on environments without the
``wheel`` package (offline machines where PEP 660 editable wheels cannot be
built).  All real metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
