#!/usr/bin/env python
"""Independent multi-walk parallelism: real processes plus the virtual cluster.

Part 1 runs the paper's multi-start scheme for real on this machine's cores
(one process per walk, first solution terminates everyone) and compares the
wall-clock time with a single sequential walk.

Part 2 collects a pool of sequential runs and uses the virtual-cluster model
to predict how the same instance would behave on the paper's machines (HA8000
and the Blue Gene/P JUGENE) for core counts far beyond this laptop, printing a
miniature version of the paper's Table III / Figure 2.

Run with::

    python examples/parallel_speedup.py [order]
"""

from __future__ import annotations

import os
import sys

from repro import ASParameters, parallel_solve_costas, solve_costas
from repro.analysis.speedup import speedup_series
from repro.analysis.tables import format_table
from repro.experiments.base import costas_factory, costas_params
from repro.parallel.cluster import HA8000, JUGENE
from repro.parallel.runner import ExperimentRunner


def real_parallel_demo(order: int) -> None:
    workers = max(2, os.cpu_count() or 2)
    print(f"--- Real multi-walk on this machine ({workers} worker processes) ---")
    sequential = solve_costas(order, seed=0)
    print(f"sequential walk : {sequential.wall_time:.3f}s "
          f"({sequential.iterations} iterations)")
    parallel = parallel_solve_costas(order, n_workers=workers, seed_root=0)
    print(f"{workers}-walk parallel: {parallel.wall_time:.3f}s "
          f"(winner did {parallel.best.iterations} iterations, "
          f"{parallel.total_iterations} in total)")


def virtual_cluster_demo(order: int) -> None:
    print("\n--- Virtual cluster projection (independent multi-walk model) ---")
    runner = ExperimentRunner()
    pool = runner.collect_pool(costas_factory(order), costas_params(order), runs=100)
    print(f"collected {len(pool)} sequential walks "
          f"(avg {pool.summary('iterations').mean:.0f} iterations, "
          f"best {pool.summary('iterations').minimum:.0f})")

    rows = []
    for machine in (HA8000, JUGENE):
        times = {}
        core_counts = (1, 32, 64, 128, 256) if machine is HA8000 else (512, 1024, 2048)
        for cores in core_counts:
            if cores == 1:
                summary = runner.sequential_time_summary(pool, machine)
            else:
                summary = runner.parallel_time_summary(pool, machine, cores, 50, rng=cores)
            times[cores] = summary.mean
            rows.append([machine.name, cores, summary.mean, summary.median, summary.maximum])
        series = speedup_series(times)
        best = series[-1]
        print(f"{machine.name}: speed-up x{best.speedup:.1f} at {best.cores} cores "
              f"(ideal x{best.ideal:.0f}) relative to {series[0].cores} core(s)")

    print()
    print(format_table(
        ["Machine", "Cores", "avg (s)", "med (s)", "max (s)"],
        rows,
        float_format="{:.3f}",
        title=f"Simulated multi-walk times for CAP {order}",
    ))


if __name__ == "__main__":
    order = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    real_parallel_demo(order)
    virtual_cluster_demo(order)
