#!/usr/bin/env python
"""Adaptive Search on the classic CSPs the paper cites alongside the CAP.

The paper positions the Costas Array Problem relative to N-Queens, the
All-Interval Series and Magic Square (the benchmarks on which Adaptive Search
was originally evaluated against Comet and Dialectic Search).  This example
runs the same engine, unchanged, on all four problems — the point being that
the method is problem-independent and only the error-function model changes.

Run with::

    python examples/classic_csps.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core import ASParameters, AdaptiveSearch
from repro.models import (
    AllIntervalProblem,
    CostasProblem,
    MagicSquareProblem,
    NQueensProblem,
)


def main() -> None:
    engine = AdaptiveSearch()
    instances = [
        ("costas n=12", CostasProblem(12), ASParameters.for_costas(12)),
        ("n-queens n=100", NQueensProblem(100), ASParameters.for_problem_size(100)),
        ("n-queens n=500", NQueensProblem(500), ASParameters.for_problem_size(500)),
        ("all-interval n=14", AllIntervalProblem(14), ASParameters.for_problem_size(14)),
        (
            "magic-square 4x4",
            MagicSquareProblem(4),
            ASParameters.for_problem_size(16, plateau_probability=0.95),
        ),
        (
            "magic-square 5x5",
            MagicSquareProblem(5),
            ASParameters.for_problem_size(25, plateau_probability=0.95),
        ),
    ]

    rows = []
    for label, problem, params in instances:
        result = engine.solve(problem, seed=1, params=params)
        rows.append([
            label,
            "yes" if result.solved else "no",
            result.iterations,
            result.local_minima,
            result.wall_time,
        ])

    print(format_table(
        ["Instance", "Solved", "Iterations", "Local minima", "Time (s)"],
        rows,
        float_format="{:.3f}",
        title="One Adaptive Search engine, four problem models",
    ))

    # Show one of the solutions to make the point concrete.
    magic = MagicSquareProblem(4)
    result = AdaptiveSearch().solve(
        magic, seed=1, params=ASParameters.for_problem_size(16, plateau_probability=0.95)
    )
    if result.solved:
        magic.set_configuration(result.configuration)
        print("\nA 4x4 magic square found by the engine:")
        for row in magic.grid():
            print("   " + " ".join(f"{v:3d}" for v in row))


if __name__ == "__main__":
    main()
