#!/usr/bin/env python
"""Compare every solver in the repository on the same CAP instances.

Reproduces, at small scale, the comparisons of Sections III/IV-C and Table II:
Adaptive Search versus Dialectic Search, a plain tabu search, naive
random-restart hill climbing, and the complete CP (backtracking +
forward-checking) solver.  Each stochastic solver runs the same set of seeds.

Run with::

    python examples/solver_comparison.py [max_order] [runs]
"""

from __future__ import annotations

import sys

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.baselines import (
    CPBacktrackingSolver,
    DialecticSearch,
    RandomRestartHillClimbing,
    TabuSearch,
)
from repro.core import ASParameters, AdaptiveSearch
from repro.models import CostasProblem
from repro.parallel.seeds import spawned_seeds


def compare(order: int, runs: int) -> list[list]:
    seeds = spawned_seeds(runs, 2024 + order)
    rows = []

    def record(name: str, times: list[float], iterations: list[int], solved: int) -> None:
        time_summary = summarize(times) if times else None
        rows.append([
            order,
            name,
            f"{solved}/{runs}",
            time_summary.mean if time_summary else None,
            summarize(iterations).mean if iterations else None,
        ])

    solvers = {
        "adaptive-search": lambda seed: AdaptiveSearch().solve(
            CostasProblem(order), seed=seed, params=ASParameters.for_costas(order)
        ),
        "dialectic-search": lambda seed: DialecticSearch().solve(
            CostasProblem(order), seed=seed
        ),
        "tabu-search": lambda seed: TabuSearch().solve(CostasProblem(order), seed=seed),
        "random-restart": lambda seed: RandomRestartHillClimbing().solve(
            CostasProblem(order), seed=seed
        ),
    }
    for name, run in solvers.items():
        times, iterations, solved = [], [], 0
        for seed in seeds:
            result = run(seed)
            if result.solved:
                solved += 1
                times.append(result.wall_time)
                iterations.append(result.iterations)
        record(name, times, iterations, solved)

    # The complete solver is deterministic per value order; run it a few times
    # with randomised value ordering for a fair average.
    cp = CPBacktrackingSolver()
    times, nodes, solved = [], [], 0
    for seed in seeds[: max(3, runs // 2)]:
        result = cp.solve(order, seed=seed)
        if result.solved:
            solved += 1
            times.append(result.wall_time)
            nodes.append(result.extra["nodes"])
    rows.append([
        order,
        "cp-backtracking",
        f"{solved}/{max(3, runs // 2)}",
        summarize(times).mean if times else None,
        summarize(nodes).mean if nodes else None,
    ])
    return rows


def main(max_order: int = 11, runs: int = 5) -> None:
    all_rows = []
    for order in range(9, max_order + 1):
        all_rows.extend(compare(order, runs))
    print(format_table(
        ["Order", "Solver", "Solved", "Avg time (s)", "Avg iterations / nodes"],
        all_rows,
        float_format="{:.3f}",
        title="Solver comparison on the Costas Array Problem",
    ))
    print(
        "\nNote: the complete CP solver remains competitive at these small orders; "
        "the paper's 400x gap appears at order ~19, beyond what a pure-Python "
        "reproduction can time comfortably (see EXPERIMENTS.md)."
    )


if __name__ == "__main__":
    max_order = int(sys.argv[1]) if len(sys.argv) > 1 else 11
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    main(max_order, runs)
