#!/usr/bin/env python
"""Time-to-target analysis: why independent multi-walks scale (Figure 4).

Collects a pool of sequential Adaptive Search runs on one CAP instance, fits a
shifted exponential to the runtime distribution, and prints an ASCII
time-to-target plot for several simulated core counts — the reproduction of
Figure 4 plus the Verhoeven & Aarts argument that an exponential runtime
distribution makes independent multi-walk parallelism (nearly) linear.

Run with::

    python examples/time_to_target.py [order] [pool_runs]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis.ttt import (
    empirical_cdf,
    fit_shifted_exponential,
    ks_distance,
    predicted_speedup,
    sample_min_of_k,
)
from repro.experiments.base import costas_factory, costas_params
from repro.parallel.runner import ExperimentRunner


def ascii_cdf(label: str, values: np.ndarray, width: int = 50, bins: int = 12) -> None:
    xs, ps = empirical_cdf(values)
    print(f"\n  {label}")
    grid = np.linspace(xs[0], xs[-1], bins)
    for t in grid:
        p = float(np.searchsorted(xs, t, side="right")) / xs.size
        bar = "#" * int(round(p * width))
        print(f"    t <= {t:10.0f} it | {bar:<{width}} {p:5.1%}")


def main(order: int = 12, pool_runs: int = 150) -> None:
    runner = ExperimentRunner()
    print(f"Collecting {pool_runs} sequential runs of CAP {order} ...")
    pool = runner.collect_pool(costas_factory(order), costas_params(order), pool_runs)
    iterations = pool.iterations()
    print(f"  avg {iterations.mean():.0f} iterations, median {np.median(iterations):.0f}, "
          f"min {iterations.min():.0f}, max {iterations.max():.0f}")

    fit = fit_shifted_exponential(iterations)
    print(f"\nShifted-exponential fit: shift={fit.shift:.1f}, scale={fit.scale:.1f} "
          f"(mean {fit.mean:.1f} iterations)")
    print(f"Kolmogorov-Smirnov distance to the sample: {ks_distance(iterations, fit):.3f} "
          "(small = the distribution really is close to exponential)")

    print("\nPredicted multi-walk speed-ups under the exponential model:")
    for cores in (16, 32, 64, 128, 256, 1024):
        print(f"  {cores:5d} cores -> x{predicted_speedup(fit, cores):7.1f} "
              f"(ideal x{cores})")

    print("\nEmpirical time-to-target curves (bootstrap of the measured pool):")
    ascii_cdf("1 walk (sequential)", iterations)
    for cores in (32, 128):
        mins = sample_min_of_k(iterations, cores, 400, rng=cores)
        ascii_cdf(f"minimum of {cores} independent walks", mins)


if __name__ == "__main__":
    order = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    pool_runs = int(sys.argv[2]) if len(sys.argv) > 2 else 150
    main(order, pool_runs)
