#!/usr/bin/env python
"""The application behind the problem: Costas frequency-hopping radar waveforms.

Costas arrays were invented (Costas, 1984) to schedule the frequency hops of a
sonar/radar pulse so that the waveform's ambiguity function is as close as
possible to a "thumbtack": any misalignment in delay (range) *and* Doppler
(velocity) destroys the correlation, so targets can be resolved unambiguously.

This example builds a hopping pattern three ways — an algebraic Welch
construction, an Adaptive Search solution, and a deliberately bad non-Costas
pattern — and compares their discrete ambiguity side-lobes and their sampled
waveform ambiguity functions.

Run with::

    python examples/radar_waveform.py [order]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import solve_costas
from repro.costas import (
    ambiguity_matrix,
    construct,
    hop_waveform,
    max_offpeak_coincidences,
    sidelobe_histogram,
    waveform_ambiguity,
)


def describe(name: str, pattern: np.ndarray) -> None:
    peak = len(pattern)
    worst = max_offpeak_coincidences(pattern)
    hist = sidelobe_histogram(pattern)
    print(f"{name:28s} peak={peak:3d}  worst off-peak coincidences={worst}  "
          f"side-lobe histogram={hist}")


def waveform_metrics(pattern: np.ndarray) -> tuple[float, float]:
    """Peak side-lobe level (linear and dB) of the sampled ambiguity function."""
    _, x = hop_waveform(pattern, samples_per_chip=8)
    A = waveform_ambiguity(x, n_doppler=41, max_doppler=1.0)
    n = x.size
    mask = np.ones_like(A, dtype=bool)
    # Blank a small region around the main peak before measuring side-lobes.
    mask[19:22, n - 4 : n + 3] = False
    psl = float(A[mask].max())
    return psl, 20 * np.log10(max(psl, 1e-12))


def main(order: int = 10) -> None:
    print(f"Frequency-hopping patterns of length {order}\n")

    constructed = construct(order).to_array()
    searched = solve_costas(order, seed=7).as_costas_array().to_array()
    # A deliberately poor pattern: a linear chirp-like staircase.
    staircase = np.arange(order)

    describe("Welch/Golomb construction", constructed)
    describe("Adaptive Search solution", searched)
    describe("Linear staircase (bad)", staircase)

    print("\nSampled waveform ambiguity peak side-lobe levels:")
    for name, pattern in (
        ("construction", constructed),
        ("adaptive search", searched),
        ("staircase", staircase),
    ):
        psl, psl_db = waveform_metrics(pattern)
        print(f"  {name:18s} PSL = {psl:.3f}  ({psl_db:+.1f} dB)")

    print("\nDiscrete ambiguity matrix of the Adaptive Search pattern "
          "(rows = Doppler shift, cols = delay):")
    A = ambiguity_matrix(searched)
    centre = order - 1
    window = A[centre - 4 : centre + 5, centre - 4 : centre + 5]
    for row in window[::-1]:
        print("  " + " ".join(f"{v:2d}" for v in row))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10)
