#!/usr/bin/env python
"""Quickstart: find a Costas array with Adaptive Search and inspect it.

This reproduces, at laptop scale, what Section IV of the paper does: model the
Costas Array Problem as a permutation with difference-triangle error
functions, run the Adaptive Search engine, and validate the result.

Run with::

    python examples/quickstart.py [order] [seed]
"""

from __future__ import annotations

import sys

from repro import ASParameters, solve_costas
from repro.costas import construct, is_costas, known_count, solution_density


def main(order: int = 13, seed: int = 42) -> None:
    print(f"Solving the Costas Array Problem of order {order} (seed {seed})")
    print(
        f"  published number of solutions: {known_count(order)}"
        f"  (density {solution_density(order):.3g} of all permutations)"
    )

    # 1. Local search (the paper's method).
    result = solve_costas(order, seed=seed)
    print("\nAdaptive Search result:")
    print(" ", result.result.summary())
    array = result.as_costas_array()
    print("  permutation (1-based):", list(array.to_one_based()))
    assert is_costas(array.to_array())
    print(array.render())

    # 2. For comparison: an algebraic construction when one applies.
    try:
        constructed = construct(order)
    except Exception as exc:  # ConstructionError for orders with no known construction
        print(f"\nNo algebraic construction applies to order {order}: {exc}")
    else:
        print("\nAn algebraically constructed Costas array of the same order:")
        print("  permutation (1-based):", list(constructed.to_one_based()))

    # 3. Show how the tuned parameters look, and how to override them.
    params = ASParameters.for_costas(order)
    print("\nEngine parameters used (paper Section IV-B tuning):")
    print(f"  tabu tenure          : {params.tabu_tenure}")
    print(f"  reset limit / share  : {params.reset_limit} / {params.reset_percentage:.0%}")
    print(f"  plateau probability  : {params.plateau_probability:.0%}")
    print(f"  uphill escape prob.  : {params.local_min_accept_probability:.0%}")
    print(f"  restart period       : {params.restart_limit}")


if __name__ == "__main__":
    order = int(sys.argv[1]) if len(sys.argv) > 1 else 13
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42
    main(order, seed)
