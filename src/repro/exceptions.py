"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that callers can
catch any failure originating from this package with a single ``except`` clause
while still being able to discriminate finer-grained conditions.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidPermutationError",
    "ConstructionError",
    "ModelError",
    "SolverError",
    "BudgetExhaustedError",
    "ParallelExecutionError",
    "AnalysisError",
]


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class InvalidPermutationError(ReproError, ValueError):
    """A sequence that was expected to be a permutation of ``0..n-1`` is not."""


class ConstructionError(ReproError, ValueError):
    """An algebraic Costas construction cannot be applied to the requested order.

    For example the Welch construction requires ``n + 1`` to be prime, and the
    Golomb/Lempel constructions require ``n + 2`` to be a prime power.
    """


class ModelError(ReproError, ValueError):
    """A local-search problem model was configured inconsistently."""


class SolverError(ReproError, RuntimeError):
    """A solver failed in a way that is not simply "budget exhausted"."""


class BudgetExhaustedError(SolverError):
    """A solver stopped because its iteration / restart / time budget ran out.

    The partially-completed result is attached as :attr:`result` when available
    so callers may still inspect the best configuration reached.
    """

    def __init__(self, message: str, result=None):
        super().__init__(message)
        self.result = result


class ParallelExecutionError(ReproError, RuntimeError):
    """A failure in the parallel multi-walk machinery (worker crash, bad reply)."""


class AnalysisError(ReproError, ValueError):
    """Statistical analysis was asked to operate on unusable data."""
