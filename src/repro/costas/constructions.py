"""Algebraic Costas array constructions (Welch, Lempel, Golomb) and corner deletion.

The paper recalls that constructive methods exist for many orders (Welch for
``n = p - 1`` with ``p`` prime, Golomb/Lempel for ``n = q - 2`` with ``q`` a
prime power, plus corner-deletion corollaries) but not for all — which is why
order 32 is still open and why local search is an interesting alternative.
This module provides those constructions so that

* the test-suite has an independent source of ground-truth Costas arrays of
  many orders (every construction output is cross-checked against
  :func:`repro.costas.array.is_costas`);
* examples can seed radar-waveform demonstrations with genuine Costas arrays
  of non-trivial size without running a search;
* enumeration results can be sanity-checked (constructed arrays must appear in
  the exhaustive enumeration for small orders).

All functions return :class:`~repro.costas.array.CostasArray` instances
(0-based permutations).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.costas.array import CostasArray
from repro.costas.galois import GaloisField, is_prime, is_prime_power, primitive_root
from repro.exceptions import ConstructionError

__all__ = [
    "welch_construction",
    "lempel_construction",
    "golomb_construction",
    "corner_deletion",
    "construct",
    "available_constructions",
    "constructible_orders",
]


def welch_construction(order: int, *, root: Optional[int] = None, shift: int = 0) -> CostasArray:
    """Exponential Welch construction ``W1``: a Costas array of order ``p - 1``.

    Requires ``order + 1`` to be prime.  With ``g`` a primitive root modulo
    ``p = order + 1``, the permutation is ``a_i = g^{i + shift} mod p`` for
    ``i = 1 .. p-1`` (1-based values), converted to the library's 0-based
    convention.  Any cyclic *shift* of the exponent yields another Costas
    array, giving ``p - 1`` distinct W1 arrays per primitive root.

    Parameters
    ----------
    order:
        Desired array order ``n``; ``n + 1`` must be prime.
    root:
        Primitive root modulo ``n + 1`` to use; default is the smallest one.
    shift:
        Exponent offset (0 by default).
    """
    p = order + 1
    if order < 1:
        raise ConstructionError(f"order must be positive, got {order}")
    if not is_prime(p):
        raise ConstructionError(
            f"Welch construction needs order + 1 prime; {p} is not prime"
        )
    g = primitive_root(p) if root is None else root
    if root is not None:
        # Validate the caller-supplied root.
        field = GaloisField(p)
        if not field.is_primitive(root % p):
            raise ConstructionError(f"{root} is not a primitive root modulo {p}")
    values = [pow(g, i + shift, p) for i in range(1, p)]
    return CostasArray.from_one_based(values)


def lempel_construction(order: int, *, generator: Optional[int] = None) -> CostasArray:
    """Lempel construction ``L2``: a symmetric Costas array of order ``q - 2``.

    Requires ``order + 2`` to be a prime power ``q``.  With ``α`` primitive in
    :math:`GF(q)`, the array has a mark at ``(i, j)`` iff ``α^i + α^j = 1``
    for ``1 <= i, j <= q - 2``; because the map is an involution the resulting
    array is symmetric about the main diagonal.
    """
    q = order + 2
    if order < 1:
        raise ConstructionError(f"order must be positive, got {order}")
    ok, _, _ = is_prime_power(q)
    if not ok:
        raise ConstructionError(
            f"Lempel construction needs order + 2 to be a prime power; {q} is not"
        )
    field = GaloisField.of_order(q)
    alpha = field.generator if generator is None else generator
    if generator is not None and not field.is_primitive(alpha):
        raise ConstructionError(f"{generator} is not primitive in GF({q})")
    return _two_generator_array(field, alpha, alpha)


def golomb_construction(
    order: int,
    *,
    alpha: Optional[int] = None,
    beta: Optional[int] = None,
) -> CostasArray:
    """Golomb construction ``G2``: a Costas array of order ``q - 2``.

    Requires ``order + 2`` to be a prime power ``q``.  With ``α`` and ``β``
    primitive elements of :math:`GF(q)` (not necessarily distinct — ``α = β``
    recovers the Lempel construction), the array has a mark at ``(i, j)`` iff
    ``α^i + β^j = 1``.  When the field has at least two primitive elements and
    none are supplied, two distinct ones are chosen so the result generally
    differs from :func:`lempel_construction`.
    """
    q = order + 2
    if order < 1:
        raise ConstructionError(f"order must be positive, got {order}")
    ok, _, _ = is_prime_power(q)
    if not ok:
        raise ConstructionError(
            f"Golomb construction needs order + 2 to be a prime power; {q} is not"
        )
    field = GaloisField.of_order(q)
    primitives = field.primitive_elements()
    if alpha is None:
        alpha = primitives[0]
    if beta is None:
        beta = primitives[1] if len(primitives) > 1 else primitives[0]
    for name, g in (("alpha", alpha), ("beta", beta)):
        if not field.is_primitive(g):
            raise ConstructionError(f"{name}={g} is not primitive in GF({q})")
    return _two_generator_array(field, alpha, beta)


def _two_generator_array(field: GaloisField, alpha: int, beta: int) -> CostasArray:
    """Common core of the Lempel/Golomb constructions.

    For every ``i`` in ``1 .. q-2`` there is exactly one ``j`` in ``1 .. q-2``
    with ``α^i + β^j = 1`` (since ``1 - α^i`` is non-zero whenever
    ``α^i != 1``), and the map ``i -> j`` is a bijection.
    """
    q = field.q
    one = 1
    perm = np.empty(q - 2, dtype=np.int64)
    for i in range(1, q - 1):
        ai = field.exp(i, alpha) if alpha == field.generator else field.power(alpha, i)
        rhs = field.sub(one, ai)
        if rhs == 0:  # pragma: no cover - impossible for 1 <= i <= q-2
            raise ConstructionError("unexpected zero while building Golomb array")
        j = field.log(rhs, beta)
        if not 1 <= j <= q - 2:  # pragma: no cover - implies alpha^i == 0
            raise ConstructionError("Golomb construction produced an out-of-range index")
        perm[i - 1] = j - 1
    return CostasArray.from_permutation(perm)


def corner_deletion(array: CostasArray, *, corner: str = "auto") -> CostasArray:
    """Remove a corner mark to obtain a Costas array of order ``n - 1``.

    If a Costas array has a mark in one of the four corners of the grid,
    deleting that mark's row and column leaves the pairwise displacement
    vectors of the remaining marks untouched, so the result is again a Costas
    array.  This is how the classical ``W2``/``G3`` variants are obtained from
    ``W1``/``G2``.

    Parameters
    ----------
    array:
        The Costas array to shrink.
    corner:
        One of ``"auto"`` (use the first corner that holds a mark),
        ``"bottom-left"``, ``"top-left"``, ``"bottom-right"``, ``"top-right"``.

    Raises
    ------
    ConstructionError
        If the requested corner (or, for ``"auto"``, every corner) is empty.
    """
    p = list(array.permutation)
    n = len(p)
    corners = {
        "bottom-left": (0, 0),
        "top-left": (0, n - 1),
        "bottom-right": (n - 1, 0),
        "top-right": (n - 1, n - 1),
    }
    if corner == "auto":
        candidates = list(corners.items())
    else:
        if corner not in corners:
            raise ConstructionError(
                f"unknown corner {corner!r}; expected one of {sorted(corners)} or 'auto'"
            )
        candidates = [(corner, corners[corner])]

    for _, (col, row) in candidates:
        if p[col] != row:
            continue
        remaining = p[:col] + p[col + 1 :]
        # Renumber values: removing the extreme row shifts the values above it
        # down by one (or leaves them unchanged if the removed row was the top).
        shrunk = [v - 1 if v > row else v for v in remaining]
        return CostasArray.from_permutation(shrunk)
    raise ConstructionError(
        "corner deletion requires a mark in the requested corner"
        if corner != "auto"
        else "array has no corner mark; corner deletion does not apply"
    )


def available_constructions(order: int) -> List[str]:
    """Names of the direct constructions applicable to *order*.

    ``"welch"`` when ``order + 1`` is prime, ``"lempel"``/``"golomb"`` when
    ``order + 2`` is a prime power.  Corner-deletion corollaries are not
    listed because their applicability depends on the parent array.
    """
    out: List[str] = []
    if order >= 1 and is_prime(order + 1):
        out.append("welch")
    if order >= 1 and is_prime_power(order + 2)[0]:
        out.append("lempel")
        out.append("golomb")
    return out


def constructible_orders(max_order: int) -> Dict[int, List[str]]:
    """Map each order up to *max_order* to its applicable direct constructions."""
    return {
        n: names for n in range(1, max_order + 1) if (names := available_constructions(n))
    }


_BUILDERS: Dict[str, Callable[[int], CostasArray]] = {
    "welch": welch_construction,
    "lempel": lempel_construction,
    "golomb": golomb_construction,
}


def construct(order: int, *, method: Optional[str] = None) -> CostasArray:
    """Build a Costas array of the requested order by any applicable construction.

    With ``method=None`` the constructions are tried in the order Welch,
    Lempel, Golomb, then corner deletion from a constructible array of order
    ``order + 1``.  Raises :class:`ConstructionError` when no known
    construction applies (e.g. order 32).
    """
    if method is not None:
        if method not in _BUILDERS:
            raise ConstructionError(
                f"unknown construction {method!r}; expected one of {sorted(_BUILDERS)}"
            )
        return _BUILDERS[method](order)

    for name in ("welch", "lempel", "golomb"):
        if name in available_constructions(order):
            return _BUILDERS[name](order)
    # Corner-deletion fallback: build order + 1 directly and delete a corner.
    parent_methods = available_constructions(order + 1)
    for name in parent_methods:
        try:
            return corner_deletion(_BUILDERS[name](order + 1))
        except ConstructionError:
            continue
    raise ConstructionError(
        f"no known algebraic construction applies to order {order}"
    )
