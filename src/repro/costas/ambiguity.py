"""Radar-oriented analysis of Costas arrays: coincidence and ambiguity functions.

Costas arrays were introduced (Costas, 1984) to design frequency-hopping
sonar/radar waveforms whose *ambiguity function* — the response of a matched
filter to a time- and frequency-shifted copy of the signal — has an ideal
"thumbtack" shape: a single peak at zero shift and at most one coincidence for
any other shift.  This is exactly the combinatorial Costas property: shifting
the ``n x n`` mark grid by ``(dt, df)`` and counting overlapping marks gives at
most one hit for every non-zero shift.

This module provides the discrete (grid-level) quantities used by the examples
and by the property-based tests (a permutation is a Costas array iff its
maximum off-peak coincidence count is at most 1), plus a simple baseband
frequency-hop waveform synthesiser and its sampled ambiguity function, used by
``examples/radar_waveform.py`` to connect the abstract problem back to the
application the paper's introduction motivates it with.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.costas.array import as_permutation

__all__ = [
    "coincidence_count",
    "ambiguity_matrix",
    "max_offpeak_coincidences",
    "sidelobe_histogram",
    "hop_waveform",
    "waveform_ambiguity",
]


def coincidence_count(perm: Sequence[int] | np.ndarray, dt: int, df: int) -> int:
    """Number of marks that coincide when the grid is shifted by ``(dt, df)``.

    ``dt`` shifts columns (time), ``df`` shifts rows (frequency).  The count at
    ``(0, 0)`` is always ``n``; a permutation is a Costas array iff the count
    is at most 1 for every other shift.
    """
    p = as_permutation(perm, copy=False)
    n = p.size
    count = 0
    for c in range(n):
        c2 = c + dt
        if 0 <= c2 < n and p[c] + df == p[c2]:
            count += 1
    return count


def ambiguity_matrix(perm: Sequence[int] | np.ndarray) -> np.ndarray:
    """Full grid of coincidence counts for shifts ``dt, df in -(n-1) .. n-1``.

    The returned matrix ``A`` has shape ``(2n-1, 2n-1)`` with
    ``A[df + n - 1, dt + n - 1] = coincidence_count(perm, dt, df)``.
    """
    p = as_permutation(perm, copy=False)
    n = p.size
    A = np.zeros((2 * n - 1, 2 * n - 1), dtype=np.int64)
    cols = np.arange(n)
    for dt in range(-(n - 1), n):
        c2 = cols + dt
        valid = (c2 >= 0) & (c2 < n)
        if not valid.any():
            continue
        dfs = p[c2[valid]] - p[cols[valid]]
        np.add.at(A[:, dt + n - 1], dfs + n - 1, 1)
    return A


def max_offpeak_coincidences(perm: Sequence[int] | np.ndarray) -> int:
    """Largest coincidence count over all non-zero shifts (≤ 1 iff Costas)."""
    p = as_permutation(perm, copy=False)
    n = p.size
    A = ambiguity_matrix(p)
    A[n - 1, n - 1] = 0  # mask the main peak
    return int(A.max())


def sidelobe_histogram(perm: Sequence[int] | np.ndarray) -> dict[int, int]:
    """Histogram of off-peak coincidence counts (how many shifts give 0, 1, 2… hits)."""
    p = as_permutation(perm, copy=False)
    n = p.size
    A = ambiguity_matrix(p)
    A[n - 1, n - 1] = -1  # exclude the main peak from the histogram
    values, counts = np.unique(A[A >= 0], return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def hop_waveform(
    perm: Sequence[int] | np.ndarray,
    *,
    samples_per_chip: int = 16,
    chip_duration: float = 1.0,
    base_frequency: float = 1.0,
    frequency_step: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Synthesise the complex baseband frequency-hopping waveform of a pattern.

    Chip ``c`` transmits a complex exponential at frequency
    ``base_frequency + perm[c] * frequency_step`` for ``chip_duration`` seconds.

    Returns
    -------
    (t, x):
        Sample times and complex samples, each of length
        ``n * samples_per_chip``.
    """
    p = as_permutation(perm, copy=False)
    n = p.size
    if samples_per_chip < 1:
        raise ValueError(f"samples_per_chip must be >= 1, got {samples_per_chip}")
    total = n * samples_per_chip
    t = np.arange(total) * (chip_duration / samples_per_chip)
    chip_index = np.repeat(np.arange(n), samples_per_chip)
    freqs = base_frequency + p[chip_index] * frequency_step
    phase = 2.0 * np.pi * freqs * (t - chip_index * chip_duration)
    x = np.exp(1j * phase)
    return t, x


def waveform_ambiguity(
    x: np.ndarray,
    *,
    n_doppler: int = 64,
    max_doppler: float = 1.0,
    sample_rate: float = 1.0,
) -> np.ndarray:
    """Sampled magnitude of the narrowband ambiguity function of waveform *x*.

    ``A[k, l]`` is ``|sum_t x(t) conj(x(t - τ_l)) e^{j 2π ν_k t}|`` over the
    discrete delays ``τ_l`` (all integer sample lags) and ``n_doppler``
    Doppler shifts spread uniformly in ``[-max_doppler, +max_doppler]``.
    The output is normalised so the zero-delay / zero-Doppler peak is 1.
    """
    x = np.asarray(x, dtype=np.complex128)
    if x.ndim != 1 or x.size == 0:
        raise ValueError("waveform must be a non-empty 1-D complex array")
    n = x.size
    lags = np.arange(-(n - 1), n)
    dopplers = np.linspace(-max_doppler, max_doppler, n_doppler)
    t = np.arange(n) / sample_rate
    A = np.empty((n_doppler, lags.size), dtype=np.float64)
    for li, lag in enumerate(lags):
        if lag >= 0:
            prod = x[lag:] * np.conj(x[: n - lag])
            times = t[lag:]
        else:
            prod = x[: n + lag] * np.conj(x[-lag:])
            times = t[: n + lag]
        # One inner product per Doppler bin; vectorised over time samples.
        phases = np.exp(1j * 2.0 * np.pi * np.outer(dopplers, times))
        A[:, li] = np.abs(phases @ prod)
    peak = A.max()
    if peak > 0:
        A /= peak
    return A
