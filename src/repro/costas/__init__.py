"""Costas array domain: representation, validation, constructions and analysis.

A *Costas array* of order ``n`` is an ``n x n`` permutation matrix whose
:math:`n(n-1)/2` displacement vectors between pairs of marks are all distinct.
Equivalently, viewing the array as a permutation ``p`` (one mark per column,
``p[i]`` giving the row of the mark in column ``i``), every row ``d`` of the
*difference triangle* ``p[i+d] - p[i]`` contains no repeated value.

This subpackage provides:

* :class:`~repro.costas.array.CostasArray` — a validated, immutable Costas array
  value object with conversions, symmetries and export helpers;
* :func:`~repro.costas.array.is_costas` / :func:`~repro.costas.array.violation_count`
  — cheap checks usable on raw permutations;
* :class:`~repro.costas.triangle.DifferenceTriangle` — an incrementally
  maintainable difference-triangle/count structure (the data structure at the
  heart of the Adaptive Search model of the paper);
* :mod:`~repro.costas.constructions` — the Welch and Golomb/Lempel algebraic
  constructions (with a small finite-field substrate in
  :mod:`~repro.costas.galois`);
* :mod:`~repro.costas.enumeration` — exhaustive backtracking enumeration and
  counting, plus symmetry-class reduction;
* :mod:`~repro.costas.database` — published Costas array counts per order;
* :mod:`~repro.costas.ambiguity` — radar-oriented auto-ambiguity utilities
  (the application that motivated Costas arrays).
"""

from repro.costas.array import (
    CostasArray,
    as_permutation,
    difference_triangle,
    is_costas,
    is_permutation,
    random_permutation,
    violation_count,
    violating_pairs,
)
from repro.costas.triangle import DifferenceTriangle
from repro.costas.constructions import (
    construct,
    available_constructions,
    golomb_construction,
    lempel_construction,
    welch_construction,
)
from repro.costas.enumeration import (
    count_costas_arrays,
    enumerate_costas_arrays,
    equivalence_classes,
)
from repro.costas.symmetry import (
    all_symmetries,
    canonical_form,
    complement,
    reverse,
    transpose,
)
from repro.costas.database import (
    KNOWN_COSTAS_COUNTS,
    KNOWN_EQUIVALENCE_CLASS_COUNTS,
    known_class_count,
    known_count,
    solution_density,
)
from repro.costas.ambiguity import (
    ambiguity_matrix,
    coincidence_count,
    hop_waveform,
    max_offpeak_coincidences,
    sidelobe_histogram,
    waveform_ambiguity,
)

__all__ = [
    "CostasArray",
    "DifferenceTriangle",
    "as_permutation",
    "difference_triangle",
    "is_costas",
    "is_permutation",
    "random_permutation",
    "violation_count",
    "violating_pairs",
    "construct",
    "available_constructions",
    "welch_construction",
    "lempel_construction",
    "golomb_construction",
    "enumerate_costas_arrays",
    "count_costas_arrays",
    "equivalence_classes",
    "all_symmetries",
    "canonical_form",
    "reverse",
    "complement",
    "transpose",
    "KNOWN_COSTAS_COUNTS",
    "KNOWN_EQUIVALENCE_CLASS_COUNTS",
    "known_count",
    "known_class_count",
    "solution_density",
    "ambiguity_matrix",
    "coincidence_count",
    "hop_waveform",
    "max_offpeak_coincidences",
    "sidelobe_histogram",
    "waveform_ambiguity",
]
