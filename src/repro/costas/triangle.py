"""Incrementally-maintained difference triangle.

This is the central data structure of the Adaptive Search model of the Costas
Array Problem: the cost of a configuration is a weighted count of repeated
values in the rows of the difference triangle, and evaluating a candidate swap
must be much cheaper than recomputing the whole triangle.

:class:`DifferenceTriangle` keeps, for every row ``d``, a table of occurrence
counts of each difference value.  A swap of two columns only touches at most
four cells per row (the cells whose start or end index is one of the swapped
columns), so applying or un-applying a swap costs ``O(rows)`` instead of
``O(n^2)``.  The structure also implements the paper's two model refinements:

* the weighting function ``ERR(d)`` (``1`` in the basic model,
  ``n^2 - d^2`` in the optimised model), via the ``err_weight`` parameter;
* Chang's observation that rows ``d > (n-1)//2`` are redundant, via the
  ``max_distance`` parameter.

The full recomputation path (:meth:`recompute`) is kept deliberately simple and
is used by the test-suite to cross-check every incremental update.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.costas.array import as_permutation

__all__ = ["DifferenceTriangle", "err_weight_constant", "err_weight_quadratic"]


def err_weight_constant(n: int) -> np.ndarray:
    """Weight vector for the basic model: ``ERR(d) = 1`` for every distance."""
    return np.ones(n, dtype=np.int64)


def err_weight_quadratic(n: int) -> np.ndarray:
    """Weight vector for the optimised model: ``ERR(d) = n^2 - d^2``.

    Index ``d`` of the returned vector holds ``ERR(d)``; index 0 is unused.
    Errors at short distances (rows with many cells) are penalised more, which
    the paper reports to be worth ~17% of the solving time.
    """
    d = np.arange(n, dtype=np.int64)
    return n * n - d * d


class DifferenceTriangle:
    """Difference triangle of a permutation with incremental swap updates.

    Parameters
    ----------
    perm:
        Initial 0-based permutation.
    max_distance:
        Largest row ``d`` taken into account.  ``None`` means all rows
        (``n - 1``).  Pass ``(n - 1) // 2`` for Chang's optimisation.
    err_weight:
        Either ``None`` (all weights 1), a callable ``f(n) -> array`` indexed by
        distance, or an explicit per-distance weight array of length ``>= n``.
    """

    def __init__(
        self,
        perm: Sequence[int] | np.ndarray,
        *,
        max_distance: Optional[int] = None,
        err_weight: None | Callable[[int], np.ndarray] | Sequence[int] | np.ndarray = None,
    ) -> None:
        p = as_permutation(perm)
        self._perm = p.copy()
        n = int(p.size)
        self._n = n
        if max_distance is None:
            max_distance = n - 1
        if not 0 <= max_distance <= n - 1:
            raise ValueError(f"max_distance must be in [0, {n - 1}], got {max_distance}")
        self._max_d = int(max_distance)

        if err_weight is None:
            weights = err_weight_constant(n)
        elif callable(err_weight):
            weights = np.asarray(err_weight(n), dtype=np.int64)
        else:
            weights = np.asarray(err_weight, dtype=np.int64)
        if weights.size < n:
            raise ValueError(
                f"err_weight must provide at least {n} entries, got {weights.size}"
            )
        self._weights = weights[:n].copy()

        # counts[d, v + (n-1)] = occurrences of difference v in row d.
        self._counts = np.zeros((self._max_d + 1, 2 * n - 1), dtype=np.int64)
        self._offset = n - 1
        # Per-row duplicate counts (unweighted) and the weighted total.
        self._row_dups = np.zeros(self._max_d + 1, dtype=np.int64)
        self._weighted_cost = 0
        self._rebuild()

    # ------------------------------------------------------------------ state
    @property
    def order(self) -> int:
        """Order ``n`` of the underlying permutation."""
        return self._n

    @property
    def max_distance(self) -> int:
        """Largest row distance taken into account."""
        return self._max_d

    @property
    def permutation(self) -> np.ndarray:
        """A copy of the current permutation."""
        return self._perm.copy()

    @property
    def cost(self) -> int:
        """Weighted cost: ``sum_d ERR(d) * (#repeated occurrences in row d)``."""
        return int(self._weighted_cost)

    @property
    def duplicate_count(self) -> int:
        """Unweighted number of repeated occurrences over the tracked rows."""
        return int(self._row_dups.sum())

    def is_solution(self) -> bool:
        """``True`` iff no tracked row contains a repeated difference.

        With ``max_distance >= (n - 1) // 2`` this is equivalent to the full
        Costas property (Chang's remark).
        """
        return self._weighted_cost == 0

    def row_values(self, d: int) -> np.ndarray:
        """Current values of row *d* of the triangle (length ``n - d``)."""
        if not 1 <= d <= self._n - 1:
            raise ValueError(f"row distance must be in [1, {self._n - 1}], got {d}")
        return self._perm[d:] - self._perm[:-d]

    def row_duplicates(self, d: int) -> int:
        """Unweighted duplicate count of tracked row *d*."""
        if not 1 <= d <= self._max_d:
            raise ValueError(f"row distance must be in [1, {self._max_d}], got {d}")
        return int(self._row_dups[d])

    # ------------------------------------------------------------ full rebuild
    def _rebuild(self) -> None:
        self._counts[:] = 0
        self._row_dups[:] = 0
        self._weighted_cost = 0
        p, off = self._perm, self._offset
        for d in range(1, self._max_d + 1):
            row = p[d:] - p[:-d]
            np.add.at(self._counts[d], row + off, 1)
            dups = int(np.sum(self._counts[d][self._counts[d] > 1] - 1))
            self._row_dups[d] = dups
            self._weighted_cost += int(self._weights[d]) * dups

    def recompute(self) -> int:
        """Recompute everything from scratch and return the weighted cost.

        Used by tests to validate the incremental bookkeeping; production code
        never needs to call it.
        """
        self._rebuild()
        return self.cost

    def set_permutation(self, perm: Sequence[int] | np.ndarray) -> None:
        """Replace the whole permutation (e.g. after a reset or restart)."""
        p = as_permutation(perm)
        if p.size != self._n:
            raise ValueError(
                f"expected a permutation of order {self._n}, got order {p.size}"
            )
        self._perm = p.copy()
        self._rebuild()

    # ------------------------------------------------------------- incremental
    def _affected_starts(self, d: int, i: int, j: int) -> List[int]:
        last = self._n - 1 - d
        starts = set()
        for s in (i, i - d, j, j - d):
            if 0 <= s <= last:
                starts.add(s)
        return list(starts)

    def _remove_cell(self, d: int, s: int) -> None:
        v = int(self._perm[s + d] - self._perm[s]) + self._offset
        c = self._counts[d, v]
        self._counts[d, v] = c - 1
        if c >= 2:
            self._row_dups[d] -= 1
            self._weighted_cost -= int(self._weights[d])

    def _add_cell(self, d: int, s: int) -> None:
        v = int(self._perm[s + d] - self._perm[s]) + self._offset
        c = self._counts[d, v]
        self._counts[d, v] = c + 1
        if c >= 1:
            self._row_dups[d] += 1
            self._weighted_cost += int(self._weights[d])

    def swap(self, i: int, j: int) -> int:
        """Swap columns *i* and *j* and return the new weighted cost.

        Runs in ``O(max_distance)`` time: only the triangle cells whose start or
        end column is *i* or *j* are touched.
        """
        n = self._n
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"swap indices must be in [0, {n - 1}], got ({i}, {j})")
        if i == j:
            return self.cost
        affected = [
            (d, self._affected_starts(d, i, j)) for d in range(1, self._max_d + 1)
        ]
        for d, starts in affected:
            for s in starts:
                self._remove_cell(d, s)
        self._perm[i], self._perm[j] = self._perm[j], self._perm[i]
        for d, starts in affected:
            for s in starts:
                self._add_cell(d, s)
        return self.cost

    def swap_delta(self, i: int, j: int) -> int:
        """Cost change that :meth:`swap` *would* cause, without changing state."""
        before = self.cost
        self.swap(i, j)
        after = self.cost
        self.swap(i, j)
        return after - before

    def cost_if_swapped(self, i: int, j: int) -> int:
        """Weighted cost of the configuration obtained by swapping *i* and *j*."""
        return self.cost + self.swap_delta(i, j)

    # --------------------------------------------------------- variable errors
    def variable_errors(self) -> np.ndarray:
        """Per-column error vector following the paper's projection rule.

        Scanning each tracked row left to right, every cell whose value was
        already encountered earlier in the row adds ``ERR(d)`` to the error of
        **both** columns of the cell (``s`` and ``s + d``).
        """
        p = self._perm
        n = self._n
        errs = np.zeros(n, dtype=np.int64)
        for d in range(1, self._max_d + 1):
            row = p[d:] - p[:-d]
            if row.size <= 1:
                continue
            _, first_idx = np.unique(row, return_index=True)
            mask = np.ones(row.size, dtype=bool)
            mask[first_idx] = False
            if not mask.any():
                continue
            w = int(self._weights[d])
            repeats = np.nonzero(mask)[0]
            np.add.at(errs, repeats, w)
            np.add.at(errs, repeats + d, w)
        return errs

    def max_error_variable(self, rng: np.random.Generator, tabu: Optional[np.ndarray] = None) -> int:
        """Index of the column with the largest error, breaking ties uniformly.

        Columns flagged ``True`` in *tabu* are excluded; if every column is
        tabu the restriction is dropped (mirroring the reference C library,
        which never deadlocks on an all-tabu configuration).
        """
        errs = self.variable_errors()
        if tabu is not None and tabu.any() and not tabu.all():
            masked = errs.copy()
            masked[tabu] = -1
            errs = masked
        best = int(errs.max())
        candidates = np.nonzero(errs == best)[0]
        return int(rng.choice(candidates))

    # ----------------------------------------------------------------- dunders
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DifferenceTriangle(order={self._n}, max_distance={self._max_d}, "
            f"cost={self.cost})"
        )
