"""Minimal finite-field (Galois field) arithmetic substrate.

The algebraic Costas constructions of Welch, Lempel and Golomb are stated over
finite fields: Welch uses the multiplicative group of :math:`GF(p)` (primitive
roots modulo a prime), while Lempel and Golomb need a primitive element of an
arbitrary :math:`GF(q)` with :math:`q = p^m` a prime power.  The paper relies
on these constructions for context (orders for which constructive methods
exist), so this module implements just enough field arithmetic to support
them:

* primality testing and integer factorisation for small integers;
* primitive roots modulo a prime;
* :class:`GaloisField` — :math:`GF(p^m)` with elements encoded as integers
  whose base-``p`` digits are polynomial coefficients, multiplication modulo a
  monic irreducible polynomial found by trial division, and exp/log tables for
  a primitive element.

Everything here targets small fields (a few thousand elements at most), which
is all the constructions ever need for the problem sizes this repository works
with; clarity is preferred over asymptotic cleverness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "is_prime",
    "prime_factors",
    "factorize",
    "is_prime_power",
    "primitive_root",
    "GaloisField",
]


def is_prime(n: int) -> bool:
    """Deterministic primality test for small integers (trial division)."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    f = 3
    while f * f <= n:
        if n % f == 0:
            return False
        f += 2
    return True


def factorize(n: int) -> Dict[int, int]:
    """Return the prime factorisation of *n* as a ``{prime: exponent}`` dict."""
    if n < 1:
        raise ValueError(f"can only factorise positive integers, got {n}")
    factors: Dict[int, int] = {}
    remaining = n
    f = 2
    while f * f <= remaining:
        while remaining % f == 0:
            factors[f] = factors.get(f, 0) + 1
            remaining //= f
        f += 1 if f == 2 else 2
    if remaining > 1:
        factors[remaining] = factors.get(remaining, 0) + 1
    return factors


def prime_factors(n: int) -> List[int]:
    """Distinct prime factors of *n*, in increasing order."""
    return sorted(factorize(n))


def is_prime_power(n: int) -> Tuple[bool, int, int]:
    """Return ``(True, p, m)`` if ``n == p**m`` with ``p`` prime, else ``(False, 0, 0)``."""
    if n < 2:
        return (False, 0, 0)
    factors = factorize(n)
    if len(factors) != 1:
        return (False, 0, 0)
    ((p, m),) = factors.items()
    return (True, p, m)


def primitive_root(p: int) -> int:
    """Smallest primitive root modulo the prime *p*.

    A primitive root generates the whole multiplicative group mod ``p``; it is
    what the Welch construction exponentiates.
    """
    if not is_prime(p):
        raise ValueError(f"{p} is not prime")
    if p == 2:
        return 1
    order = p - 1
    checks = [order // r for r in prime_factors(order)]
    for g in range(2, p):
        if all(pow(g, c, p) != 1 for c in checks):
            return g
    raise RuntimeError(f"no primitive root found for prime {p}")  # pragma: no cover


# --------------------------------------------------------------------------- GF(p^m)
def _poly_from_int(x: int, p: int) -> List[int]:
    """Base-*p* digits of *x*, least significant first (polynomial coefficients)."""
    digits: List[int] = []
    while x:
        digits.append(x % p)
        x //= p
    return digits


def _poly_to_int(coeffs: Sequence[int], p: int) -> int:
    x = 0
    for c in reversed(list(coeffs)):
        x = x * p + (c % p)
    return x


def _poly_mul(a: Sequence[int], b: Sequence[int], p: int) -> List[int]:
    if not a or not b:
        return []
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            out[i + j] = (out[i + j] + ai * bj) % p
    while out and out[-1] == 0:
        out.pop()
    return out


def _poly_mod(a: Sequence[int], mod: Sequence[int], p: int) -> List[int]:
    """Remainder of polynomial *a* divided by monic polynomial *mod* over GF(p)."""
    a = list(a)
    deg_mod = len(mod) - 1
    lead_inv = pow(mod[-1], p - 2, p) if mod[-1] != 1 else 1
    while len(a) - 1 >= deg_mod and any(a):
        while a and a[-1] == 0:
            a.pop()
        if len(a) - 1 < deg_mod:
            break
        shift = len(a) - 1 - deg_mod
        factor = (a[-1] * lead_inv) % p
        for i, c in enumerate(mod):
            a[shift + i] = (a[shift + i] - factor * c) % p
        while a and a[-1] == 0:
            a.pop()
    return a


def _poly_divides(divisor: Sequence[int], poly: Sequence[int], p: int) -> bool:
    return not _poly_mod(poly, divisor, p)


def _monic_polys(degree: int, p: int) -> Iterable[List[int]]:
    """All monic polynomials of the given degree over GF(p)."""
    count = p**degree
    for low in range(count):
        coeffs = []
        x = low
        for _ in range(degree):
            coeffs.append(x % p)
            x //= p
        coeffs.append(1)
        yield coeffs


def _find_irreducible(p: int, m: int) -> List[int]:
    """A monic irreducible polynomial of degree *m* over GF(p), by trial division."""
    if m == 1:
        return [0, 1]  # x itself; unused in practice (GF(p) short-circuits)
    for candidate in _monic_polys(m, p):
        if candidate[0] == 0:
            continue  # divisible by x
        reducible = False
        for deg in range(1, m // 2 + 1):
            for divisor in _monic_polys(deg, p):
                if _poly_divides(divisor, candidate, p):
                    reducible = True
                    break
            if reducible:
                break
        if not reducible:
            return candidate
    raise RuntimeError(
        f"no irreducible polynomial of degree {m} over GF({p})"
    )  # pragma: no cover


@dataclass
class GaloisField:
    """The finite field :math:`GF(p^m)` with exp/log tables.

    Elements are represented as integers in ``0 .. q-1`` whose base-``p``
    digits are the coefficients of the corresponding polynomial.  For ``m = 1``
    this coincides with ordinary arithmetic modulo ``p``.

    Attributes
    ----------
    p, m, q:
        Characteristic, extension degree and field size ``q = p**m``.
    modulus:
        Coefficients (ascending degree) of the irreducible polynomial used for
        reduction; for ``m = 1`` this is ``[0, 1]`` and unused.
    generator:
        A primitive element: its powers run through all ``q - 1`` non-zero
        elements.
    """

    p: int
    m: int = 1
    q: int = field(init=False)
    modulus: List[int] = field(init=False)
    generator: int = field(init=False)
    _exp: List[int] = field(init=False, repr=False)
    _log: Dict[int, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not is_prime(self.p):
            raise ValueError(f"characteristic must be prime, got {self.p}")
        if self.m < 1:
            raise ValueError(f"extension degree must be >= 1, got {self.m}")
        self.q = self.p**self.m
        self.modulus = _find_irreducible(self.p, self.m) if self.m > 1 else [0, 1]
        self.generator = self._find_primitive_element()
        self._build_tables(self.generator)

    @classmethod
    def of_order(cls, q: int) -> "GaloisField":
        """Build :math:`GF(q)` from the field size, which must be a prime power."""
        ok, p, m = is_prime_power(q)
        if not ok:
            raise ValueError(f"{q} is not a prime power")
        return cls(p, m)

    # ----------------------------------------------------------- arithmetic
    def add(self, a: int, b: int) -> int:
        """Field addition (coefficient-wise modulo p)."""
        self._check(a), self._check(b)
        if self.m == 1:
            return (a + b) % self.p
        pa, pb = _poly_from_int(a, self.p), _poly_from_int(b, self.p)
        length = max(len(pa), len(pb))
        pa += [0] * (length - len(pa))
        pb += [0] * (length - len(pb))
        return _poly_to_int([(x + y) % self.p for x, y in zip(pa, pb)], self.p)

    def neg(self, a: int) -> int:
        """Additive inverse."""
        self._check(a)
        if self.m == 1:
            return (-a) % self.p
        return _poly_to_int([(-c) % self.p for c in _poly_from_int(a, self.p)], self.p)

    def sub(self, a: int, b: int) -> int:
        """Field subtraction."""
        return self.add(a, self.neg(b))

    def mul(self, a: int, b: int) -> int:
        """Field multiplication (polynomial product reduced by the modulus)."""
        self._check(a), self._check(b)
        if self.m == 1:
            return (a * b) % self.p
        prod = _poly_mul(_poly_from_int(a, self.p), _poly_from_int(b, self.p), self.p)
        return _poly_to_int(_poly_mod(prod, self.modulus, self.p), self.p)

    def power(self, a: int, e: int) -> int:
        """``a`` raised to the integer exponent ``e`` (``e`` may be negative)."""
        self._check(a)
        if a == 0:
            if e <= 0:
                raise ZeroDivisionError("0 cannot be raised to a non-positive power")
            return 0
        e %= self.q - 1
        result = 1
        base = a
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            e >>= 1
        return result

    def inverse(self, a: int) -> int:
        """Multiplicative inverse of a non-zero element."""
        if a == 0:
            raise ZeroDivisionError("0 has no multiplicative inverse")
        return self.power(a, self.q - 2)

    def element_order(self, a: int) -> int:
        """Multiplicative order of a non-zero element."""
        if a == 0:
            raise ZeroDivisionError("0 has no multiplicative order")
        order = self.q - 1
        for r in prime_factors(order):
            while order % r == 0 and self.power(a, order // r) == 1:
                order //= r
        return order

    # -------------------------------------------------------------- discrete log
    def exp(self, e: int, base: int | None = None) -> int:
        """``generator ** e`` via the precomputed table (or ``base ** e``)."""
        if base is None or base == self.generator:
            return self._exp[e % (self.q - 1)]
        return self.power(base, e)

    def log(self, a: int, base: int | None = None) -> int:
        """Discrete logarithm of *a* (non-zero) with respect to the generator.

        A different primitive *base* may be given; it is resolved through the
        generator's table (``log_base(a) = log_g(a) / log_g(base) mod q-1``).
        """
        if a == 0:
            raise ZeroDivisionError("0 has no discrete logarithm")
        self._check(a)
        lg = self._log[a]
        if base is None or base == self.generator:
            return lg
        lb = self._log[base]
        # base must be primitive for the modular inverse to exist.
        g = self.q - 1
        inv = pow(lb, -1, g)
        return (lg * inv) % g

    def is_primitive(self, a: int) -> bool:
        """``True`` iff *a* generates the whole multiplicative group."""
        return a != 0 and self.element_order(a) == self.q - 1

    def primitive_elements(self) -> List[int]:
        """All primitive elements of the field, in increasing integer encoding."""
        return [a for a in range(1, self.q) if self.is_primitive(a)]

    def elements(self) -> range:
        """All field elements (integer encodings ``0 .. q-1``)."""
        return range(self.q)

    # ------------------------------------------------------------------ internals
    def _check(self, a: int) -> None:
        if not 0 <= a < self.q:
            raise ValueError(f"{a} is not an element of GF({self.q})")

    def _find_primitive_element(self) -> int:
        if self.q == 2:
            return 1
        for a in range(2, self.q):
            # Temporarily compute the order without tables (tables need the generator).
            order = self.q - 1
            is_gen = True
            for r in prime_factors(order):
                if self.power(a, order // r) == 1:
                    is_gen = False
                    break
            if is_gen:
                return a
        raise RuntimeError(f"no primitive element in GF({self.q})")  # pragma: no cover

    def _build_tables(self, g: int) -> None:
        exp_table = [1] * (self.q - 1)
        log_table: Dict[int, int] = {1: 0}
        cur = 1
        for e in range(1, self.q - 1):
            cur = self.mul(cur, g)
            exp_table[e] = cur
            log_table[cur] = e
        if len(log_table) != self.q - 1:  # pragma: no cover - guarded by construction
            raise RuntimeError("generator does not span the multiplicative group")
        self._exp = exp_table
        self._log = log_table
