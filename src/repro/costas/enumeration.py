"""Exhaustive enumeration of Costas arrays by backtracking.

Complete enumeration is only tractable for small orders (the number of
candidate permutations grows as ``n!``), but it is invaluable as ground truth:
the published counts in :mod:`repro.costas.database` validate the enumerator,
and the enumerator in turn validates every stochastic solver in this
repository (any solution a solver returns for a small order must appear in the
enumeration).

The search places marks column by column and maintains, for every difference
row ``d``, the set of difference values already used; a partial assignment is
pruned as soon as any new difference repeats.  This is the same consistency
reasoning a propagation-based CP solver performs, restricted to the binary
decomposition of the row-wise ``alldifferent`` constraints.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.costas.array import CostasArray
from repro.costas.symmetry import canonical_form

__all__ = [
    "enumerate_costas_arrays",
    "count_costas_arrays",
    "equivalence_classes",
    "count_equivalence_classes",
    "EnumerationStats",
]


class EnumerationStats:
    """Counters describing one enumeration run (nodes explored, prunings, solutions)."""

    __slots__ = ("nodes", "prunings", "solutions")

    def __init__(self) -> None:
        self.nodes = 0
        self.prunings = 0
        self.solutions = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view, convenient for logging and tests."""
        return {"nodes": self.nodes, "prunings": self.prunings, "solutions": self.solutions}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EnumerationStats(nodes={self.nodes}, prunings={self.prunings}, "
            f"solutions={self.solutions})"
        )


def _search(
    n: int,
    prefix: List[int],
    used: List[bool],
    diff_rows: List[Set[int]],
    stats: EnumerationStats,
    limit: Optional[int],
) -> Iterator[Tuple[int, ...]]:
    """Recursive generator yielding completed Costas permutations as tuples."""
    col = len(prefix)
    if col == n:
        stats.solutions += 1
        yield tuple(prefix)
        return
    for value in range(n):
        if used[value]:
            continue
        stats.nodes += 1
        # Check the new differences against every earlier column.
        ok = True
        added: List[Tuple[int, int]] = []
        for d in range(1, col + 1):
            diff = value - prefix[col - d]
            if diff in diff_rows[d]:
                ok = False
                break
            diff_rows[d].add(diff)
            added.append((d, diff))
        if ok:
            prefix.append(value)
            used[value] = True
            yield from _search(n, prefix, used, diff_rows, stats, limit)
            used[value] = False
            prefix.pop()
            if limit is not None and stats.solutions >= limit:
                # Undo the additions before bailing out of the loop.
                for d, diff in added:
                    diff_rows[d].discard(diff)
                return
        else:
            stats.prunings += 1
        for d, diff in added:
            diff_rows[d].discard(diff)


def enumerate_costas_arrays(
    order: int,
    *,
    limit: Optional[int] = None,
    prefix: Optional[Sequence[int]] = None,
    stats: Optional[EnumerationStats] = None,
) -> Iterator[CostasArray]:
    """Yield every Costas array of the given *order* (optionally up to *limit*).

    Parameters
    ----------
    order:
        Array order ``n >= 1``.
    limit:
        Stop after yielding this many arrays (``None`` = all of them).
    prefix:
        Optional partial assignment (0-based values for the first columns);
        only completions of this prefix are enumerated.  The prefix itself is
        validated: if it already violates the Costas conditions nothing is
        yielded.
    stats:
        Optional :class:`EnumerationStats` instance to fill with search
        counters.

    Yields
    ------
    CostasArray
        In lexicographic order of the underlying permutation.
    """
    if order < 1:
        raise ValueError(f"order must be positive, got {order}")
    stats = stats if stats is not None else EnumerationStats()

    start: List[int] = []
    used = [False] * order
    diff_rows: List[Set[int]] = [set() for _ in range(order)]
    if prefix:
        for col, value in enumerate(prefix):
            value = int(value)
            if not 0 <= value < order or used[value]:
                return
            for d in range(1, col + 1):
                diff = value - start[col - d]
                if diff in diff_rows[d]:
                    return
                diff_rows[d].add(diff)
            start.append(value)
            used[value] = True

    count = 0
    for perm in _search(order, start, used, diff_rows, stats, limit):
        yield CostasArray(perm)
        count += 1
        if limit is not None and count >= limit:
            return


def count_costas_arrays(order: int, *, stats: Optional[EnumerationStats] = None) -> int:
    """Number of Costas arrays of the given *order* (exhaustive search)."""
    total = 0
    for _ in enumerate_costas_arrays(order, stats=stats):
        total += 1
    return total


def equivalence_classes(
    arrays: Iterable[CostasArray],
) -> Dict[Tuple[int, ...], List[CostasArray]]:
    """Group *arrays* into dihedral-symmetry equivalence classes.

    The key of each class is the canonical (lexicographically smallest) member
    of the orbit, as a tuple.
    """
    classes: Dict[Tuple[int, ...], List[CostasArray]] = {}
    for arr in arrays:
        key = tuple(int(v) for v in canonical_form(arr.to_array()))
        classes.setdefault(key, []).append(arr)
    return classes


def count_equivalence_classes(order: int) -> int:
    """Number of symmetry classes of Costas arrays of *order* (exhaustive)."""
    return len(equivalence_classes(enumerate_costas_arrays(order)))
