"""Published Costas array counts.

The enumeration of all Costas arrays is itself a research topic (the paper
cites Drakakis et al.'s enumerations of orders 28 and 29).  This module records
the published counts so that

* :mod:`repro.costas.enumeration` can be validated against ground truth for
  the orders it can exhaustively enumerate in reasonable time, and
* examples and documentation can quote solution densities (the number of
  Costas arrays divided by ``n!``), which is the quantity that makes the CAP a
  low-solution-density benchmark and motivates the multi-walk parallelism of
  the paper.

Two tables are provided:

* :data:`KNOWN_COSTAS_COUNTS` — total number of Costas arrays per order
  (OEIS A008404);
* :data:`KNOWN_EQUIVALENCE_CLASS_COUNTS` — number of equivalence classes up to
  rotation and reflection (OEIS A001441); e.g. order 29 has 164 arrays in 23
  classes, the figures quoted in Section II of the paper.
"""

from __future__ import annotations

from math import factorial
from typing import Dict, Optional

__all__ = [
    "KNOWN_COSTAS_COUNTS",
    "KNOWN_EQUIVALENCE_CLASS_COUNTS",
    "known_count",
    "known_class_count",
    "solution_density",
]

#: Total number of Costas arrays for each order with a published enumeration.
KNOWN_COSTAS_COUNTS: Dict[int, int] = {
    1: 1,
    2: 2,
    3: 4,
    4: 12,
    5: 40,
    6: 116,
    7: 200,
    8: 444,
    9: 760,
    10: 2160,
    11: 4368,
    12: 7852,
    13: 12828,
    14: 17252,
    15: 19612,
    16: 21104,
    17: 18276,
    18: 15096,
    19: 10240,
    20: 6464,
    21: 3536,
    22: 2052,
    23: 872,
    24: 200,
    25: 88,
    26: 56,
    27: 204,
    28: 712,
    29: 164,
}

#: Number of equivalence classes up to the dihedral symmetries, per order.
KNOWN_EQUIVALENCE_CLASS_COUNTS: Dict[int, int] = {
    1: 1,
    2: 1,
    3: 1,
    4: 2,
    5: 6,
    6: 17,
    7: 30,
    8: 60,
    9: 100,
    10: 277,
    11: 555,
    12: 990,
    13: 1616,
    14: 2168,
    15: 2467,
    16: 2648,
    17: 2294,
    18: 1892,
    19: 1283,
    20: 810,
    21: 446,
    22: 259,
    23: 114,
    24: 25,
    25: 12,
    26: 8,
    27: 29,
    28: 89,
    29: 23,
}


def known_count(order: int) -> Optional[int]:
    """Published number of Costas arrays of *order*, or ``None`` if unknown."""
    return KNOWN_COSTAS_COUNTS.get(order)


def known_class_count(order: int) -> Optional[int]:
    """Published number of symmetry classes of *order*, or ``None`` if unknown."""
    return KNOWN_EQUIVALENCE_CLASS_COUNTS.get(order)


def solution_density(order: int) -> Optional[float]:
    """Fraction of the ``n!`` permutations that are Costas arrays.

    Returns ``None`` when the count for *order* is not published.  The density
    collapses rapidly (about ``2e-27`` at order 29), which is what makes the
    CAP such a hard benchmark for stochastic search and what the paper's
    multi-walk parallelisation exploits: independent restarts sample the
    search space much faster than a single walk.
    """
    count = known_count(order)
    if count is None:
        return None
    return count / factorial(order)
