"""Dihedral symmetries of Costas arrays.

The symmetry group of the square (order 8) acts on Costas arrays and preserves
the Costas property: flipping the grid horizontally or vertically, or
transposing it, permutes the set of displacement vectors without ever merging
two of them.  The enumeration literature therefore reports both the raw count
of Costas arrays and the number of equivalence classes "up to rotation and
reflection" (e.g. 164 arrays but 23 classes for order 29, as quoted in the
paper).

On the permutation representation (``p[c]`` = row of the mark in column ``c``,
everything 0-based) the three generators are:

* :func:`reverse` — flip columns: ``q[c] = p[n-1-c]``;
* :func:`complement` — flip rows: ``q[c] = n-1-p[c]``;
* :func:`transpose` — reflect along the main diagonal: ``q[p[c]] = c`` (the
  inverse permutation).

The full group is obtained by composing these; :func:`all_symmetries` returns
the 8 images (with duplicates when the array is itself symmetric).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.costas.array import as_permutation

__all__ = [
    "reverse",
    "complement",
    "transpose",
    "rotate90",
    "all_symmetries",
    "canonical_form",
    "orbit",
    "SYMMETRY_NAMES",
]


def reverse(perm: Sequence[int] | np.ndarray) -> np.ndarray:
    """Horizontal flip: reverse the order of the columns."""
    p = as_permutation(perm, copy=False)
    return p[::-1].copy()


def complement(perm: Sequence[int] | np.ndarray) -> np.ndarray:
    """Vertical flip: replace each value ``v`` by ``n - 1 - v``."""
    p = as_permutation(perm, copy=False)
    return (p.size - 1) - p


def transpose(perm: Sequence[int] | np.ndarray) -> np.ndarray:
    """Reflection along the main diagonal: the inverse permutation."""
    p = as_permutation(perm, copy=False)
    q = np.empty_like(p)
    q[p] = np.arange(p.size, dtype=p.dtype)
    return q


def rotate90(perm: Sequence[int] | np.ndarray) -> np.ndarray:
    """Rotate the grid by 90 degrees (counter-clockwise).

    Implemented as a transpose followed by a vertical flip; applying it four
    times returns the original array.
    """
    return complement(transpose(perm))


#: Human-readable names of the 8 group elements, in the order produced by
#: :func:`all_symmetries`.
SYMMETRY_NAMES: Tuple[str, ...] = (
    "identity",
    "reverse",
    "complement",
    "reverse+complement",
    "transpose",
    "transpose+reverse",
    "transpose+complement",
    "transpose+reverse+complement",
)


def _identity(p: np.ndarray) -> np.ndarray:
    return p.copy()


_BASE_OPS: Tuple[Callable[[np.ndarray], np.ndarray], ...] = (
    _identity,
    reverse,
    complement,
    lambda p: complement(reverse(p)),
)


def all_symmetries(perm: Sequence[int] | np.ndarray) -> List[np.ndarray]:
    """Return the 8 images of *perm* under the dihedral group.

    Duplicates are **not** removed (use :func:`orbit` for the distinct images),
    so the result always has exactly 8 entries, aligned with
    :data:`SYMMETRY_NAMES`.
    """
    p = as_permutation(perm)
    out: List[np.ndarray] = []
    for base in (p, transpose(p)):
        for op in _BASE_OPS:
            out.append(op(base))
    return out


def orbit(perm: Sequence[int] | np.ndarray) -> List[Tuple[int, ...]]:
    """Distinct images of *perm* under the dihedral group, as sorted tuples."""
    seen = {tuple(int(v) for v in q) for q in all_symmetries(perm)}
    return sorted(seen)


def canonical_form(perm: Sequence[int] | np.ndarray) -> np.ndarray:
    """Lexicographically smallest element of the symmetry orbit of *perm*.

    Two Costas arrays are equivalent up to rotation/reflection iff their
    canonical forms are equal, which is how
    :func:`repro.costas.enumeration.equivalence_classes` groups them.
    """
    best = min(orbit(perm))
    return np.array(best, dtype=np.int64)
