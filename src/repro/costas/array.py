"""Costas array value object and raw-permutation predicates.

Conventions
-----------
Throughout :mod:`repro` a configuration of the Costas Array Problem of order
``n`` is a **0-based permutation**: a sequence of the integers ``0..n-1`` in
some order, where ``p[i]`` is the row index of the mark in column ``i``.  The
paper (and most of the Costas literature) uses 1-based values; since the Costas
property only involves *differences* of values the two conventions are
equivalent, and :meth:`CostasArray.to_one_based` converts for display.

The functions in this module are deliberately dependency-light (NumPy only) and
are used both by the local-search models and by the exhaustive enumeration
code, so they are written to be cheap for small ``n`` and vectorised for large
``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.exceptions import InvalidPermutationError

__all__ = [
    "as_permutation",
    "is_permutation",
    "random_permutation",
    "difference_triangle",
    "is_costas",
    "violation_count",
    "violating_pairs",
    "CostasArray",
]


def as_permutation(values: Sequence[int] | np.ndarray, *, copy: bool = True) -> np.ndarray:
    """Validate *values* as a 0-based permutation and return it as an int array.

    Parameters
    ----------
    values:
        Any sequence of integers.  Must contain each of ``0..len(values)-1``
        exactly once.
    copy:
        When ``False`` and *values* is already a suitable ``np.ndarray``, the
        array is returned as-is (callers must then not mutate it if they rely
        on validation staying true).

    Raises
    ------
    InvalidPermutationError
        If the sequence is empty, contains non-integers, or is not a
        permutation of ``0..n-1``.
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise InvalidPermutationError(
            f"expected a 1-D sequence, got array of shape {arr.shape}"
        )
    if arr.size == 0:
        raise InvalidPermutationError("a permutation must have at least one element")
    if not np.issubdtype(arr.dtype, np.integer):
        # Reject floats that are not exactly integral.
        as_int = arr.astype(np.int64, copy=True)
        if not np.array_equal(as_int, arr):
            raise InvalidPermutationError(
                f"permutation entries must be integers, got dtype {arr.dtype}"
            )
        arr = as_int
    else:
        arr = arr.astype(np.int64, copy=copy)
    n = arr.size
    seen = np.zeros(n, dtype=bool)
    for v in arr:
        if v < 0 or v >= n or seen[v]:
            raise InvalidPermutationError(
                f"sequence {list(map(int, arr))} is not a permutation of 0..{n - 1}"
            )
        seen[v] = True
    return arr


def is_permutation(values: Sequence[int] | np.ndarray) -> bool:
    """Return ``True`` iff *values* is a 0-based permutation of ``0..n-1``."""
    try:
        as_permutation(values, copy=False)
    except InvalidPermutationError:
        return False
    return True


def random_permutation(n: int, rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Return a uniformly random 0-based permutation of order *n*.

    ``rng`` may be an existing :class:`numpy.random.Generator`, an integer seed
    or ``None`` (fresh entropy).
    """
    if n <= 0:
        raise InvalidPermutationError(f"order must be positive, got {n}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    return rng.permutation(n).astype(np.int64)


def difference_triangle(perm: Sequence[int] | np.ndarray) -> List[np.ndarray]:
    """Return the difference triangle of *perm* as a list of rows.

    Row ``d`` (for ``d = 1 .. n-1``, stored at index ``d - 1``) holds the
    ``n - d`` values ``perm[i + d] - perm[i]``.  The permutation is validated.
    """
    p = as_permutation(perm, copy=False)
    n = p.size
    return [p[d:] - p[:-d] for d in range(1, n)]


def _row_duplicate_count(row: np.ndarray) -> int:
    """Number of entries in *row* that repeat an earlier value (0 if all distinct)."""
    if row.size <= 1:
        return 0
    _, counts = np.unique(row, return_counts=True)
    return int(np.sum(counts - 1))


def is_costas(perm: Sequence[int] | np.ndarray) -> bool:
    """Return ``True`` iff *perm* is a permutation whose difference triangle rows
    all contain distinct values (i.e. *perm* is a Costas array).

    Raises :class:`InvalidPermutationError` if *perm* is not a permutation at
    all — silently returning ``False`` for malformed input would make property
    testing and enumeration bugs very hard to notice.
    """
    p = as_permutation(perm, copy=False)
    n = p.size
    # By Chang's remark it is sufficient to check d <= (n-1)//2; we still check
    # every row here because this is the reference predicate used to validate
    # the optimised models, and it must not share their assumptions.
    for d in range(1, n):
        row = p[d:] - p[:-d]
        if np.unique(row).size != row.size:
            return False
    return True


def violation_count(perm: Sequence[int] | np.ndarray, *, half: bool = False) -> int:
    """Count repeated-difference occurrences across the difference triangle.

    Each entry of a row that duplicates an earlier entry of the same row counts
    as one violation (the counting scheme of the paper's basic model with
    ``ERR(d) = 1``).  ``half=True`` restricts to rows ``d <= (n-1)//2``
    (Chang's observation), which is how the optimised model counts.
    """
    p = as_permutation(perm, copy=False)
    n = p.size
    last = (n - 1) // 2 if half else n - 1
    total = 0
    for d in range(1, last + 1):
        total += _row_duplicate_count(p[d:] - p[:-d])
    return total


def violating_pairs(
    perm: Sequence[int] | np.ndarray,
) -> List[Tuple[int, int, int, int]]:
    """Return the list of violating index pairs.

    Each element is ``(d, i, j, diff)`` meaning columns ``i`` and ``j`` (with
    ``j = i + d`` implied pairs ``(i, i+d)`` and ``(j, j+d)``) share the same
    difference ``diff`` at distance ``d``.  Concretely the tuple records two
    *starting* indices ``i < j`` such that ``perm[i+d]-perm[i] ==
    perm[j+d]-perm[j] == diff``.
    """
    p = as_permutation(perm, copy=False)
    n = p.size
    out: List[Tuple[int, int, int, int]] = []
    for d in range(1, n):
        row = p[d:] - p[:-d]
        index_of: dict[int, List[int]] = {}
        for i, v in enumerate(row):
            index_of.setdefault(int(v), []).append(i)
        for v, idxs in index_of.items():
            if len(idxs) > 1:
                first = idxs[0]
                for j in idxs[1:]:
                    out.append((d, first, j, v))
    return out


@dataclass(frozen=True)
class CostasArray:
    """An immutable, validated Costas array.

    Instances are created from a 0-based permutation (:meth:`from_permutation`),
    from a 1-based permutation as printed in the paper
    (:meth:`from_one_based`), or by the algebraic constructions in
    :mod:`repro.costas.constructions`.  Construction fails with
    :class:`InvalidPermutationError` if the sequence is not a permutation and
    with :class:`ValueError` if it is a permutation but not Costas.
    """

    permutation: Tuple[int, ...]

    # ------------------------------------------------------------------ create
    def __post_init__(self) -> None:
        p = as_permutation(self.permutation, copy=False)
        if not is_costas(p):
            raise ValueError(
                f"permutation {list(self.permutation)} is not a Costas array "
                f"({violation_count(p)} violations)"
            )
        object.__setattr__(self, "permutation", tuple(int(v) for v in p))

    @classmethod
    def from_permutation(cls, perm: Sequence[int] | np.ndarray) -> "CostasArray":
        """Build from a 0-based permutation."""
        return cls(tuple(int(v) for v in np.asarray(perm)))

    @classmethod
    def from_one_based(cls, perm: Sequence[int]) -> "CostasArray":
        """Build from a 1-based permutation (paper convention, e.g. ``[3,4,2,1,5]``)."""
        return cls(tuple(int(v) - 1 for v in perm))

    # ------------------------------------------------------------------ basics
    @property
    def order(self) -> int:
        """Order ``n`` of the array."""
        return len(self.permutation)

    def __len__(self) -> int:
        return self.order

    def __iter__(self) -> Iterator[int]:
        return iter(self.permutation)

    def __getitem__(self, i: int) -> int:
        return self.permutation[i]

    def to_array(self) -> np.ndarray:
        """Return the permutation as a fresh NumPy int64 array (0-based)."""
        return np.array(self.permutation, dtype=np.int64)

    def to_one_based(self) -> Tuple[int, ...]:
        """Return the permutation with 1-based values as used in the paper."""
        return tuple(v + 1 for v in self.permutation)

    def to_grid(self) -> np.ndarray:
        """Return the ``n x n`` 0/1 mark matrix, row 0 at the bottom.

        ``grid[r, c] == 1`` iff the mark of column ``c`` is in row ``r``.
        """
        n = self.order
        grid = np.zeros((n, n), dtype=np.int8)
        for c, r in enumerate(self.permutation):
            grid[r, c] = 1
        return grid

    def difference_triangle(self) -> List[np.ndarray]:
        """The difference triangle (list of rows ``d = 1 .. n-1``)."""
        return difference_triangle(self.to_array())

    def displacement_vectors(self) -> List[Tuple[int, int]]:
        """All ``n(n-1)/2`` displacement vectors ``(dx, dy)`` with ``dx > 0``.

        For a Costas array these are pairwise distinct; this method is mostly
        useful for teaching/visualisation and cross-checking :func:`is_costas`.
        """
        p = self.permutation
        n = self.order
        return [(j - i, p[j] - p[i]) for i in range(n) for j in range(i + 1, n)]

    # ---------------------------------------------------------------- symmetry
    def symmetries(self) -> List["CostasArray"]:
        """The orbit of this array under the dihedral symmetry group (size ≤ 8)."""
        from repro.costas.symmetry import all_symmetries

        seen = set()
        out: List[CostasArray] = []
        for q in all_symmetries(self.to_array()):
            key = tuple(int(v) for v in q)
            if key not in seen:
                seen.add(key)
                out.append(CostasArray(key))
        return out

    def canonical(self) -> "CostasArray":
        """The lexicographically smallest element of the symmetry orbit."""
        from repro.costas.symmetry import canonical_form

        return CostasArray(tuple(int(v) for v in canonical_form(self.to_array())))

    def is_symmetric(self) -> bool:
        """``True`` iff the array equals its transpose (mirror along the diagonal)."""
        from repro.costas.symmetry import transpose

        return tuple(int(v) for v in transpose(self.to_array())) == self.permutation

    # ------------------------------------------------------------------ output
    def render(self, mark: str = "X", empty: str = ".") -> str:
        """ASCII grid rendering (top row printed first, as in the paper's figure)."""
        n = self.order
        lines = []
        for r in range(n - 1, -1, -1):
            lines.append(" ".join(mark if self.permutation[c] == r else empty for c in range(n)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostasArray(order={self.order}, {list(self.to_one_based())})"
