"""Priority request queue with lanes, coalescing, quotas, backpressure, shedding.

This is the admission-control layer of the service, organised as an explicit
pipeline — **classify** happens upstream (:func:`repro.service.qos.classify_lane`);
this module owns **admit**, **coalesce**, **schedule** and **shed**:

* **Lanes** — jobs live in per-lane priority heaps (:class:`~repro.service.qos.LaneSpec`,
  most-valuable-first).  The consumer pops across lanes with smooth weighted
  round-robin, so a flooded batch/background lane can never starve the
  interactive lane.  When constructed without ``lanes`` the scheduler runs a
  single implicit lane whose depth is ``max_depth`` — the exact pre-lane
  behaviour, through the same code path.
* **Coalescing** — concurrent requests for the same instance key attach to
  one in-flight job (queued *or* already running) and all receive its result.
  N identical requests trigger exactly one solve.  A join from a more
  valuable lane *promotes* the queued job into that lane, mirroring the
  priority bump below.
* **Priority ordering** — within a lane, higher priority pops first; a
  coalesced join with a higher priority than the queued job *bumps* the job
  (lazily, via stale heap entries), so a premium request never waits behind
  the batch queue.
* **Per-tenant quotas** — an optional :class:`~repro.service.qos.TenantQuotas`
  charges one token per *new* job (joins are free); an empty bucket raises
  :class:`SchedulerQuotaError`, which the HTTP layer maps to *429 Too Many
  Requests* with ``Retry-After``.
* **Bounded depth with explicit backpressure** — each lane bounds its own
  distinct-queued-job count, and ``max_depth`` bounds the global total.  A
  new job in a full lane raises :class:`SchedulerSaturatedError` (*503*).
  When only the *global* bound is hit, the scheduler **sheds**: the newest
  queued job in the cheapest-to-refuse lane (scanning lane order backwards,
  strictly cheaper than the arriving lane) is failed with
  :class:`RequestSheddedError` and the newcomer admitted — saturation
  refuses the cheapest work, not whoever arrives next.
* **Cancellation** — every request holds its own ticket; cancelling the last
  ticket of a queued job removes the job, and cancelling the last ticket of a
  running job fires the ``on_cancel_running`` callback so the worker pool can
  abort the walk.

Threading model: all state is guarded by one lock; consumers block on a
condition in :meth:`next_job`.  Futures are
:class:`concurrent.futures.Future`, so callers can wait with timeouts or add
callbacks without this module caring which.  Ticket futures are always
settled *outside* the lock.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Collection,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.exceptions import ReproError
from repro.service.faults import DeadlineExceededError
from repro.service.qos import DEFAULT_LANE, DEFAULT_TENANT, LaneSpec, TenantQuotas

__all__ = [
    "Job",
    "RequestScheduler",
    "RequestSheddedError",
    "SchedulerQuotaError",
    "SchedulerSaturatedError",
    "Ticket",
]


class SchedulerSaturatedError(ReproError, RuntimeError):
    """The lane (or queue) is at depth; the caller must retry later (503)."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class SchedulerQuotaError(ReproError, RuntimeError):
    """The tenant's token bucket is empty; retry after ``retry_after`` (429)."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class RequestSheddedError(ReproError, RuntimeError):
    """The job was shed to admit more valuable work; retry later (503)."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


#: Job lifecycle states.
QUEUED, RUNNING, DONE, CANCELLED = "queued", "running", "done", "cancelled"

#: Per-lane and per-tenant monotonic counter names exposed by stats().
_LANE_COUNTERS = ("admitted", "coalesced", "rejected", "shed", "expired", "completed")
_TENANT_COUNTERS = ("admitted", "coalesced", "rejected", "quota_rejected", "shed")


@dataclass
class Job:
    """One unit of solving work, shared by every coalesced ticket."""

    key: Tuple[Any, ...]
    payload: Dict[str, Any]
    priority: int
    seqno: int
    state: str = QUEUED
    tickets: List["Ticket"] = field(default_factory=list)
    #: Absolute wall-clock (``time.time()``) deadline shared by the job's
    #: tickets, or ``None`` when any attached request is unbounded.  A job
    #: still queued past its deadline is failed at pop time instead of being
    #: handed to a worker it can no longer satisfy.
    deadline_at: Optional[float] = None
    #: QoS lane the job is queued in (may be promoted by a coalesced join
    #: from a more valuable lane) and the tenant that created the job.
    lane: str = DEFAULT_LANE
    tenant: str = DEFAULT_TENANT

    @property
    def width(self) -> int:
        """Number of requests currently attached (the coalescing width)."""
        return len(self.tickets)


@dataclass
class Ticket:
    """One request's handle on a (possibly shared) job."""

    job: Job
    future: Future = field(default_factory=Future)
    cancelled: bool = False

    @property
    def key(self) -> Tuple[Any, ...]:
        return self.job.key

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the job's outcome (raises its exception on failure)."""
        return self.future.result(timeout)

    def done(self) -> bool:
        return self.future.done()


class RequestScheduler:
    """Coalescing priority queue between the facade and the worker pool.

    Parameters
    ----------
    max_depth:
        Maximum number of *distinct queued* jobs across all lanes (running
        jobs and coalesced joins do not count).  ``None`` disables the
        global bound.  Without ``lanes`` this is also the single implicit
        lane's depth — the original single-queue behaviour.
    lanes:
        Optional :class:`~repro.service.qos.LaneSpec` sequence, most
        valuable first.  Enables per-lane depth bounds, weighted-fair
        popping and shedding.
    quotas:
        Optional :class:`~repro.service.qos.TenantQuotas`; new jobs charge
        one token from the submitting tenant's bucket.
    on_cancel_running:
        Callback invoked (outside the lock) with a :class:`Job` whose last
        ticket was cancelled while the job was running; the pool uses it to
        abort the walk.
    """

    def __init__(
        self,
        *,
        max_depth: Optional[int] = None,
        lanes: Optional[Sequence[LaneSpec]] = None,
        quotas: Optional[TenantQuotas] = None,
        on_cancel_running: Optional[Callable[[Job], None]] = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1 or None, got {max_depth}")
        self.max_depth = max_depth
        self.on_cancel_running = on_cancel_running
        self.multi_lane = lanes is not None
        if lanes is None:
            lanes = (LaneSpec(DEFAULT_LANE, depth=max_depth, weight=1),)
        self._lane_order: Tuple[str, ...] = tuple(spec.name for spec in lanes)
        self._lane_specs: Dict[str, LaneSpec] = {spec.name: spec for spec in lanes}
        if len(self._lane_specs) != len(self._lane_order):
            raise ValueError("duplicate lane names")
        self._lane_rank = {name: i for i, name in enumerate(self._lane_order)}
        # Unclassified submits land in the least-valuable lane (the implicit
        # lane in single-lane mode) so direct scheduler users are never
        # accidentally prioritised.
        self._fallback_lane = self._lane_order[-1]
        self._quotas = quotas
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        # One (-priority, seqno, job) heap per lane; entries go stale on
        # priority bump, cancellation and lane promotion, and are skipped
        # lazily at pop time.
        self._heaps: Dict[str, List[Tuple[int, int, Job]]] = {
            name: [] for name in self._lane_order
        }
        self._inflight: Dict[Tuple[Any, ...], Job] = {}  # QUEUED or RUNNING
        self._queued_count = 0
        self._lane_queued: Dict[str, int] = {name: 0 for name in self._lane_order}
        # Smooth weighted round-robin credit per lane.
        self._wrr_credit: Dict[str, int] = {name: 0 for name in self._lane_order}
        self._seq = itertools.count()
        self._closed = False
        # Monotonic counters for stats().
        self._submitted = 0
        self._coalesced = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._cancelled_jobs = 0
        self._expired = 0
        self._shed = 0
        self._quota_rejected = 0
        self._lane_stats: Dict[str, Dict[str, int]] = {
            name: dict.fromkeys(_LANE_COUNTERS, 0) for name in self._lane_order
        }
        self._tenant_stats: Dict[str, Dict[str, int]] = {}

    # ---------------------------------------------------------------- producer
    def submit(
        self,
        key: Tuple[Any, ...],
        payload: Dict[str, Any],
        *,
        priority: int = 0,
        deadline_at: Optional[float] = None,
        lane: Optional[str] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> Ticket:
        """Admit a request; coalesce onto an in-flight job when one exists.

        ``deadline_at`` is an absolute ``time.time()`` deadline; a job whose
        every ticket carries one is abandoned (tickets failed with
        :class:`~repro.service.faults.DeadlineExceededError`) if it is still
        queued when the deadline passes.  Raises
        :class:`SchedulerSaturatedError` when a *new* job would exceed its
        lane depth (or the global bound with nothing cheaper to shed),
        :class:`SchedulerQuotaError` when the tenant is out of quota, and
        ``RuntimeError`` after :meth:`close`.
        """
        shed: List[Tuple[Job, List[Ticket]]] = []
        try:
            with self._lock:
                if self._closed:
                    raise RuntimeError("scheduler is closed")
                return self._admit_locked(
                    key, payload, priority, deadline_at, lane, tenant, shed
                )
        finally:
            self._settle_shed(shed)

    def submit_batch(
        self,
        entries: Sequence[Tuple],
    ) -> List[Ticket | ReproError]:
        """Admit many requests under **one** lock acquisition (one scheduler
        pass for a whole ``POST /solve-batch`` body).

        ``entries`` is a list of ``(key, payload, priority)`` triples;
        optional further elements carry the absolute deadline, lane and
        tenant.  The result list is aligned with the input: each slot holds
        either the admitted :class:`Ticket` or the
        :class:`SchedulerSaturatedError` / :class:`SchedulerQuotaError` that
        rejected that item.  Saturation is judged item by item in input
        order, so a batch that straddles a depth bound admits a prefix of
        its distinct keys and rejects the rest — identical 503 semantics to
        the same requests arriving back to back, and items coalescing onto
        admitted (or already in-flight) jobs are always accepted.  Raises
        ``RuntimeError`` after :meth:`close` (nothing is admitted then).
        """
        results: List[Ticket | ReproError] = []
        shed: List[Tuple[Job, List[Ticket]]] = []
        try:
            with self._lock:
                if self._closed:
                    raise RuntimeError("scheduler is closed")
                for entry in entries:
                    key, payload, priority = entry[0], entry[1], entry[2]
                    deadline_at = entry[3] if len(entry) > 3 else None
                    lane = entry[4] if len(entry) > 4 else None
                    tenant = entry[5] if len(entry) > 5 else DEFAULT_TENANT
                    try:
                        results.append(
                            self._admit_locked(
                                key, payload, priority, deadline_at, lane, tenant, shed
                            )
                        )
                    except (SchedulerSaturatedError, SchedulerQuotaError) as exc:
                        results.append(exc)
        finally:
            self._settle_shed(shed)
        return results

    def _tenant_counters(self, tenant: str) -> Dict[str, int]:
        counters = self._tenant_stats.get(tenant)
        if counters is None:
            counters = self._tenant_stats[tenant] = dict.fromkeys(_TENANT_COUNTERS, 0)
        return counters

    def _admit_locked(
        self,
        key: Tuple[Any, ...],
        payload: Dict[str, Any],
        priority: int,
        deadline_at: Optional[float],
        lane: Optional[str],
        tenant: str,
        shed_out: List[Tuple[Job, List[Ticket]]],
    ) -> Ticket:
        """One admission: coalesce, reject on quota/saturation, shed, or
        enqueue.

        The single shared implementation behind :meth:`submit` and
        :meth:`submit_batch`; the caller holds the lock and settles any
        shed victims collected in *shed_out* after releasing it.
        """
        if lane is None:
            lane = self._fallback_lane
        spec = self._lane_specs.get(lane)
        if spec is None:
            raise ValueError(
                f"unknown lane {lane!r}; configured lanes: "
                f"{', '.join(self._lane_order)}"
            )
        self._submitted += 1
        tenant_stats = self._tenant_counters(tenant)
        job = self._inflight.get(key)
        if job is not None:
            ticket = Ticket(job)
            job.tickets.append(ticket)
            self._coalesced += 1
            self._lane_stats[job.lane]["coalesced"] += 1
            tenant_stats["coalesced"] += 1
            # The job's deadline is the *loosest* of its tickets': one
            # unbounded join makes the job unbounded, otherwise the latest
            # deadline wins — an earlier joiner's patience never cuts short
            # a later joiner's budget.
            if deadline_at is None:
                job.deadline_at = None
            elif job.deadline_at is not None:
                job.deadline_at = max(job.deadline_at, deadline_at)
            if job.state == QUEUED:
                repush = False
                if priority > job.priority:
                    # Bump: re-push with the stronger priority; the old heap
                    # entry becomes stale and is skipped on pop.
                    job.priority = priority
                    repush = True
                if self._lane_rank[lane] < self._lane_rank[job.lane]:
                    # Lane promotion: a more valuable joiner lifts the whole
                    # job into its lane (the analogue of the priority bump).
                    self._lane_queued[job.lane] -= 1
                    self._lane_queued[lane] += 1
                    job.lane = lane
                    repush = True
                if repush:
                    heapq.heappush(
                        self._heaps[job.lane],
                        (-job.priority, next(self._seq), job),
                    )
                    self._available.notify()
            return ticket
        # New job: charge the tenant's quota first — a rate-limited tenant
        # should not influence shedding decisions.
        if self._quotas is not None:
            retry_after = self._quotas.take(tenant)
            if retry_after is not None:
                self._rejected += 1
                self._quota_rejected += 1
                self._lane_stats[lane]["rejected"] += 1
                tenant_stats["rejected"] += 1
                tenant_stats["quota_rejected"] += 1
                raise SchedulerQuotaError(
                    f"tenant {tenant!r} is out of quota; retry later",
                    retry_after=round(retry_after, 3),
                )
        if spec.depth is not None and self._lane_queued[lane] >= spec.depth:
            self._rejected += 1
            self._lane_stats[lane]["rejected"] += 1
            tenant_stats["rejected"] += 1
            raise SchedulerSaturatedError(
                f"request queue is full ({self._lane_queued[lane]} jobs queued, "
                f"max_depth={spec.depth}"
                + (f", lane={lane}" if self.multi_lane else "")
                + "); retry later"
            )
        if self.max_depth is not None and self._queued_count >= self.max_depth:
            # Global saturation with lane headroom: shed the newest queued
            # job from the cheapest-to-refuse lane strictly cheaper than the
            # arriving one; with nothing cheaper queued, refuse the newcomer.
            victim = self._shed_victim_locked(lane)
            if victim is None:
                self._rejected += 1
                self._lane_stats[lane]["rejected"] += 1
                tenant_stats["rejected"] += 1
                raise SchedulerSaturatedError(
                    f"request queue is full ({self._queued_count} jobs queued, "
                    f"max_depth={self.max_depth}); retry later"
                )
            self._shed += 1
            self._lane_stats[victim.lane]["shed"] += 1
            self._tenant_counters(victim.tenant)["shed"] += 1
            self._queued_count -= 1
            self._lane_queued[victim.lane] -= 1
            shed_out.append((victim, self._settle_locked(victim, DONE)))
        job = Job(
            key=key,
            payload=dict(payload),
            priority=priority,
            seqno=next(self._seq),
            deadline_at=deadline_at,
            lane=lane,
            tenant=tenant,
        )
        ticket = Ticket(job)
        job.tickets.append(ticket)
        self._inflight[key] = job
        self._queued_count += 1
        self._lane_queued[lane] += 1
        self._lane_stats[lane]["admitted"] += 1
        tenant_stats["admitted"] += 1
        heapq.heappush(self._heaps[lane], (-job.priority, job.seqno, job))
        self._available.notify()
        return ticket

    def _shed_victim_locked(self, arriving_lane: str) -> Optional[Job]:
        """Newest queued job in the cheapest lane strictly cheaper than
        *arriving_lane*, or ``None``."""
        arriving_rank = self._lane_rank[arriving_lane]
        for lane in reversed(self._lane_order):
            if self._lane_rank[lane] <= arriving_rank:
                break
            if self._lane_queued[lane] == 0:
                continue
            victim: Optional[Job] = None
            for job in self._inflight.values():
                if job.state == QUEUED and job.lane == lane:
                    if victim is None or job.seqno > victim.seqno:
                        victim = job
            if victim is not None:
                return victim
        return None

    @staticmethod
    def _settle_shed(shed: List[Tuple[Job, List[Ticket]]]) -> None:
        for victim, tickets in shed:
            exc = RequestSheddedError(
                f"request for {victim.key!r} was shed to admit higher-value "
                f"work (lane={victim.lane}); retry later"
            )
            for ticket in tickets:
                if not ticket.future.done():
                    ticket.future.set_exception(exc)

    # ---------------------------------------------------------------- consumer
    def next_job(
        self,
        timeout: Optional[float] = None,
        only_lanes: Optional[Collection[str]] = None,
    ) -> Optional[Job]:
        """Pop the next queued job, blocking up to *timeout*.

        Lane selection is smooth weighted round-robin over non-empty lanes
        (restricted to *only_lanes* when given — the dispatcher's lane-aware
        slot reservation); within a lane, highest priority first, FIFO
        within a priority.  Returns ``None`` on timeout or once the
        scheduler is closed and drained.  The returned job is atomically
        marked RUNNING.  Jobs whose deadline already passed while queued are
        failed with :class:`~repro.service.faults.DeadlineExceededError`
        instead of being returned — their ticket futures are resolved
        *outside* the lock so user callbacks can never run under it.
        """
        while True:
            expired: List[Tuple[Job, List[Ticket]]] = []
            job: Optional[Job] = None
            give_up = False
            with self._lock:
                while True:
                    candidate = self._pop_locked(only_lanes)
                    if candidate is not None:
                        self._queued_count -= 1
                        self._lane_queued[candidate.lane] -= 1
                        if (
                            candidate.deadline_at is not None
                            and time.time() >= candidate.deadline_at
                        ):
                            self._expired += 1
                            self._lane_stats[candidate.lane]["expired"] += 1
                            expired.append(
                                (candidate, self._settle_locked(candidate, DONE))
                            )
                            continue
                        candidate.state = RUNNING
                        job = candidate
                        break
                    if expired:
                        # Settle the expired tickets before deciding whether
                        # to wait again.
                        break
                    if self._closed:
                        give_up = True
                        break
                    if not self._available.wait(timeout=timeout):
                        give_up = True
                        break
            for stale, tickets in expired:
                exc = DeadlineExceededError(
                    f"deadline expired before job {stale.key!r} could start"
                )
                for ticket in tickets:
                    if not ticket.future.done():
                        ticket.future.set_exception(exc)
            if job is not None or give_up:
                return job

    def _pop_lane_locked(self, lane: str) -> Optional[Job]:
        heap = self._heaps[lane]
        while heap:
            neg_priority, _, job = heapq.heappop(heap)
            if (
                job.state != QUEUED
                or -neg_priority != job.priority
                or job.lane != lane
            ):
                continue  # cancelled/shed job, stale bump or promotion entry
            return job
        return None

    def _pop_locked(
        self, only_lanes: Optional[Collection[str]] = None
    ) -> Optional[Job]:
        """Smooth weighted round-robin across lanes with queued work."""
        while True:
            candidates = [
                name
                for name in self._lane_order
                if self._heaps[name] and (only_lanes is None or name in only_lanes)
            ]
            if not candidates:
                return None
            if len(candidates) == 1:
                chosen = candidates[0]
            else:
                # Nginx-style smooth WRR: every contender earns its weight,
                # the richest lane pops and pays back the total.  Ties break
                # toward the more valuable lane (candidates are in lane
                # order and ``max`` keeps the first maximum).
                total = 0
                for name in candidates:
                    weight = self._lane_specs[name].weight
                    total += weight
                    self._wrr_credit[name] += weight
                chosen = max(candidates, key=lambda n: self._wrr_credit[n])
                self._wrr_credit[chosen] -= total
            job = self._pop_lane_locked(chosen)
            if job is not None:
                return job
            # The chosen heap held only stale entries (now drained); retry.

    # ------------------------------------------------------------- completion
    def complete(self, job: Job, result: Any) -> None:
        """Resolve every ticket of *job* with *result*."""
        with self._lock:
            tickets = self._settle_locked(job, DONE)
            self._completed += 1
            self._lane_stats[job.lane]["completed"] += 1
        for ticket in tickets:
            if not ticket.future.done():
                ticket.future.set_result(result)

    def fail(self, job: Job, exc: BaseException) -> None:
        """Fail every ticket of *job* with *exc*."""
        with self._lock:
            tickets = self._settle_locked(job, DONE)
            self._failed += 1
        for ticket in tickets:
            if not ticket.future.done():
                ticket.future.set_exception(exc)

    def _settle_locked(self, job: Job, state: str) -> List[Ticket]:
        job.state = state
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        return list(job.tickets)

    # ------------------------------------------------------------ cancellation
    def cancel(self, ticket: Ticket) -> bool:
        """Detach *ticket*; cancel its job when it was the last one attached.

        Returns ``True`` when the ticket was still pending (its future is then
        cancelled); ``False`` when the job had already settled.
        """
        notify: Optional[Job] = None
        with self._lock:
            job = ticket.job
            if ticket.cancelled or job.state in (DONE, CANCELLED):
                return False
            ticket.cancelled = True
            job.tickets.remove(ticket)
            if not job.tickets:
                if job.state == QUEUED:
                    job.state = CANCELLED  # lazily skipped by _pop_lane_locked
                    self._queued_count -= 1
                    self._lane_queued[job.lane] -= 1
                    self._cancelled_jobs += 1
                    if self._inflight.get(job.key) is job:
                        del self._inflight[job.key]
                elif job.state == RUNNING:
                    # The pool decides whether to abort.  Remove the job from
                    # the coalescing map immediately: a fresh request arriving
                    # after this point must trigger a *new* solve, not attach
                    # to a walk that is about to be aborted and inherit a
                    # CancelledError it never asked for.
                    if self._inflight.get(job.key) is job:
                        del self._inflight[job.key]
                    notify = job
        ticket.future.cancel()
        if notify is not None and self.on_cancel_running is not None:
            self.on_cancel_running(notify)
        return True

    # ---------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Refuse new submissions and wake blocked consumers."""
        with self._lock:
            self._closed = True
            self._available.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def lane_order(self) -> Tuple[str, ...]:
        """Configured lane names, most valuable first."""
        return self._lane_order

    def pending_jobs(self, lane: Optional[str] = None) -> int:
        """Distinct jobs queued (not yet handed to the pool)."""
        with self._lock:
            if lane is None:
                return self._queued_count
            return self._lane_queued[lane]

    def inflight_jobs(self) -> int:
        """Distinct jobs queued or running."""
        with self._lock:
            return len(self._inflight)

    def stats(self) -> Dict[str, Any]:
        """Monotonic counters plus current depth, per lane and per tenant."""
        with self._lock:
            lanes = {
                name: {
                    "queued": self._lane_queued[name],
                    "depth": (
                        self._lane_specs[name].depth
                        if self._lane_specs[name].depth is not None
                        else -1
                    ),
                    "weight": self._lane_specs[name].weight,
                    **self._lane_stats[name],
                }
                for name in self._lane_order
            }
            tenants = {
                name: dict(counters)
                for name, counters in self._tenant_stats.items()
            }
            return {
                "submitted": self._submitted,
                "coalesced": self._coalesced,
                "rejected": self._rejected,
                "completed": self._completed,
                "failed": self._failed,
                "cancelled_jobs": self._cancelled_jobs,
                "expired": self._expired,
                "shed": self._shed,
                "quota_rejected": self._quota_rejected,
                "queued": self._queued_count,
                "inflight": len(self._inflight),
                "max_depth": self.max_depth if self.max_depth is not None else -1,
                "lanes": lanes,
                "tenants": tenants,
            }
