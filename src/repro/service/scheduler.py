"""Priority request queue with coalescing, backpressure and cancellation.

This is the admission-control layer of the service.  It is deliberately
engine-agnostic: a *job* is just a key (the instance identity), a payload (an
opaque spec the worker pool understands) and a priority.  The scheduler's
value is in what it does **not** let through:

* **Coalescing** — concurrent requests for the same instance key attach to
  one in-flight job (queued *or* already running) and all receive its result.
  N identical requests trigger exactly one solve.
* **Priority ordering** — higher priority pops first; a coalesced join with a
  higher priority than the queued job *bumps* the job (lazily, via stale heap
  entries), so a premium request never waits behind the batch queue.
* **Bounded depth with explicit backpressure** — when ``max_depth`` distinct
  jobs are queued, :meth:`RequestScheduler.submit` raises
  :class:`SchedulerSaturatedError` instead of buffering unboundedly; callers
  (the HTTP layer) translate that into *503 Retry later*.  Joins to an
  existing job are always admitted — they add no work.
* **Cancellation** — every request holds its own ticket; cancelling the last
  ticket of a queued job removes the job, and cancelling the last ticket of a
  running job fires the ``on_cancel_running`` callback so the worker pool can
  abort the walk.

Threading model: all state is guarded by one lock; consumers block on a
condition in :meth:`next_job`.  Futures are
:class:`concurrent.futures.Future`, so callers can wait with timeouts or add
callbacks without this module caring which.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.service.faults import DeadlineExceededError

__all__ = ["Job", "RequestScheduler", "SchedulerSaturatedError", "Ticket"]


class SchedulerSaturatedError(ReproError, RuntimeError):
    """The queue is at ``max_depth``; the caller must retry later (backpressure)."""


#: Job lifecycle states.
QUEUED, RUNNING, DONE, CANCELLED = "queued", "running", "done", "cancelled"


@dataclass
class Job:
    """One unit of solving work, shared by every coalesced ticket."""

    key: Tuple[Any, ...]
    payload: Dict[str, Any]
    priority: int
    seqno: int
    state: str = QUEUED
    tickets: List["Ticket"] = field(default_factory=list)
    #: Absolute wall-clock (``time.time()``) deadline shared by the job's
    #: tickets, or ``None`` when any attached request is unbounded.  A job
    #: still queued past its deadline is failed at pop time instead of being
    #: handed to a worker it can no longer satisfy.
    deadline_at: Optional[float] = None

    @property
    def width(self) -> int:
        """Number of requests currently attached (the coalescing width)."""
        return len(self.tickets)


@dataclass
class Ticket:
    """One request's handle on a (possibly shared) job."""

    job: Job
    future: Future = field(default_factory=Future)
    cancelled: bool = False

    @property
    def key(self) -> Tuple[Any, ...]:
        return self.job.key

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the job's outcome (raises its exception on failure)."""
        return self.future.result(timeout)

    def done(self) -> bool:
        return self.future.done()


class RequestScheduler:
    """Coalescing priority queue between the facade and the worker pool.

    Parameters
    ----------
    max_depth:
        Maximum number of *distinct queued* jobs (running jobs and coalesced
        joins do not count).  ``None`` disables backpressure.
    on_cancel_running:
        Callback invoked (outside the lock) with a :class:`Job` whose last
        ticket was cancelled while the job was running; the pool uses it to
        abort the walk.
    """

    def __init__(
        self,
        *,
        max_depth: Optional[int] = None,
        on_cancel_running: Optional[Callable[[Job], None]] = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1 or None, got {max_depth}")
        self.max_depth = max_depth
        self.on_cancel_running = on_cancel_running
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._heap: List[Tuple[int, int, Job]] = []  # (-priority, seqno, job)
        self._inflight: Dict[Tuple[Any, ...], Job] = {}  # QUEUED or RUNNING
        self._queued_count = 0
        self._seq = itertools.count()
        self._closed = False
        # Monotonic counters for stats().
        self._submitted = 0
        self._coalesced = 0
        self._rejected = 0
        self._completed = 0
        self._failed = 0
        self._cancelled_jobs = 0
        self._expired = 0

    # ---------------------------------------------------------------- producer
    def submit(
        self,
        key: Tuple[Any, ...],
        payload: Dict[str, Any],
        *,
        priority: int = 0,
        deadline_at: Optional[float] = None,
    ) -> Ticket:
        """Admit a request; coalesce onto an in-flight job when one exists.

        ``deadline_at`` is an absolute ``time.time()`` deadline; a job whose
        every ticket carries one is abandoned (tickets failed with
        :class:`~repro.service.faults.DeadlineExceededError`) if it is still
        queued when the deadline passes.  Raises
        :class:`SchedulerSaturatedError` when a *new* job would exceed
        ``max_depth``, and ``RuntimeError`` after :meth:`close`.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            return self._admit_locked(key, payload, priority, deadline_at)

    def submit_batch(
        self,
        entries: Sequence[Tuple],
    ) -> List[Ticket | SchedulerSaturatedError]:
        """Admit many requests under **one** lock acquisition (one scheduler
        pass for a whole ``POST /solve-batch`` body).

        ``entries`` is a list of ``(key, payload, priority)`` triples (an
        optional fourth element carries the absolute deadline).  The
        result list is aligned with the input: each slot holds either the
        admitted :class:`Ticket` or the :class:`SchedulerSaturatedError` that
        rejected that item.  Saturation is judged item by item in input
        order, so a batch that straddles ``max_depth`` admits a prefix of its
        distinct keys and rejects the rest — identical 503 semantics to the
        same requests arriving back to back, and items coalescing onto
        admitted (or already in-flight) jobs are always accepted.  Raises
        ``RuntimeError`` after :meth:`close` (nothing is admitted then).
        """
        results: List[Ticket | SchedulerSaturatedError] = []
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            for entry in entries:
                key, payload, priority = entry[0], entry[1], entry[2]
                deadline_at = entry[3] if len(entry) > 3 else None
                try:
                    results.append(
                        self._admit_locked(key, payload, priority, deadline_at)
                    )
                except SchedulerSaturatedError as exc:
                    results.append(exc)
        return results

    def _admit_locked(
        self,
        key: Tuple[Any, ...],
        payload: Dict[str, Any],
        priority: int,
        deadline_at: Optional[float] = None,
    ) -> Ticket:
        """One admission: coalesce, reject on saturation, or enqueue.

        The single shared implementation behind :meth:`submit` and
        :meth:`submit_batch`; the caller holds the lock.
        """
        self._submitted += 1
        job = self._inflight.get(key)
        if job is not None:
            ticket = Ticket(job)
            job.tickets.append(ticket)
            self._coalesced += 1
            # The job's deadline is the *loosest* of its tickets': one
            # unbounded join makes the job unbounded, otherwise the latest
            # deadline wins — an earlier joiner's patience never cuts short
            # a later joiner's budget.
            if deadline_at is None:
                job.deadline_at = None
            elif job.deadline_at is not None:
                job.deadline_at = max(job.deadline_at, deadline_at)
            if job.state == QUEUED and priority > job.priority:
                # Bump: re-push with the stronger priority; the old heap
                # entry becomes stale and is skipped on pop.
                job.priority = priority
                heapq.heappush(self._heap, (-priority, next(self._seq), job))
                self._available.notify()
            return ticket
        if self.max_depth is not None and self._queued_count >= self.max_depth:
            self._rejected += 1
            raise SchedulerSaturatedError(
                f"request queue is full ({self._queued_count} jobs queued, "
                f"max_depth={self.max_depth}); retry later"
            )
        job = Job(
            key=key,
            payload=dict(payload),
            priority=priority,
            seqno=next(self._seq),
            deadline_at=deadline_at,
        )
        ticket = Ticket(job)
        job.tickets.append(ticket)
        self._inflight[key] = job
        self._queued_count += 1
        heapq.heappush(self._heap, (-job.priority, job.seqno, job))
        self._available.notify()
        return ticket

    # ---------------------------------------------------------------- consumer
    def next_job(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the highest-priority queued job, blocking up to *timeout*.

        Returns ``None`` on timeout or once the scheduler is closed and
        drained.  The returned job is atomically marked RUNNING.  Jobs whose
        deadline already passed while queued are failed with
        :class:`~repro.service.faults.DeadlineExceededError` instead of being
        returned — their ticket futures are resolved *outside* the lock so
        user callbacks can never run under it.
        """
        while True:
            expired: List[Tuple[Job, List[Ticket]]] = []
            job: Optional[Job] = None
            give_up = False
            with self._lock:
                while True:
                    candidate = self._pop_locked()
                    if candidate is not None:
                        self._queued_count -= 1
                        if (
                            candidate.deadline_at is not None
                            and time.time() >= candidate.deadline_at
                        ):
                            self._expired += 1
                            expired.append(
                                (candidate, self._settle_locked(candidate, DONE))
                            )
                            continue
                        candidate.state = RUNNING
                        job = candidate
                        break
                    if expired:
                        # Settle the expired tickets before deciding whether
                        # to wait again.
                        break
                    if self._closed:
                        give_up = True
                        break
                    if not self._available.wait(timeout=timeout):
                        give_up = True
                        break
            for stale, tickets in expired:
                exc = DeadlineExceededError(
                    f"deadline expired before job {stale.key!r} could start"
                )
                for ticket in tickets:
                    if not ticket.future.done():
                        ticket.future.set_exception(exc)
            if job is not None or give_up:
                return job

    def _pop_locked(self) -> Optional[Job]:
        while self._heap:
            neg_priority, _, job = heapq.heappop(self._heap)
            if job.state != QUEUED or -neg_priority != job.priority:
                continue  # cancelled job, or stale entry from a priority bump
            return job
        return None

    # ------------------------------------------------------------- completion
    def complete(self, job: Job, result: Any) -> None:
        """Resolve every ticket of *job* with *result*."""
        with self._lock:
            tickets = self._settle_locked(job, DONE)
            self._completed += 1
        for ticket in tickets:
            if not ticket.future.done():
                ticket.future.set_result(result)

    def fail(self, job: Job, exc: BaseException) -> None:
        """Fail every ticket of *job* with *exc*."""
        with self._lock:
            tickets = self._settle_locked(job, DONE)
            self._failed += 1
        for ticket in tickets:
            if not ticket.future.done():
                ticket.future.set_exception(exc)

    def _settle_locked(self, job: Job, state: str) -> List[Ticket]:
        job.state = state
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        return list(job.tickets)

    # ------------------------------------------------------------ cancellation
    def cancel(self, ticket: Ticket) -> bool:
        """Detach *ticket*; cancel its job when it was the last one attached.

        Returns ``True`` when the ticket was still pending (its future is then
        cancelled); ``False`` when the job had already settled.
        """
        notify: Optional[Job] = None
        with self._lock:
            job = ticket.job
            if ticket.cancelled or job.state in (DONE, CANCELLED):
                return False
            ticket.cancelled = True
            job.tickets.remove(ticket)
            if not job.tickets:
                if job.state == QUEUED:
                    job.state = CANCELLED  # lazily skipped by _pop_locked
                    self._queued_count -= 1
                    self._cancelled_jobs += 1
                    if self._inflight.get(job.key) is job:
                        del self._inflight[job.key]
                elif job.state == RUNNING:
                    # The pool decides whether to abort.  Remove the job from
                    # the coalescing map immediately: a fresh request arriving
                    # after this point must trigger a *new* solve, not attach
                    # to a walk that is about to be aborted and inherit a
                    # CancelledError it never asked for.
                    if self._inflight.get(job.key) is job:
                        del self._inflight[job.key]
                    notify = job
        ticket.future.cancel()
        if notify is not None and self.on_cancel_running is not None:
            self.on_cancel_running(notify)
        return True

    # ---------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Refuse new submissions and wake blocked consumers."""
        with self._lock:
            self._closed = True
            self._available.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def pending_jobs(self) -> int:
        """Distinct jobs queued (not yet handed to the pool)."""
        with self._lock:
            return self._queued_count

    def inflight_jobs(self) -> int:
        """Distinct jobs queued or running."""
        with self._lock:
            return len(self._inflight)

    def stats(self) -> Dict[str, int]:
        """Monotonic counters plus current depth."""
        with self._lock:
            return {
                "submitted": self._submitted,
                "coalesced": self._coalesced,
                "rejected": self._rejected,
                "completed": self._completed,
                "failed": self._failed,
                "cancelled_jobs": self._cancelled_jobs,
                "expired": self._expired,
                "queued": self._queued_count,
                "inflight": len(self._inflight),
                "max_depth": self.max_depth if self.max_depth is not None else -1,
            }
