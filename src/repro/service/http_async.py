"""Asyncio HTTP/1.1 front-end for :class:`~repro.service.api.SolverService`.

The threaded front-end (:mod:`repro.service.http`) burns one OS thread per
in-flight connection, so hundreds of ``wait=true`` clients — the shape of the
paper's many-concurrent-searches workload — exhaust threads long before the
service core is busy.  This module serves the **same JSON routes** on a
single event loop (``asyncio.start_server`` plus a small hand-rolled
HTTP/1.1 parser; no third-party web stack, per the repository's stdlib+NumPy
dependency rule), so an idle waiting client costs one coroutine instead of
one thread, and adds the two capabilities that need an event loop to scale:

``POST /solve-batch``
    Body ``{"items": [{...}, ...], "wait": false, "priority": 0}`` where each
    item takes the same fields as ``POST /solve``.  The whole batch is
    admitted in **one scheduler pass**
    (:meth:`~repro.service.api.SolverService.submit_batch`); the response is
    a single ``{"count": N, "results": [...]}`` JSON document whose slots are
    aligned with the items: a resolved result (``{"status": "done", ...}``),
    a pending ticket (``{"status": "pending", "request_id": ...}``), or a
    **per-item** error (``{"status": "error", "code": 400|503, ...}`` —
    a malformed item or a saturated queue never fails its neighbours).
    An empty item list, a non-list ``items`` or more than
    ``ServiceConfig.max_batch_items`` items is a whole-batch 400.

``GET /events/<request_id>``
    ``text/event-stream`` of the request's life: a ``status`` snapshot,
    throttled ``progress`` samples from the search walks (the strategy
    harness's callback plumbing, crossing the worker boundary via the pool's
    result queue), and exactly one terminal ``done`` / ``failed`` /
    ``cancelled`` event, after which the stream closes.  A disconnecting
    client is detected promptly (half-close or failed write) and its
    subscription is released — no leaked callbacks.

Blocking service-core calls (submits, store-touching reads) cross the
boundary via ``loop.run_in_executor``; waiting on request futures uses
``asyncio.wrap_future``, which costs no thread at all.

:class:`AsyncServiceHTTPServer` mirrors the threaded server's surface
(``port``, ``service``, ``start_background()``, ``stop()``), so everything
that drives one drives the other — including the HTTP regression tests.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import threading
from concurrent.futures import CancelledError
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from http import HTTPStatus
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.service.api import (
    ProgressSubscription,
    ServiceConfig,
    ServiceRequest,
    SolverService,
)
from repro.service.faults import (
    CircuitOpenError,
    DeadlineExceededError,
    ServiceDegradedError,
)
from repro.service.http import _MAX_WAIT_SECONDS, _family_listing
from repro.service.scheduler import (
    RequestSheddedError,
    SchedulerQuotaError,
    SchedulerSaturatedError,
)

__all__ = ["AsyncServiceHTTPServer", "serve_async"]

#: Hard caps of the HTTP/1.1 parser (one misbehaving client must not be able
#: to balloon the server's memory).
_MAX_LINE = 16 * 1024
_MAX_HEADERS = 64
_MAX_BODY = 8 * 1024 * 1024

#: Comment line sent down idle SSE streams so dead peers are noticed even
#: when no progress is flowing.
_SSE_KEEPALIVE = 10.0

#: SSE event names that end the stream.
_SSE_TERMINAL = frozenset({"done", "failed", "cancelled"})


class _BadRequest(Exception):
    """Parse-level problem answered with a 400 and a closed connection."""


class _ConnectionClosed(Exception):
    """The peer went away mid-request; nothing further to send."""


class _HTTPRequest:
    """One parsed request: method, path, headers (lower-cased), JSON body."""

    __slots__ = ("method", "path", "version", "headers", "body", "close")

    def __init__(
        self,
        method: str,
        path: str,
        version: str,
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        self.version = version
        self.headers = headers
        self.body = body
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            self.close = connection != "keep-alive"
        else:
            self.close = connection == "close"

    def json(self) -> Optional[Dict[str, Any]]:
        """The body as a JSON object, ``None`` when malformed (like the
        threaded front-end's ``_read_json``)."""
        try:
            payload = json.loads(self.body.decode("utf-8") or "{}")
        except (ValueError, UnicodeDecodeError):
            return None
        return payload if isinstance(payload, dict) else None


class AsyncServiceHTTPServer:
    """Event-loop HTTP server owning (or borrowing) a :class:`SolverService`.

    The socket is bound synchronously in the constructor (so :attr:`port` is
    immediately valid, like the threaded server); the event loop runs either
    on a background daemon thread (:meth:`start_background` — tests, embedded
    use) or on the calling thread (:meth:`serve_forever` — the CLI).
    """

    def __init__(
        self,
        address: Tuple[str, int],
        service: Optional[SolverService] = None,
        *,
        config: Optional[ServiceConfig] = None,
        verbose: bool = False,
        backlog: int = 2048,
    ) -> None:
        self._owns_service = service is None
        self.service = service if service is not None else SolverService(config)
        self.verbose = verbose
        self.service.start()
        # A large accept backlog is part of the design: a burst of hundreds
        # of simultaneous connects must queue in the kernel instead of being
        # dropped into SYN retransmits.
        self._sock = socket.create_server(address, backlog=backlog)
        self._sock.setblocking(False)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Future] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._stop_requested = threading.Event()
        self._stopped = False
        self._drain = True
        self._conn_tasks: "set[asyncio.Task]" = set()
        # Blocking service-core calls (submit, store reads, stats) run here;
        # waiting on futures does not, so the pool stays small no matter how
        # many clients are parked on wait=true.
        self._executor = ThreadPoolExecutor(
            max_workers=min(32, 4 * (os.cpu_count() or 1)),
            thread_name_prefix="repro-http-async",
        )

    # ------------------------------------------------------------------ lifecycle
    @property
    def port(self) -> int:
        return self._sock.getsockname()[1]

    def start_background(self) -> None:
        """Serve on a daemon thread (tests and embedded use)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-http-async", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)

    def serve_forever(self) -> None:
        """Run the event loop on the calling thread until :meth:`stop`."""
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = self._loop.create_future()
        server = await asyncio.start_server(
            self._handle_client, sock=self._sock, limit=_MAX_LINE
        )
        try:
            # When serving on the main thread (the CLI), catch SIGTERM/SIGINT
            # inside the loop so shutdown runs the graceful path below instead
            # of unwinding through KeyboardInterrupt mid-write.
            self._loop.add_signal_handler(signal.SIGTERM, self._signal_stop)
            self._loop.add_signal_handler(signal.SIGINT, self._signal_stop)
        except (ValueError, NotImplementedError, RuntimeError):
            pass  # background-thread mode: signals stay with the embedding app
        self._started.set()
        try:
            await self._shutdown
        finally:
            # Graceful teardown, in order: stop accepting; close the owned
            # service *while the loop still runs* so failed pending futures
            # deliver their terminal SSE events to open /events streams; then
            # give in-flight connections a bounded drain before cancelling.
            server.close()
            await server.wait_closed()
            if self._owns_service:
                drain = self._drain
                timeout = self.service.config.drain_timeout if drain else 0.0
                await self._loop.run_in_executor(
                    self._executor,
                    lambda: self.service.close(drain=drain, timeout=timeout),
                )
            if self._conn_tasks:
                _, leftover = await asyncio.wait(
                    set(self._conn_tasks),
                    timeout=self.service.config.drain_timeout,
                )
                for task in leftover:
                    task.cancel()
                if leftover:
                    await asyncio.gather(*leftover, return_exceptions=True)

    def _signal_stop(self) -> None:
        """Signal-handler body: resolve the shutdown future (idempotent)."""
        if self._shutdown is not None and not self._shutdown.done():
            self._shutdown.set_result(None)

    def stop(self, *, drain: bool = True) -> None:
        """Stop serving; shut the service down when this server created it."""
        if self._stopped:
            return
        self._stopped = True
        self._drain = drain
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._signal_stop)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._thread is not None:
            self._thread.join(
                timeout=self.service.config.drain_timeout + 15.0
            )
            self._thread = None
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed by the loop
            pass
        self._executor.shutdown(wait=False)
        if self._owns_service:
            # Idempotent: the loop's teardown normally closed it already; this
            # covers servers whose loop never ran.
            self.service.close(
                drain=drain,
                timeout=self.service.config.drain_timeout if drain else 0.0,
            )

    # -------------------------------------------------------------------- parsing
    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[_HTTPRequest]:
        """Parse one HTTP/1.1 request; ``None`` on a clean EOF between
        requests; :class:`_BadRequest` on anything malformed."""
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError) as exc:
            raise _BadRequest("request line too long") from exc
        if not line:
            return None
        try:
            method, path, version = line.decode("latin-1").split()
        except ValueError as exc:
            raise _BadRequest("malformed request line") from exc
        headers: Dict[str, str] = {}
        while True:
            try:
                header = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError) as exc:
                raise _BadRequest("header line too long") from exc
            if header in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= _MAX_HEADERS:
                raise _BadRequest("too many headers")
            name, sep, value = header.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest(f"malformed header {name.strip()!r}")
            headers[name.strip().lower()] = value.strip()
        if headers.get("transfer-encoding") is not None:
            # Same contract as the threaded front-end: a chunked body has no
            # Content-Length, and silently treating it as empty would solve
            # with default parameters; reject loudly and close (the unread
            # body would desync a reused connection).
            raise _BadRequest(
                "unsupported Transfer-Encoding "
                f"{headers['transfer-encoding']!r}; "
                "send a Content-Length JSON body"
            )
        body = b""
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError as exc:
            raise _BadRequest("malformed Content-Length") from exc
        if length < 0 or length > _MAX_BODY:
            raise _BadRequest(f"unacceptable Content-Length {length}")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise _ConnectionClosed() from exc
        return _HTTPRequest(method, path, version, headers, body)

    # ------------------------------------------------------------------ responses
    @staticmethod
    def _json_bytes(
        status: int,
        payload: Dict[str, Any],
        *,
        close: bool = False,
        headers: Optional[Dict[str, str]] = None,
    ) -> bytes:
        body = json.dumps(payload).encode("utf-8")
        reason = HTTPStatus(status).phrase if status in HTTPStatus._value2member_map_ else ""
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
        )
        for name, value in (headers or {}).items():
            head += f"{name}: {value}\r\n"
        if close:
            head += "Connection: close\r\n"
        head += "\r\n"
        return head.encode("latin-1") + body

    @staticmethod
    def _reject(
        exc: BaseException, retry_after: float, status: int = 503
    ) -> Tuple[Any, ...]:
        """One shape for every backpressure/degraded/breaker rejection.

        Quota rejections reuse the body shape under a 429 status so clients
        can tell "the server is full" (503) from "you are over your quota"
        (429) without learning a second schema.
        """
        seconds = max(1, int(round(retry_after)))
        return (
            status,
            {"error": str(exc), "retry": True, "retry_after": seconds},
            False,
            {"Retry-After": str(seconds)},
        )

    @staticmethod
    def _deadline_response(
        exc: BaseException, request_id: Optional[str] = None
    ) -> Tuple[Any, ...]:
        """Deadline expiry: retrying with a fresh deadline is legitimate, so
        the 504 carries the same retry contract as the 503/429 rejections."""
        body: Dict[str, Any] = {
            "error": str(exc),
            "status": "deadline",
            "retry": True,
            "retry_after": 1,
        }
        if request_id is not None:
            body["request_id"] = request_id
        return 504, body, False, {"Retry-After": "1"}

    def _log(self, request: _HTTPRequest, status: int) -> None:
        if self.verbose:  # pragma: no cover - logging only
            print(f'async-http "{request.method} {request.path}" {status}')

    # ----------------------------------------------------------------- connection
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    writer.write(self._json_bytes(400, {"error": str(exc)}, close=True))
                    await writer.drain()
                    break
                except _ConnectionClosed:
                    break
                if request is None:
                    break
                if request.method == "GET" and request.path.startswith("/events/"):
                    await self._handle_events(
                        reader, writer, request.path[len("/events/") :]
                    )
                    break  # SSE streams are Connection: close by design
                reply = await self._dispatch(request)
                status, payload, close = reply[0], reply[1], reply[2]
                headers = reply[3] if len(reply) > 3 else None
                self._log(request, status)
                close = close or request.close
                # repro-lint: ignore[async-blocking] -- fires() is a pure
                # in-memory Bernoulli draw; an executor hop per response
                # would cost far more than the call it protects.
                if self.service.http_faults.fires("http.drop"):
                    # Injected connection drop: hang up instead of answering,
                    # so clients exercise their dropped-response handling.
                    break
                writer.write(
                    self._json_bytes(status, payload, close=close, headers=headers)
                )
                await writer.drain()
                if close:
                    break
        except (ConnectionError, TimeoutError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Loop teardown cancels the close handshake; the connection
                # is gone either way.
                pass

    # ------------------------------------------------------------------- routing
    async def _dispatch(self, request: _HTTPRequest) -> Tuple[Any, ...]:
        """Route one request; returns ``(status, json payload, close?)`` plus
        an optional fourth element of extra response headers."""
        method, path = request.method, request.path
        if method == "GET":
            if path == "/healthz":
                return await self._get_healthz()
            if path == "/stats":
                stats = await self._call(self.service.stats)
                return 200, stats, False
            if path == "/problems":
                return 200, {"problems": _family_listing()}, False
            if path.startswith("/result/"):
                return await self._respond_with_result(
                    path[len("/result/") :], wait=False
                )
            return 404, {"error": f"unknown path {path!r}"}, False
        if method == "POST":
            if path == "/solve":
                return await self._post_solve(request)
            if path == "/solve-batch":
                return await self._post_solve_batch(request)
            if path.startswith("/cancel/"):
                return await self._post_cancel(path[len("/cancel/") :])
            return 404, {"error": f"unknown path {path!r}"}, False
        return (
            501,
            {"error": f"unsupported method {method!r}"},
            True,
        )

    async def _call(self, fn: Any, *args: Any) -> Any:
        """Run a blocking service-core call on the executor."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, fn, *args)

    async def _get_healthz(self) -> Tuple[Any, ...]:
        health = await self._call(self.service.health)
        if health["status"] == "failing":
            health["retry"] = True
            health["retry_after"] = 5
            return 503, health, False, {"Retry-After": "5"}
        # "degraded" still answers 200: the immediate tiers serve, so load
        # balancers should keep routing; the body says why.
        return 200, health, False

    # ------------------------------------------------------------------ /solve
    async def _post_solve(
        self, request: _HTTPRequest
    ) -> Tuple[int, Dict[str, Any], bool]:
        payload = request.json()
        if payload is None or "order" not in payload:
            return 400, {"error": 'body must be JSON with an "order" field'}, False
        try:
            order = int(payload["order"])
        except (TypeError, ValueError):
            return 400, {"error": "order must be an integer"}, False
        wait = bool(payload.get("wait", False))
        try:
            priority = int(payload.get("priority", 0))
            max_time = payload.get("max_time")
            max_time = float(max_time) if max_time is not None else None
            deadline = payload.get("deadline")
            deadline = float(deadline) if deadline is not None else None
        except (TypeError, ValueError):
            return (
                400,
                {"error": "priority/max_time/deadline must be numeric"},
                False,
            )
        model_options = payload.get("model_options")
        if model_options is not None and not isinstance(model_options, dict):
            return 400, {"error": "model_options must be an object"}, False
        lane = payload.get("lane")
        tenant = payload.get("tenant") or request.headers.get("x-repro-tenant")
        try:
            service_request: ServiceRequest = await self._call(
                lambda: self.service.submit(
                    order,
                    kind=str(payload.get("kind", "costas")),
                    priority=priority,
                    max_time=max_time,
                    deadline=deadline,
                    solver=payload.get("solver"),
                    model_options=model_options,
                    use_store=payload.get("use_store"),
                    use_constructions=payload.get("use_constructions"),
                    lane=str(lane) if lane is not None else None,
                    tenant=str(tenant) if tenant is not None else None,
                )
            )
        except SchedulerQuotaError as exc:
            return self._reject(exc, exc.retry_after, status=429)
        except SchedulerSaturatedError as exc:
            return self._reject(exc, getattr(exc, "retry_after", 1.0))
        except (CircuitOpenError, ServiceDegradedError) as exc:
            return self._reject(exc, exc.retry_after)
        except DeadlineExceededError as exc:
            return self._deadline_response(exc)
        except ReproError as exc:
            return 400, {"error": str(exc)}, False
        if wait or service_request.done():
            return await self._respond_with_result(
                service_request.request_id, wait=wait
            )
        return (
            202,
            {"request_id": service_request.request_id, "status": "pending"},
            False,
        )

    async def _respond_with_result(
        self, request_id: str, *, wait: bool
    ) -> Tuple[int, Dict[str, Any], bool]:
        service_request = await self._call(self.service.request, request_id)
        if service_request is None:
            return 404, {"error": f"unknown request id {request_id!r}"}, False
        if not wait and not service_request.done():
            return 202, {"request_id": request_id, "status": "pending"}, False
        try:
            response = await self._await_request(service_request, wait=wait)
        except CancelledError:
            return 409, {"request_id": request_id, "status": "cancelled"}, False
        except FutureTimeoutError:
            return 202, {"request_id": request_id, "status": "pending"}, False
        except DeadlineExceededError as exc:
            return self._deadline_response(exc, request_id=request_id)
        except RequestSheddedError as exc:
            return self._reject(exc, exc.retry_after)
        except ReproError as exc:
            return 500, {"request_id": request_id, "error": str(exc)}, False
        return 200, {"status": "done", **response.as_dict()}, False

    @staticmethod
    async def _await_request(service_request: ServiceRequest, *, wait: bool) -> Any:
        """Await the request future **without** cancelling it on timeout.

        ``asyncio.wait_for`` cancels its awaitable on timeout, and a wrapped
        future propagates that cancellation to the service request itself —
        which a merely impatient reader must never do.  ``asyncio.wait``
        leaves the future untouched.
        """
        future = service_request.future
        if future.done():
            # repro-lint: ignore[async-blocking] -- guarded by done(): the
            # future is already settled, so result() returns immediately.
            return future.result()
        if not wait:
            raise FutureTimeoutError()
        wrapped = asyncio.wrap_future(future)
        done, _ = await asyncio.wait([wrapped], timeout=_MAX_WAIT_SECONDS)
        if not done:
            # Keep the wrapper's eventual outcome observed so a later failure
            # does not log an unretrieved-exception warning.
            wrapped.add_done_callback(
                lambda f: None if f.cancelled() else f.exception()
            )
            raise FutureTimeoutError()
        # repro-lint: ignore[async-blocking] -- asyncio.wait just reported
        # the wrapper done; result() is a settled-future read.
        return wrapped.result()

    # ------------------------------------------------------------------- /cancel
    async def _post_cancel(self, request_id: str) -> Tuple[int, Dict[str, Any], bool]:
        if await self._call(self.service.request, request_id) is None:
            # "No such request" is not the same condition as "too late to
            # cancel": unknown ids are a 404, settled ones a 409.
            return 404, {"error": f"unknown request id {request_id!r}"}, False
        ok = await self._call(self.service.cancel, request_id)
        return (
            200 if ok else 409,
            {"request_id": request_id, "cancelled": ok},
            False,
        )

    # -------------------------------------------------------------- /solve-batch
    async def _post_solve_batch(
        self, request: _HTTPRequest
    ) -> Tuple[int, Dict[str, Any], bool]:
        payload = request.json()
        if payload is None:
            return 400, {"error": 'body must be JSON with an "items" list'}, False
        items = payload.get("items")
        if not isinstance(items, list):
            return 400, {"error": '"items" must be a list of solve objects'}, False
        if not items:
            return 400, {"error": "batch is empty; send at least one item"}, False
        max_items = self.service.config.max_batch_items
        if len(items) > max_items:
            return (
                400,
                {
                    "error": f"batch of {len(items)} items exceeds the "
                    f"server limit of {max_items}"
                },
                False,
            )
        wait = bool(payload.get("wait", False))
        try:
            priority = int(payload.get("priority", 0))
        except (TypeError, ValueError):
            return 400, {"error": "priority must be numeric"}, False
        batch_tenant = payload.get("tenant") or request.headers.get(
            "x-repro-tenant"
        )
        try:
            outcomes = await self._call(
                lambda: self.service.submit_batch(
                    items,
                    priority=priority,
                    tenant=str(batch_tenant) if batch_tenant is not None else None,
                )
            )
        except ReproError as exc:
            return 400, {"error": str(exc)}, False
        if wait:
            pending = [
                asyncio.wrap_future(outcome.future)
                for outcome in outcomes
                if isinstance(outcome, ServiceRequest) and not outcome.done()
            ]
            if pending:
                done, not_done = await asyncio.wait(
                    pending, timeout=_MAX_WAIT_SECONDS
                )
                # Observe every wrapper's outcome (the response is built from
                # the underlying concurrent futures), or failed items would
                # log "exception was never retrieved" on collection.
                for wrapper in done:
                    if not wrapper.cancelled():
                        wrapper.exception()
                for leftover in not_done:
                    leftover.add_done_callback(
                        lambda f: None if f.cancelled() else f.exception()
                    )
        results = [self._batch_item_result(outcome) for outcome in outcomes]
        return 200, {"count": len(results), "results": results}, False

    @staticmethod
    def _batch_item_result(outcome: Any) -> Dict[str, Any]:
        """One slot of the batch response, mirroring /solve's shapes."""
        if isinstance(
            outcome,
            (
                SchedulerSaturatedError,
                RequestSheddedError,
                CircuitOpenError,
                ServiceDegradedError,
            ),
        ):
            seconds = max(1, int(round(getattr(outcome, "retry_after", 1.0))))
            return {
                "status": "error",
                "code": 503,
                "error": str(outcome),
                "retry": True,
                "retry_after": seconds,
            }
        if isinstance(outcome, SchedulerQuotaError):
            seconds = max(1, int(round(outcome.retry_after)))
            return {
                "status": "error",
                "code": 429,
                "error": str(outcome),
                "retry": True,
                "retry_after": seconds,
            }
        if isinstance(outcome, DeadlineExceededError):
            return {
                "status": "error",
                "code": 504,
                "error": str(outcome),
                "retry": True,
                "retry_after": 1,
            }
        if isinstance(outcome, ReproError):
            return {"status": "error", "code": 400, "error": str(outcome)}
        service_request: ServiceRequest = outcome
        if not service_request.done():
            return {"request_id": service_request.request_id, "status": "pending"}
        future = service_request.future
        if future.cancelled():
            return {
                "request_id": service_request.request_id,
                "status": "cancelled",
            }
        exc = future.exception()
        if exc is not None:
            return {
                "request_id": service_request.request_id,
                "status": "deadline"
                if isinstance(exc, DeadlineExceededError)
                else "failed",
                "error": str(exc),
            }
        return {"status": "done", **future.result().as_dict()}

    # ------------------------------------------------------------------- /events
    async def _handle_events(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request_id: str,
    ) -> None:
        """Stream one request's progress as server-sent events."""
        subscription = await self._call(self.service.subscribe, request_id)
        if subscription is None:
            writer.write(
                self._json_bytes(
                    404, {"error": f"unknown request id {request_id!r}"}, close=True
                )
            )
            await writer.drain()
            return
        loop = asyncio.get_running_loop()
        events: "asyncio.Queue[Dict[str, Any]]" = asyncio.Queue()
        subscription.set_listener(
            lambda event: loop.call_soon_threadsafe(events.put_nowait, event)
        )
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        # SSE clients send nothing after the request: a read completing means
        # the peer closed (or broke) the connection — stop streaming at once
        # rather than at the next failed write.
        disconnect = asyncio.ensure_future(reader.read(1))
        try:
            await writer.drain()
            while True:
                getter = asyncio.ensure_future(events.get())
                done, _ = await asyncio.wait(
                    {getter, disconnect},
                    timeout=_SSE_KEEPALIVE,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if disconnect in done:
                    getter.cancel()
                    break
                if not done:  # idle: prove the stream is alive
                    getter.cancel()
                    writer.write(b": keep-alive\r\n\r\n")
                    await writer.drain()
                    continue
                # repro-lint: ignore[async-blocking] -- getter is in the
                # done set from asyncio.wait; result() is a settled read.
                event = getter.result()
                name = event.get("event", "message")
                data = json.dumps(event)
                writer.write(f"event: {name}\ndata: {data}\n\n".encode("utf-8"))
                await writer.drain()
                if name in _SSE_TERMINAL:
                    break
        except (ConnectionError, TimeoutError):
            pass
        finally:
            disconnect.cancel()
            # Shielded: if teardown cancels this coroutine mid-await, the
            # executor job still completes and the subscription is not leaked.
            await asyncio.shield(
                self._call(self.service.unsubscribe, subscription)
            )


def serve_async(
    host: str = "127.0.0.1",
    port: int = 8000,
    *,
    config: Optional[ServiceConfig] = None,
    verbose: bool = True,
) -> AsyncServiceHTTPServer:
    """Construct a bound-but-not-serving async server (caller runs
    ``serve_forever``), mirroring :func:`repro.service.http.serve`."""
    return AsyncServiceHTTPServer((host, port), config=config, verbose=verbose)
