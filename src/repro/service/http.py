"""Stdlib-only JSON HTTP front-end for :class:`~repro.service.api.SolverService`.

Endpoints
---------
``POST /solve``
    Body ``{"order": 18, "kind": "costas", "priority": 0, "max_time": 60,
    "solver": "tabu", "model_options": {}, "wait": false}``.  ``kind``
    selects any family of the :mod:`repro.problems` registry (``"costas"``,
    ``"queens"``, ``"all-interval"``, ``"magic-square"``, aliases included);
    ``solver`` selects any strategy of the :mod:`repro.solvers` registry, an
    inline portfolio (``"adaptive+tabu"``, raced first-past-the-post), a
    named portfolio (``"mixed"``), a spec object (``{"name": "tabu",
    "params": {...}}``) or a list of spec objects; omitted = the server's
    default solver.  Returns ``200`` with the full result when it resolved
    immediately (store / construction tier, or ``wait=true``), else ``202``
    with ``{"request_id": ..., "status": "pending"}``.  A saturated queue
    answers ``503`` (backpressure made visible); an unknown solver or kind
    answers ``400``, as does a chunked request body (only ``Content-Length``
    bodies are supported).  With QoS lanes enabled, optional ``lane`` /
    ``tenant`` body fields (or the ``X-Repro-Tenant`` header) classify the
    request; an exhausted tenant quota answers ``429`` and a shed request
    ``503``, both with ``Retry-After``.
``GET /result/<request_id>``
    ``200`` with the result, ``202`` while pending, ``404`` for unknown ids,
    ``499``-style ``409`` for cancelled requests.
``POST /cancel/<request_id>``
    Cancel a pending request: ``200`` on success, ``404`` for unknown
    request ids, ``409`` for requests that already settled.
``GET /problems``
    The registered problem families (name, aliases, symmetry group,
    construction availability).
``GET /stats``
    The combined store / scheduler / pool counters, including per-kind
    request/solve breakdowns.
``GET /healthz``
    Liveness probe: ``{"status": "ok"}`` plus worker liveness.

Built on :class:`http.server.ThreadingHTTPServer` — no third-party web stack,
per the repository's stdlib+NumPy dependency rule.  Each request runs on its
own thread; :class:`SolverService` is thread-safe by construction.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import CancelledError
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import ReproError
from repro.problems import list_families
from repro.service.api import ServiceConfig, SolverService
from repro.service.faults import (
    CircuitOpenError,
    DeadlineExceededError,
    ServiceDegradedError,
)
from repro.service.scheduler import (
    RequestSheddedError,
    SchedulerQuotaError,
    SchedulerSaturatedError,
)

__all__ = ["ServiceHTTPServer", "serve"]


def _family_listing() -> list:
    """JSON-friendly description of every registered problem family."""
    return [family.describe() for family in list_families()]

#: Upper bound on ``wait=true`` blocking, so a client cannot pin an HTTP
#: thread forever.
_MAX_WAIT_SECONDS = 600.0


class _UnsupportedBody(Exception):
    """A request body this front-end deliberately refuses to parse."""


class _Handler(BaseHTTPRequestHandler):
    """One HTTP request; the service lives on the server object."""

    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    # --------------------------------------------------------------- plumbing
    def log_message(self, fmt: str, *args: Any) -> None:  # pragma: no cover
        if self.server.verbose:
            super().log_message(fmt, *args)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        if self.server.service.http_faults.fires("http.drop"):
            # Injected connection drop: hang up instead of answering, so
            # clients exercise their dropped-response handling.
            self.close_connection = True
            return
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            # Set by the handler when the request body was left unread (e.g.
            # a rejected chunked body): the connection cannot be reused, and
            # the client must be told.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Optional[Dict[str, Any]]:
        # A chunked (or otherwise transfer-encoded) body has no
        # Content-Length; silently treating it as empty would run the solve
        # with default parameters instead of the client's.  Reject it loudly.
        if self.headers.get("Transfer-Encoding") is not None:
            raise _UnsupportedBody(
                "unsupported Transfer-Encoding "
                f"{self.headers['Transfer-Encoding']!r}; "
                "send a Content-Length JSON body"
            )
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b"{}"
            payload = json.loads(raw.decode("utf-8") or "{}")
        except (ValueError, UnicodeDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def _send_503(self, exc: BaseException, retry_after: float) -> None:
        """One shape for every backpressure/degraded/breaker rejection."""
        seconds = max(1, int(round(retry_after)))
        self._send_json(
            503,
            {"error": str(exc), "retry": True, "retry_after": seconds},
            headers={"Retry-After": str(seconds)},
        )

    def _send_429(self, exc: SchedulerQuotaError) -> None:
        """Per-tenant quota exhaustion: 429 with the token-bucket refill hint."""
        seconds = max(1, int(round(exc.retry_after)))
        self._send_json(
            429,
            {"error": str(exc), "retry": True, "retry_after": seconds},
            headers={"Retry-After": str(seconds)},
        )

    def _send_504(self, exc: BaseException, request_id: Optional[str] = None) -> None:
        """Deadline expiry: retrying with a fresh deadline is legitimate, so
        the 504 carries the same retry contract as the 503/429 rejections."""
        body: Dict[str, Any] = {
            "error": str(exc),
            "status": "deadline",
            "retry": True,
            "retry_after": 1,
        }
        if request_id is not None:
            body["request_id"] = request_id
        self._send_json(504, body, headers={"Retry-After": "1"})

    def _tenant(self, payload: Dict[str, Any]) -> Optional[str]:
        """Tenant identity: the body field wins over the X-Repro-Tenant header."""
        tenant = payload.get("tenant") or self.headers.get("X-Repro-Tenant")
        return str(tenant) if tenant else None

    # ---------------------------------------------------------------- routing
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        if self.path == "/healthz":
            health = service.health()
            if health["status"] == "failing":
                # Failing is (usually) transient — workers respawn, stores
                # come back — so the 503 keeps the retry contract.
                health["retry"] = True
                health["retry_after"] = 5
                self._send_json(503, health, headers={"Retry-After": "5"})
            else:
                # "degraded" still answers 200: the immediate tiers serve, so
                # load balancers should keep routing; the body says why.
                self._send_json(200, health)
        elif self.path == "/stats":
            self._send_json(200, service.stats())
        elif self.path == "/problems":
            self._send_json(200, {"problems": _family_listing()})
        elif self.path.startswith("/result/"):
            self._get_result(self.path[len("/result/") :])
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/solve":
            self._post_solve()
        elif self.path.startswith("/cancel/"):
            request_id = self.path[len("/cancel/") :]
            service = self.server.service
            if service.request(request_id) is None:
                # "No such request" is not the same condition as "too late
                # to cancel": unknown ids are a 404, settled ones a 409.
                self._send_json(
                    404, {"error": f"unknown request id {request_id!r}"}
                )
                return
            ok = service.cancel(request_id)
            self._send_json(
                200 if ok else 409,
                {"request_id": request_id, "cancelled": ok},
            )
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    # ---------------------------------------------------------------- handlers
    def _post_solve(self) -> None:
        try:
            payload = self._read_json()
        except _UnsupportedBody as exc:
            # The unread (chunked) body is still in the stream; reusing the
            # keep-alive connection would parse it as the next request line.
            self.close_connection = True
            self._send_json(400, {"error": str(exc)})
            return
        if payload is None or "order" not in payload:
            self._send_json(400, {"error": 'body must be JSON with an "order" field'})
            return
        try:
            order = int(payload["order"])
        except (TypeError, ValueError):
            self._send_json(400, {"error": "order must be an integer"})
            return
        wait = bool(payload.get("wait", False))
        try:
            priority = int(payload.get("priority", 0))
            max_time = payload.get("max_time")
            max_time = float(max_time) if max_time is not None else None
            deadline = payload.get("deadline")
            deadline = float(deadline) if deadline is not None else None
        except (TypeError, ValueError):
            self._send_json(
                400, {"error": "priority/max_time/deadline must be numeric"}
            )
            return
        model_options = payload.get("model_options")
        if model_options is not None and not isinstance(model_options, dict):
            self._send_json(400, {"error": "model_options must be an object"})
            return
        lane = payload.get("lane")
        try:
            request = self.server.service.submit(
                order,
                kind=str(payload.get("kind", "costas")),
                priority=priority,
                max_time=max_time,
                deadline=deadline,
                solver=payload.get("solver"),
                model_options=model_options,
                use_store=payload.get("use_store"),
                use_constructions=payload.get("use_constructions"),
                lane=str(lane) if lane is not None else None,
                tenant=self._tenant(payload),
            )
        except SchedulerQuotaError as exc:
            self._send_429(exc)
            return
        except SchedulerSaturatedError as exc:
            self._send_503(exc, getattr(exc, "retry_after", 1.0))
            return
        except (CircuitOpenError, ServiceDegradedError) as exc:
            self._send_503(exc, exc.retry_after)
            return
        except DeadlineExceededError as exc:
            self._send_504(exc)
            return
        except ReproError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        if wait or request.done():
            self._respond_with_result(request.request_id, wait=wait)
            return
        self._send_json(
            202, {"request_id": request.request_id, "status": "pending"}
        )

    def _get_result(self, request_id: str) -> None:
        self._respond_with_result(request_id, wait=False)

    def _respond_with_result(self, request_id: str, *, wait: bool) -> None:
        service = self.server.service
        request = service.request(request_id)
        if request is None:
            self._send_json(404, {"error": f"unknown request id {request_id!r}"})
            return
        if not wait and not request.done():
            self._send_json(202, {"request_id": request_id, "status": "pending"})
            return
        try:
            response = request.result(timeout=_MAX_WAIT_SECONDS if wait else 0)
        except CancelledError:
            self._send_json(409, {"request_id": request_id, "status": "cancelled"})
            return
        except FutureTimeoutError:
            self._send_json(202, {"request_id": request_id, "status": "pending"})
            return
        except DeadlineExceededError as exc:
            self._send_504(exc, request_id=request_id)
            return
        except RequestSheddedError as exc:
            # A queued job failed while this client waited on it: the
            # scheduler shed it to admit higher-value work.  Same 503 body
            # shape as admission-time backpressure.
            self._send_503(exc, exc.retry_after)
            return
        except ReproError as exc:
            self._send_json(500, {"request_id": request_id, "error": str(exc)})
            return
        self._send_json(200, {"status": "done", **response.as_dict()})


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server owning (or borrowing) a :class:`SolverService`."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        service: Optional[SolverService] = None,
        *,
        config: Optional[ServiceConfig] = None,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self._owns_service = service is None
        self.service = service if service is not None else SolverService(config)
        self.verbose = verbose
        self.service.start()
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self.server_address[1]

    def start_background(self) -> None:
        """Serve on a daemon thread (tests and embedded use)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-http", daemon=True
        )
        self._thread.start()

    def stop(self, *, drain: bool = True) -> None:
        """Graceful stop: quit accepting, then drain the service (bounded).

        ``shutdown()`` stops the accept loop (in-flight handler threads keep
        running as daemons); the owned service then refuses new work and
        drains in-flight solves for at most ``config.drain_timeout`` seconds
        before aborting what remains — so a wedged walk cannot hold the
        process hostage on SIGTERM.
        """
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._owns_service:
            self.service.close(
                drain=drain,
                timeout=self.service.config.drain_timeout if drain else 0.0,
            )


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    *,
    config: Optional[ServiceConfig] = None,
    verbose: bool = True,
) -> ServiceHTTPServer:
    """Construct a started-but-not-serving server (caller runs ``serve_forever``)."""
    return ServiceHTTPServer((host, port), config=config, verbose=verbose)
