"""SQLite-backed persistent solution store with symmetry-class keying.

Every registered problem family carries its own symmetry group
(:mod:`repro.problems`): the Costas dihedral-8, the N-Queens board
rotations/reflections, the All-Interval reverse/complement pair, the Magic
Square identity.  Whenever a solver finds one solution, the rest of its orbit
comes for free, and the store exploits this by keying every solution on
``(problem_kind, n, canonical_form)`` — the lexicographically smallest element
of the orbit under *that family's* group — so

* two processes that independently solve symmetry-equivalent arrays insert
  **one** row (``INSERT OR IGNORE`` on the canonical key), and
* a read for order ``n`` can expand any group variant of a stored row on
  demand (:meth:`SolutionStore.get` with ``variant=``), answering the whole
  equivalence class from a single stored array.  Only elements of the
  family's own group are ever applied: a stored queens solution is expanded
  through board symmetries, never through transforms of another family.

Concurrency
-----------
The database is opened in WAL mode with a busy timeout, which makes
concurrent readers and a writer from *different processes* safe (this is the
deployment shape of the service: HTTP threads read while pool callbacks
write).  Within a process, connections are borrowed from a small free-list
pool — ``ThreadingHTTPServer`` spawns a fresh thread per request, so
thread-local connections would pay full connection setup on every request
and leak one connection per dead thread.  Statistics (hits / misses /
inserts / duplicates) are tracked per :class:`SolutionStore` instance and
aggregate per-row hit counts persist in the table itself.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ReproError, SolverError
from repro.problems import ProblemFamily, get_family
from repro.service.faults import FaultInjector, RetryPolicy

__all__ = ["SolutionStore", "StoreStats", "StoreError", "StoreUnavailableError"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS solutions (
    problem_kind TEXT    NOT NULL,
    n            INTEGER NOT NULL,
    canonical    TEXT    NOT NULL,
    solution     TEXT    NOT NULL,
    source       TEXT    NOT NULL,
    created_at   REAL    NOT NULL,
    hits         INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (problem_kind, n, canonical)
);
CREATE INDEX IF NOT EXISTS idx_solutions_kind_n ON solutions (problem_kind, n);
"""


class StoreError(ReproError, ValueError):
    """An invalid solution or key was handed to the solution store."""


class StoreUnavailableError(StoreError):
    """The store is quarantined or persistently failing; callers must degrade.

    Raised only from the *write* path (reads degrade silently to a miss) so
    the service facade can keep serving a solve result whose persistence
    failed while flagging the store as sick in ``/healthz``.
    """


#: sqlite3.OperationalError messages that indicate a transient condition
#: worth retrying (WAL writer contention, slow disk) rather than corruption.
_TRANSIENT_MARKERS = (
    "database is locked",
    "database table is locked",
    "disk i/o error",
)


def _is_transient(exc: BaseException) -> bool:
    return isinstance(exc, sqlite3.OperationalError) and any(
        marker in str(exc).lower() for marker in _TRANSIENT_MARKERS
    )


@dataclass
class StoreStats:
    """Counters of one :class:`SolutionStore` instance (not the whole file).

    ``hits`` counts every answered read (cache or disk); ``cache_hits``
    is the subset served from the in-process LRU tier without touching
    SQLite, and ``cache_evictions`` counts entries dropped at capacity.
    """

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    duplicates: int = 0
    cache_hits: int = 0
    cache_evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


def _encode(perm: Sequence[int] | np.ndarray) -> str:
    return json.dumps([int(v) for v in perm], separators=(",", ":"))


def _decode(text: str) -> np.ndarray:
    return np.asarray(json.loads(text), dtype=np.int64)


class SolutionStore:
    """Persistent, process-safe store of solved instances.

    Parameters
    ----------
    path:
        SQLite database file; ``":memory:"`` gives an ephemeral store (single
        connection, so only thread-safe through the internal lock).
    validate:
        When ``True`` (default) solutions are re-checked with their family's
        validator before insertion, so a corrupted worker can never poison
        the store.
    faults:
        Optional :class:`~repro.service.faults.FaultInjector` driving the
        ``store.read.error`` / ``store.write.locked`` injection points.
    retry:
        Backoff policy for transient sqlite errors (locked database, disk
        I/O); defaults to three attempts with short exponential delays.
    cache_size:
        Entries in the in-process bounded LRU read-through cache keyed by
        ``(kind, n)`` (``0`` disables it, the default).  Hot keys skip
        SQLite entirely: the cached array is returned as-is (marked
        read-only, so the hot path allocates nothing) and the per-row
        persistent hit counter is *not* bumped — cache hits are visible as
        ``cache_hits`` in the instance stats instead.  Only positive
        entries are cached (a miss always goes to disk), so a cache in one
        process can never hide rows another process just inserted.

    Failure policy
    --------------
    Transient errors (``database is locked``, ``disk I/O error``) are retried
    with exponential backoff; once retries are exhausted, reads degrade to a
    miss and writes raise :class:`StoreUnavailableError`.  Any other
    ``sqlite3.DatabaseError`` — a corrupted or non-database file, at open
    time or mid-run — **quarantines** the store: every later read is an
    immediate miss, every write an immediate no-op, and :meth:`health`
    reports the reason so the service can advertise degraded mode instead of
    crashing.
    """

    def __init__(
        self,
        path: str | os.PathLike = ":memory:",
        *,
        validate: bool = True,
        faults: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        cache_size: int = 0,
    ) -> None:
        self.path = str(path)
        self.validate = validate
        self.stats = StoreStats()
        self._stats_lock = threading.Lock()
        self.cache_size = max(0, int(cache_size))
        self._cache: "OrderedDict[Tuple[str, int], np.ndarray]" = OrderedDict()
        self._cache_lock = threading.Lock()
        self._faults = faults
        self._retry = retry if retry is not None else RetryPolicy()
        self._quarantined: Optional[str] = None
        self._transient_retries = 0
        self._transient_failures = 0
        self._memory_conn: Optional[sqlite3.Connection] = None
        # A ":memory:" database lives on a single shared connection, which
        # sqlite3 only tolerates across threads when access is serialised.
        self._conn_lock = threading.Lock()
        # File-backed stores borrow from a free-list pool instead: HTTP
        # handler threads are born and die per request, so thread-local
        # connections would be created (schema script, PRAGMAs) on every
        # request and leaked with every dead thread.
        self._pool: List[sqlite3.Connection] = []
        self._pool_lock = threading.Lock()
        self._closed = False
        if self.path == ":memory:":
            self._memory_conn = self._connect()
        else:
            # Create the schema eagerly so concurrent openers find it, and
            # seed the pool with the connection.  A file that is not a
            # database quarantines the store instead of killing the service.
            try:
                self._pool.append(self._connect())
            except sqlite3.DatabaseError as exc:
                if _is_transient(exc):
                    raise
                self._quarantine(f"open failed: {exc}")

    # ------------------------------------------------------------ connections
    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0, check_same_thread=False)
        conn.execute("PRAGMA busy_timeout = 30000")
        if self.path != ":memory:":
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = NORMAL")
        conn.executescript(_SCHEMA)
        conn.commit()
        return conn

    @contextmanager
    def _borrow(self) -> Iterator[sqlite3.Connection]:
        """Borrow a connection: the serialised shared one for ``:memory:``,
        a pooled (or freshly opened) one for file-backed stores."""
        if self._memory_conn is not None:
            with self._conn_lock:
                # repro-lint: ignore[lock-blocking] -- serialising SQLite on
                # the single shared :memory: connection is this lock's whole
                # purpose; a per-thread connection would see a different db.
                yield self._memory_conn
            return
        with self._pool_lock:
            conn = self._pool.pop() if self._pool else None
        if conn is None:
            conn = self._connect()
        try:
            yield conn
        except BaseException:
            # Never return a connection with an open transaction to the
            # pool; a connection too broken to roll back is discarded.
            try:
                conn.rollback()
            except sqlite3.Error:
                try:
                    conn.close()
                except sqlite3.Error:
                    pass
                conn = None
            raise
        finally:
            if conn is not None:
                with self._pool_lock:
                    if self._closed:
                        conn.close()
                    else:
                        self._pool.append(conn)

    def close(self) -> None:
        """Close this instance's connections (the file remains valid)."""
        if self._memory_conn is not None:
            self._memory_conn.close()
            self._memory_conn = None
            return
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()

    def __enter__(self) -> "SolutionStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # --------------------------------------------------------- failure policy
    def _quarantine(self, reason: str) -> None:
        with self._stats_lock:
            if self._quarantined is None:
                self._quarantined = reason

    @property
    def quarantined(self) -> Optional[str]:
        """Quarantine reason, or ``None`` while the store is healthy."""
        with self._stats_lock:
            return self._quarantined

    def _retry_sleep(self, delay: float) -> None:
        with self._stats_lock:
            self._transient_retries += 1
        time.sleep(delay)

    def _guarded(
        self,
        point: str,
        fn: Callable[[], Any],
        default: Any,
        *,
        raise_on_failure: bool = False,
    ) -> Any:
        """Run one DB operation under the store's failure policy.

        *point* is the fault-injection point exercised before each attempt;
        *default* is what a degraded (quarantined or retries-exhausted) call
        returns, unless ``raise_on_failure`` upgrades a fresh failure to
        :class:`StoreUnavailableError` (the write path).
        """
        if self.quarantined is not None:
            return default

        def attempt() -> Any:
            if self._faults is not None and self._faults.fires(point):
                if point == "store.read.error":
                    raise sqlite3.OperationalError("disk I/O error [injected]")
                raise sqlite3.OperationalError("database is locked [injected]")
            return fn()

        try:
            return self._retry.run(
                attempt,
                retry_on=(sqlite3.OperationalError,),
                should_retry=_is_transient,
                sleep=self._retry_sleep,
            )
        except sqlite3.DatabaseError as exc:
            if _is_transient(exc):
                with self._stats_lock:
                    self._transient_failures += 1
            else:
                # Corruption (malformed image, not-a-database) is permanent:
                # quarantine so the service degrades instead of crashing.
                self._quarantine(str(exc))
            if raise_on_failure:
                raise StoreUnavailableError(
                    f"solution store unavailable: {exc}"
                ) from exc
            return default

    def health(self) -> Dict[str, Any]:
        """Readiness report for ``/healthz`` aggregation."""
        with self._stats_lock:
            quarantined = self._quarantined
            retries = self._transient_retries
            failures = self._transient_failures
        return {
            "status": "quarantined" if quarantined else "ok",
            "reason": quarantined,
            "transient_retries": retries,
            "transient_failures": failures,
            "path": self.path,
        }

    # ------------------------------------------------------------------ cache
    def _cache_get(self, key: Tuple[str, int]) -> Optional[np.ndarray]:
        """LRU lookup; the returned array is shared and read-only."""
        if self.cache_size <= 0:
            return None
        with self._cache_lock:
            value = self._cache.get(key)
            if value is not None:
                self._cache.move_to_end(key)
            return value

    def _cache_put(self, key: Tuple[str, int], arr: np.ndarray) -> None:
        """Write-through: remember *arr* for *key*, evicting the coldest."""
        if self.cache_size <= 0:
            return
        value = np.array(arr, dtype=np.int64)
        value.setflags(write=False)
        evicted = 0
        with self._cache_lock:
            self._cache[key] = value
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                evicted += 1
        if evicted:
            with self._stats_lock:
                self.stats.cache_evictions += evicted

    # ------------------------------------------------------------- operations
    @staticmethod
    def _family(problem_kind: str) -> ProblemFamily:
        """Resolve *problem_kind* to its registered family, as a store error."""
        try:
            return get_family(problem_kind)
        except SolverError as exc:
            raise StoreError(str(exc)) from None

    def insert(
        self,
        problem_kind: str,
        perm: Sequence[int] | np.ndarray,
        *,
        source: str = "search",
    ) -> bool:
        """Insert a solution; returns ``True`` when its class was new.

        The permutation is canonicalised under its family's symmetry group
        first, so every variant of one solution maps to the same row and
        concurrent inserters of equivalent arrays cannot double-count:
        ``INSERT OR IGNORE`` on the primary key makes exactly one of them win.
        """
        family = self._family(problem_kind)
        arr = np.asarray(perm, dtype=np.int64)
        if self.validate and not family.validator(arr):
            raise StoreError(
                f"refusing to store an invalid {family.name} solution "
                f"of size {arr.size}"
            )
        canonical = family.canonical_form(arr)

        def write() -> bool:
            with self._borrow() as conn:
                cursor = conn.execute(
                    "INSERT OR IGNORE INTO solutions "
                    "(problem_kind, n, canonical, solution, source, created_at, hits) "
                    "VALUES (?, ?, ?, ?, ?, ?, 0)",
                    (
                        family.name,
                        int(arr.size),
                        _encode(canonical),
                        _encode(arr),
                        source,
                        time.time(),
                    ),
                )
                conn.commit()
            return cursor.rowcount == 1

        inserted = self._guarded(
            "store.write.locked", write, None, raise_on_failure=True
        )
        if inserted is None:
            return False  # quarantined: persistence is disabled, not fatal
        # Write-through: the validated array answers (kind, n) from the LRU
        # tier from now on, whether or not its class row was new.
        self._cache_put((family.name, int(arr.size)), arr)
        with self._stats_lock:
            if inserted:
                self.stats.inserts += 1
            else:
                self.stats.duplicates += 1
        return inserted

    def get(
        self,
        problem_kind: str,
        n: int,
        *,
        variant: Optional[int] = None,
        count_hit: bool = True,
    ) -> Optional[np.ndarray]:
        """Any stored solution of size *n*, or ``None``.

        ``variant`` expands the requested group image of the stored
        representative on demand — the read-side half of the symmetry-class
        keying.  Indices are taken modulo the *family's own* group order and
        aligned with its ``symmetry.element_names`` (for Costas that is
        :data:`repro.costas.symmetry.SYMMETRY_NAMES`), so only transforms
        valid for the family are ever applied.

        With a cache configured, a hot ``(kind, n)`` answers from the
        in-process LRU without touching SQLite (variants expand from the
        cached base); only positive entries are cached, so a miss here is
        always a real disk read.
        """
        family = self._family(problem_kind)
        cache_key = (family.name, int(n))
        cached = self._cache_get(cache_key)
        if cached is not None:
            with self._stats_lock:
                self.stats.hits += 1
                self.stats.cache_hits += 1
            if variant is None:
                return cached
            return family.symmetry.variant(np.array(cached), variant)

        def read() -> Optional[tuple]:
            with self._borrow() as conn:
                row = conn.execute(
                    "SELECT canonical, solution FROM solutions "
                    "WHERE problem_kind = ? AND n = ? ORDER BY hits DESC, canonical LIMIT 1",
                    (family.name, int(n)),
                ).fetchone()
                if row is not None and count_hit:
                    conn.execute(
                        "UPDATE solutions SET hits = hits + 1 "
                        "WHERE problem_kind = ? AND n = ? AND canonical = ?",
                        (family.name, int(n), row[0]),
                    )
                    conn.commit()
            return row

        # A degraded read is a miss: the caller falls through to the
        # construction/search tiers instead of seeing an exception.
        row = self._guarded("store.read.error", read, None)
        with self._stats_lock:
            if row is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        if row is None:
            return None
        solution = _decode(row[1])
        self._cache_put(cache_key, solution)
        if variant is None:
            return solution
        return family.symmetry.variant(solution, variant)

    def contains_class(
        self, problem_kind: str, perm: Sequence[int] | np.ndarray
    ) -> bool:
        """Whether the symmetry class of *perm* is already stored."""
        family = self._family(problem_kind)
        arr = np.asarray(perm, dtype=np.int64)
        canonical = _encode(family.canonical_form(arr))

        def read() -> Optional[tuple]:
            with self._borrow() as conn:
                return conn.execute(
                    "SELECT 1 FROM solutions "
                    "WHERE problem_kind = ? AND n = ? AND canonical = ?",
                    (family.name, int(arr.size), canonical),
                ).fetchone()

        return self._guarded("store.read.error", read, None) is not None

    def count(self, problem_kind: Optional[str] = None, n: Optional[int] = None) -> int:
        """Number of stored symmetry classes, optionally filtered."""
        query = "SELECT COUNT(*) FROM solutions"
        clauses, params = [], []
        if problem_kind is not None:
            clauses.append("problem_kind = ?")
            params.append(self._family(problem_kind).name)
        if n is not None:
            clauses.append("n = ?")
            params.append(int(n))
        if clauses:
            query += " WHERE " + " AND ".join(clauses)

        def read() -> int:
            with self._borrow() as conn:
                (count,) = conn.execute(query, params).fetchone()
            return int(count)

        return int(self._guarded("store.read.error", read, 0))

    def orders(self, problem_kind: str) -> List[int]:
        """Distinct orders stored for *problem_kind*, ascending."""
        family = self._family(problem_kind)

        def read() -> List[tuple]:
            with self._borrow() as conn:
                return conn.execute(
                    "SELECT DISTINCT n FROM solutions WHERE problem_kind = ? ORDER BY n",
                    (family.name,),
                ).fetchall()

        return [int(r[0]) for r in self._guarded("store.read.error", read, [])]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly stats: instance counters plus persistent totals."""

        def read() -> tuple:
            with self._borrow() as conn:
                (rows, total_hits) = conn.execute(
                    "SELECT COUNT(*), COALESCE(SUM(hits), 0) FROM solutions"
                ).fetchone()
                by_kind = conn.execute(
                    "SELECT problem_kind, COUNT(*), COALESCE(SUM(hits), 0) "
                    "FROM solutions GROUP BY problem_kind"
                ).fetchall()
            return rows, total_hits, by_kind

        rows, total_hits, by_kind = self._guarded(
            "store.read.error", read, (0, 0, [])
        )
        with self._stats_lock:
            counters = self.stats.as_dict()
            quarantined = self._quarantined
        with self._cache_lock:
            cache_entries = len(self._cache)
        return {
            "path": self.path,
            "cache": {"entries": cache_entries, "capacity": self.cache_size},
            "stored_classes": int(rows),
            "persistent_hits": int(total_hits),
            "by_kind": {
                str(kind): {"stored_classes": int(n), "persistent_hits": int(h)}
                for kind, n, h in by_kind
            },
            "quarantined": quarantined,
            **counters,
        }
