"""QoS primitives for the admission pipeline: lanes, quotas, latency histograms.

This module is the policy vocabulary of the serving stack's admission
pipeline (classify -> admit -> coalesce -> schedule -> shed).  It owns no
queueing logic itself — :mod:`repro.service.scheduler` consumes these
primitives — so it can be imported from anywhere in the service without
dependency cycles.

* :class:`LaneSpec` — a priority lane: a name, a queued-depth bound, a
  weighted-fair share, and its position in the shedding order.  The stock
  policy has three lanes: ``interactive`` (latency-sensitive, largest
  share, never shed while cheaper work exists), ``batch`` (the default for
  unclassified traffic) and ``background`` (first to be refused or shed).
* :class:`TokenBucket` / :class:`TenantQuotas` — per-tenant rate limiting.
  One token is charged per *new* job; coalesced joins are free because they
  add no work.  An empty bucket yields the time until the next token, which
  the HTTP layer surfaces as ``Retry-After`` on a 429.
* :class:`LatencyHistogram` — log-bucketed service-time histogram with an
  allocation-free ``record`` hot path and p50/p95/p99 queries for
  ``GET /stats``.
* :func:`classify_lane` — derive a lane from the request's declared lane,
  deadline and priority.

Lane order is value order: earlier lanes are more valuable; shedding walks
the list from the *end* (cheapest-to-refuse first).
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "BACKGROUND",
    "BATCH",
    "DEFAULT_LANE",
    "DEFAULT_TENANT",
    "INTERACTIVE",
    "LaneSpec",
    "LatencyHistogram",
    "TenantQuotas",
    "TokenBucket",
    "classify_lane",
    "default_lanes",
    "parse_lanes",
]

#: Canonical lane names, most valuable first.
INTERACTIVE = "interactive"
BATCH = "batch"
BACKGROUND = "background"
#: The single implicit lane used when QoS lanes are disabled.
DEFAULT_LANE = "default"
#: Tenant assigned to requests that carry no ``X-Repro-Tenant`` header.
DEFAULT_TENANT = "default"

#: Stock weighted-fair shares: interactive gets 6 pops for background's 1,
#: so a saturated background lane can never starve interactive traffic.
_STOCK_WEIGHTS = {INTERACTIVE: 6, BATCH: 3, BACKGROUND: 1}


@dataclass(frozen=True)
class LaneSpec:
    """One priority lane of the admission pipeline.

    ``depth`` bounds the number of distinct *queued* jobs in this lane
    (``None`` = unbounded); ``weight`` is the lane's share in the smooth
    weighted-round-robin pop.  Lanes are ordered most-valuable-first in the
    scheduler; the shed pass walks that order backwards.
    """

    name: str
    depth: Optional[int] = None
    weight: int = 1

    def __post_init__(self) -> None:
        if not self.name or any(c in self.name for c in ",=:"):
            raise ValueError(f"invalid lane name {self.name!r}")
        if self.depth is not None and self.depth < 1:
            raise ValueError(f"lane {self.name}: depth must be >= 1 or None")
        if self.weight < 1:
            raise ValueError(f"lane {self.name}: weight must be >= 1")


def default_lanes(depth: Optional[int] = None) -> Tuple[LaneSpec, ...]:
    """The stock three-lane policy; every lane may queue up to *depth* jobs."""
    return (
        LaneSpec(INTERACTIVE, depth=depth, weight=_STOCK_WEIGHTS[INTERACTIVE]),
        LaneSpec(BATCH, depth=depth, weight=_STOCK_WEIGHTS[BATCH]),
        LaneSpec(BACKGROUND, depth=depth, weight=_STOCK_WEIGHTS[BACKGROUND]),
    )


def parse_lanes(
    spec: str, default_depth: Optional[int] = None
) -> Tuple[LaneSpec, ...]:
    """Parse a ``--lanes`` spec into lane specs (most valuable first).

    ``"default"`` (or an empty string) yields :func:`default_lanes`.
    Otherwise the spec is ``name[=depth[:weight]]`` entries joined by
    commas, e.g. ``interactive=64:6,batch=64:3,background=256:1``.  Omitted
    depths fall back to *default_depth*; omitted weights to the stock
    weight for known lane names (else 1).
    """
    spec = spec.strip()
    if not spec or spec == "default":
        return default_lanes(default_depth)
    lanes: List[LaneSpec] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        name, _, tail = token.partition("=")
        name = name.strip()
        depth: Optional[int] = default_depth
        weight = _STOCK_WEIGHTS.get(name, 1)
        if tail:
            depth_part, _, weight_part = tail.partition(":")
            if depth_part.strip():
                depth = int(depth_part)
            if weight_part.strip():
                weight = int(weight_part)
        lanes.append(LaneSpec(name, depth=depth, weight=weight))
    if not lanes:
        raise ValueError(f"no lanes in spec {spec!r}")
    names = [lane.name for lane in lanes]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate lane in spec {spec!r}")
    return tuple(lanes)


def classify_lane(
    *,
    lane: Optional[str] = None,
    deadline: Optional[float] = None,
    priority: int = 0,
    lanes: Sequence[str],
    interactive_deadline: float = 10.0,
) -> str:
    """Derive the lane for one request (the *classify* pipeline stage).

    An explicitly requested lane wins (it must exist).  Otherwise the lane
    is derived from how the request presents itself: a tight relative
    deadline (<= *interactive_deadline* seconds) or a positive priority
    marks it interactive; a negative priority marks it background; the
    rest is batch.  Raises ``ValueError`` for an unknown explicit lane.
    """
    if lane is not None:
        if lane not in lanes:
            raise ValueError(
                f"unknown lane {lane!r}; configured lanes: {', '.join(lanes)}"
            )
        return lane
    if deadline is not None and deadline <= interactive_deadline and INTERACTIVE in lanes:
        return INTERACTIVE
    if priority > 0 and INTERACTIVE in lanes:
        return INTERACTIVE
    if priority < 0 and BACKGROUND in lanes:
        return BACKGROUND
    if BATCH in lanes:
        return BATCH
    return lanes[0]


# --------------------------------------------------------------------- quotas
class TokenBucket:
    """Classic token bucket: *rate* tokens/second, capacity *burst*.

    Not thread-safe on its own — the scheduler calls it under its lock.
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp")

    def __init__(self, rate: float, burst: float) -> None:
        if rate < 0 or burst < 1:
            raise ValueError(f"bad quota rate={rate} burst={burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = time.monotonic()

    def take(self, now: Optional[float] = None) -> Optional[float]:
        """Charge one token; return ``None`` on success or the seconds until
        the next token becomes available (the ``Retry-After`` hint)."""
        if now is None:
            now = time.monotonic()
        elapsed = max(0.0, now - self._stamp)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return None
        if self.rate <= 0:
            return 60.0
        return max(0.001, (1.0 - self._tokens) / self.rate)


class TenantQuotas:
    """Per-tenant token buckets with an optional ``*`` catch-all.

    Tenants with no configured quota (and no catch-all) are unlimited.
    """

    def __init__(
        self,
        per_tenant: Dict[str, Tuple[float, float]],
        default: Optional[Tuple[float, float]] = None,
    ) -> None:
        self._limits = dict(per_tenant)
        self._default = default
        self._buckets: Dict[str, TokenBucket] = {}

    @classmethod
    def from_spec(cls, spec: str) -> "TenantQuotas":
        """Parse a ``--quota`` spec: ``tenant=rate[:burst]`` entries joined
        by commas; the tenant ``*`` sets the catch-all.  Burst defaults to
        ``max(1, rate)``."""
        per: Dict[str, Tuple[float, float]] = {}
        default: Optional[Tuple[float, float]] = None
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            name, _, tail = token.partition("=")
            name = name.strip()
            if not tail:
                raise ValueError(f"quota entry {token!r} needs tenant=rate[:burst]")
            rate_part, _, burst_part = tail.partition(":")
            rate = float(rate_part)
            burst = float(burst_part) if burst_part.strip() else max(1.0, rate)
            if name == "*":
                default = (rate, burst)
            else:
                per[name] = (rate, burst)
        if not per and default is None:
            raise ValueError(f"no quota entries in spec {spec!r}")
        return cls(per, default)

    def limit_for(self, tenant: str) -> Optional[Tuple[float, float]]:
        return self._limits.get(tenant, self._default)

    def take(self, tenant: str, now: Optional[float] = None) -> Optional[float]:
        """Charge *tenant* one token; ``None`` on success, else retry-after."""
        limit = self.limit_for(tenant)
        if limit is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(*limit)
        return bucket.take(now)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for tenant, bucket in self._buckets.items():
            out[tenant] = {
                "rate": bucket.rate,
                "burst": bucket.burst,
                "tokens": round(bucket._tokens, 3),
            }
        return out


# ----------------------------------------------------------------- histograms
class LatencyHistogram:
    """Log-bucketed latency histogram: O(log B) allocation-free ``record``.

    Bucket upper bounds grow geometrically from 0.1 ms to ~10 min; a
    percentile query answers with the upper bound of the bucket holding
    the target rank (<= one bucket width of overestimate, ~30%).
    """

    __slots__ = ("_bounds", "_counts", "_count", "_sum", "_max", "_lock")

    def __init__(
        self,
        min_bound: float = 1e-4,
        max_bound: float = 600.0,
        growth: float = 1.3,
    ) -> None:
        bounds: List[float] = []
        edge = min_bound
        while edge < max_bound:
            bounds.append(edge)
            edge *= growth
        bounds.append(float("inf"))
        self._bounds: Tuple[float, ...] = tuple(bounds)
        self._counts = [0] * len(bounds)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        idx = bisect_left(self._bounds, seconds)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    def percentile(self, pct: float) -> Optional[float]:
        """Seconds at the *pct* percentile, or ``None`` when empty."""
        with self._lock:
            if self._count == 0:
                return None
            target = max(1, int(self._count * pct / 100.0 + 0.9999))
            seen = 0
            for idx, count in enumerate(self._counts):
                seen += count
                if seen >= target:
                    bound = self._bounds[idx]
                    return self._max if bound == float("inf") else min(bound, self._max)
        return self._max

    def snapshot(self) -> Dict[str, float]:
        """Stats-endpoint payload: count, mean/max and p50/p95/p99 in ms."""
        with self._lock:
            count, total, peak = self._count, self._sum, self._max
        out: Dict[str, float] = {"count": count}
        if count:
            out["mean_ms"] = round(total / count * 1e3, 3)
            out["max_ms"] = round(peak * 1e3, 3)
            for pct, key in ((50.0, "p50_ms"), (95.0, "p95_ms"), (99.0, "p99_ms")):
                value = self.percentile(pct)
                out[key] = round((value or 0.0) * 1e3, 3)
        return out


def lane_names(lanes: Iterable[LaneSpec]) -> Tuple[str, ...]:
    return tuple(spec.name for spec in lanes)
