"""The :class:`SolverService` facade: store -> construction -> scheduler -> pool.

A request for "a solution of kind k and order n" — any family of the
:mod:`repro.problems` registry: Costas, N-Queens, All-Interval, Magic
Square — flows through three tiers, cheapest first:

1. **Store** — a previously solved (or symmetry-equivalent under the
   family's own group) instance answers from SQLite in microseconds.
2. **Construction** — orders with an algebraic shortcut (Welch / Lempel /
   Golomb for Costas, the modular closed form for N-Queens, the zigzag for
   All-Interval) are answered without search and the result is inserted into
   the store, so the search tier never sees them.
3. **Search** — everything else is admitted to the coalescing scheduler and
   solved by the long-lived worker pool; the solution is inserted into the
   store on the way out, upgrading all future requests for its symmetry class
   to tier 1.

Every submission returns a :class:`ServiceRequest` whose ``future`` resolves
to a :class:`ServiceResponse`; ``submit()``/``result()``/``cancel()``/
``stats()`` are the whole surface the HTTP layer needs.
"""

from __future__ import annotations

import itertools
import queue as queue_module
import threading
import time
from concurrent.futures import CancelledError, Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core import _ckernels
from repro.exceptions import ReproError, SolverError
from repro.problems import get_family
from repro.service.faults import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    FaultInjector,
    FaultPlan,
    ServiceDegradedError,
)
from repro.service.qos import (
    BACKGROUND,
    DEFAULT_LANE,
    DEFAULT_TENANT,
    INTERACTIVE,
    LaneSpec,
    LatencyHistogram,
    TenantQuotas,
    classify_lane,
    default_lanes,
    parse_lanes,
)
from repro.service.scheduler import Job, RequestScheduler, Ticket
from repro.service.store import SolutionStore, StoreUnavailableError
from repro.service.workers import PoolJobHandle, WorkerPool
from repro.solvers import (
    canonical_portfolio,
    get_solver,
    portfolio_label,
    resolve_portfolio,
)

__all__ = [
    "ProgressSubscription",
    "ServiceConfig",
    "ServiceRequest",
    "ServiceResponse",
    "SolverService",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`SolverService` instance."""

    store_path: str = ":memory:"
    n_workers: Optional[int] = None
    max_queue_depth: int = 256
    #: Independent walks per search-tier job (first past the post).  A
    #: portfolio request always gets at least one walk per portfolio member.
    walks_per_job: int = 1
    #: Vectorised walks per worker slot (compiled walk engine only): each
    #: walk of a job advances this many independent walks in one kernel
    #: batch and reports the best.  Solvers without population support run a
    #: single walk per slot regardless.
    population: int = 1
    #: Default per-walk wall-clock budget (seconds); ``None`` = unbounded.
    default_max_time: Optional[float] = 300.0
    #: Solver (or portfolio) used when a request does not name one: a
    #: registry name ("adaptive", "tabu"), an inline portfolio
    #: ("adaptive+tabu"), a named portfolio ("mixed") or a spec dict/list.
    default_solver: Optional[Any] = None
    #: Disable tiers globally (benchmarks use these to build the naive rival).
    use_store: bool = True
    use_constructions: bool = True
    seed_root: Optional[int] = None
    mp_context: Optional[str] = None
    #: Minimum seconds between progress samples per walk (the workers throttle
    #: at this cadence; ``0`` disables worker-side progress reporting).
    progress_interval: float = 0.25
    #: Upper bound on the number of items one ``submit_batch`` call (one
    #: ``POST /solve-batch`` body) may carry.
    max_batch_items: int = 128
    #: Fault-injection plan: a :class:`~repro.service.faults.FaultPlan`, its
    #: dict/JSON/CLI-shorthand form, or ``None`` to fall back to whatever the
    #: ``REPRO_FAULTS`` environment variable carries (usually nothing).
    fault_plan: Optional[Any] = None
    #: Consecutive search failures of one ``(kind, n)`` before its circuit
    #: breaker opens, and how long it stays open before a half-open probe.
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    #: How many times one walk is requeued after its worker died; the retry
    #: delays follow an exponential-backoff policy inside the pool.
    max_walk_retries: int = 2
    #: Seconds a worker may look dead before its walks are requeued.
    liveness_grace: float = 5.0
    #: Seconds past a walk's time budget before it is declared hung and its
    #: worker terminated.
    hang_grace: float = 5.0
    #: Default per-request deadline in seconds (``None`` = no deadline).
    default_deadline: Optional[float] = None
    #: Bounded wait for in-flight requests during graceful shutdown.
    drain_timeout: float = 10.0
    #: Seconds the pool may be observed with zero live workers before
    #: degraded mode refuses fresh solves.  Worker deaths are routinely
    #: transient (the collector respawns them within ``liveness_grace``),
    #: so a momentarily-empty pool queues work instead of bouncing it;
    #: only a pool that *stays* dead — respawns not taking — trips the
    #: refusal.  ``None`` derives ``max(2.0, 2 * liveness_grace)``.
    pool_dead_grace: Optional[float] = None
    #: QoS lanes: ``None`` keeps the single-lane scheduler (the pre-lane
    #: behaviour); ``True`` enables the stock interactive/batch/background
    #: policy; a ``--lanes`` spec string or a :class:`~repro.service.qos.LaneSpec`
    #: sequence customises it.  Per-lane depth defaults to
    #: ``max_queue_depth``, which also stays the *global* queued bound —
    #: hitting it sheds the newest job from the cheapest lane.
    lanes: Optional[Any] = None
    #: Per-tenant admission quotas: a :class:`~repro.service.qos.TenantQuotas`,
    #: a ``--quota`` spec string (``tenant=rate[:burst]``, ``*`` catch-all)
    #: or ``None`` for no limits.  One token is charged per *new* job.
    quotas: Optional[Any] = None
    #: Requests with a relative deadline at or under this many seconds are
    #: classified interactive when no explicit lane is named.
    interactive_deadline: float = 10.0
    #: In-process LRU read-through cache entries in front of the SQLite
    #: store (``0`` disables; hot keys then always touch disk).
    store_cache: int = 256


@dataclass
class ServiceResponse:
    """Terminal outcome of one request."""

    order: int
    kind: str
    solution: Optional[np.ndarray]
    source: str  # "store" | "construction" | "search"
    solved: bool
    elapsed: float
    request_id: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "kind": self.kind,
            "order": self.order,
            "solved": self.solved,
            "source": self.source,
            "solution": None
            if self.solution is None
            else [int(v) for v in self.solution],
            "elapsed": self.elapsed,
            "detail": self.detail,
        }


@dataclass
class ServiceRequest:
    """Client-side handle: a future plus enough identity to cancel it."""

    request_id: str
    order: int
    kind: str
    future: Future
    ticket: Optional[Ticket] = None
    submitted_at: float = field(default_factory=time.perf_counter)
    #: QoS classification the request was admitted under.
    lane: str = DEFAULT_LANE
    tenant: str = DEFAULT_TENANT

    def result(self, timeout: Optional[float] = None) -> ServiceResponse:
        return self.future.result(timeout)

    def done(self) -> bool:
        return self.future.done()


#: Event names that end a progress stream.
_TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled"})


class ProgressSubscription:
    """One consumer's live event stream for one request.

    Obtained from :meth:`SolverService.subscribe`; the HTTP layer's
    ``GET /events/<id>`` turns it into a ``text/event-stream``.  Events are
    plain dicts with an ``"event"`` key: ``"status"`` (the initial snapshot),
    ``"progress"`` (throttled per-walk search samples straight from the
    strategy harness's callback plumbing), and exactly one terminal event —
    ``"done"`` (with the full result payload), ``"failed"`` or
    ``"cancelled"`` — after which :meth:`get` returns ``None`` forever.

    The queue is bounded; when a slow consumer falls behind, the oldest
    *progress* sample is dropped in favour of the newest (terminal events are
    never dropped: :meth:`push` retries after evicting).
    """

    def __init__(self, request_id: str, *, maxsize: int = 256) -> None:
        self.request_id = request_id
        self._queue: "queue_module.Queue[Dict[str, Any]]" = queue_module.Queue(maxsize)
        self._closed = threading.Event()
        self._terminated = False
        self._listener: Optional[Any] = None
        self._listener_lock = threading.Lock()

    def push(self, event: Dict[str, Any]) -> None:
        """Enqueue *event*, evicting the oldest sample when full."""
        if self._closed.is_set():
            return
        # The queue fallback stays inside the same critical section as the
        # listener check: otherwise an event racing set_listener() could land
        # in the queue *after* the listener drained it and never be seen.
        with self._listener_lock:
            listener = self._listener
            if listener is not None:
                try:
                    listener(event)
                except Exception:  # pragma: no cover - consumer bug guard
                    pass
                return
            while True:
                try:
                    self._queue.put_nowait(event)
                    return
                except queue_module.Full:
                    try:
                        self._queue.get_nowait()
                    except queue_module.Empty:  # pragma: no cover - racing consumer
                        pass

    def set_listener(self, listener: Any) -> None:
        """Switch from pull (:meth:`get`) to push delivery.

        Already-queued events are replayed to *listener* first (in order),
        then every future :meth:`push` invokes it directly.  The async HTTP
        front-end uses this to bridge events onto its loop without parking a
        thread per stream.
        """
        with self._listener_lock:
            while True:
                try:
                    event = self._queue.get_nowait()
                except queue_module.Empty:
                    break
                try:
                    listener(event)
                except Exception:  # pragma: no cover - consumer bug guard
                    pass
            self._listener = listener

    def get(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Next event, or ``None`` on timeout / closed-and-drained stream."""
        if self._terminated and self._queue.empty():
            return None
        try:
            event = self._queue.get(timeout=timeout)
        except queue_module.Empty:
            return None
        if event.get("event") in _TERMINAL_EVENTS:
            self._terminated = True
        return event

    def close(self) -> None:
        """Stop accepting events (the consumer went away)."""
        self._closed.set()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


class SolverService:
    """Solver-as-a-service: persistent store, coalescing, warm workers.

    Thread-safe; designed to sit behind the threaded HTTP front-end of
    :mod:`repro.service.http` but equally usable in-process::

        with SolverService(ServiceConfig(store_path="solutions.db")) as svc:
            response = svc.submit(18).result(timeout=600)
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.fault_plan = self._resolve_fault_plan(self.config.fault_plan)
        #: Injector behind the front-ends' ``http.drop`` point (scoped so it
        #: draws independently of the store's and the workers' streams).
        self.http_faults = FaultInjector(self.fault_plan, scope="http")
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown=self.config.breaker_cooldown,
        )
        self.store = SolutionStore(
            self.config.store_path,
            faults=FaultInjector(self.fault_plan, scope="store"),
            cache_size=self.config.store_cache,
        )
        self.lanes = self._resolve_lanes(
            self.config.lanes, self.config.max_queue_depth
        )
        self.quotas = self._resolve_quotas(self.config.quotas)
        self.scheduler = RequestScheduler(
            max_depth=self.config.max_queue_depth,
            lanes=self.lanes,
            quotas=self.quotas,
            on_cancel_running=self._abort_running_job,
        )
        self.pool = WorkerPool(
            self.config.n_workers,
            mp_context=self.config.mp_context,
            seed_root=self.config.seed_root,
            max_walk_retries=self.config.max_walk_retries,
            liveness_grace=self.config.liveness_grace,
            hang_grace=self.config.hang_grace,
            faults=self.fault_plan,
        )
        self._lock = threading.Lock()
        self._requests: Dict[str, ServiceRequest] = {}
        self._req_counter = itertools.count(1)
        #: request_id -> live progress subscriptions (SSE clients).
        self._subscribers: Dict[str, List[ProgressSubscription]] = {}
        #: id(ticket) -> request_id, for routing pool progress samples from a
        #: (possibly coalesced) job to every attached request's subscribers.
        self._ticket_requests: Dict[int, str] = {}
        #: scheduler Job -> pool handle, for cancellation of running jobs.
        self._job_handles: Dict[int, PoolJobHandle] = {}
        #: scheduler Job -> slot permits it holds (portfolio jobs hold more).
        self._job_permits: Dict[int, int] = {}
        self._dispatch_thread: Optional[threading.Thread] = None
        # Startup claim + completion signal: the slow process spawns in
        # start() run outside _lock (see start()'s docstring).
        self._start_claimed = False
        self._started = threading.Event()
        # One permit per walks_per_job workers: jobs stay *queued in the
        # scheduler* (where they count toward max_depth and remain
        # coalescable/cancellable) until worker slots free up, instead of
        # draining into the pool's opaque mp queue.  An ordinary job takes
        # one permit; a portfolio job takes one permit per walks_per_job
        # walks it fans out (capped at the pool), so heterogeneous requests
        # cannot oversubscribe the workers behind the semaphore's back.
        self._total_slots = max(
            1, self.pool.n_workers // max(1, self.config.walks_per_job)
        )
        self._slots = threading.Semaphore(self._total_slots)
        # Validate the configured default solver once, at construction: a
        # typo must fail fast here, not on the first request or stats() call.
        self._default_solver_label = portfolio_label(
            resolve_portfolio(self.config.default_solver)
        )
        self._closed = False
        self._started_at = time.time()
        #: Monotonic instant the pool was first observed with zero live
        #: workers (``None`` while any worker is alive); degraded mode only
        #: refuses once this persists past ``pool_dead_grace``.
        self._pool_dead_since: Optional[float] = None
        self._pool_dead_grace = (
            self.config.pool_dead_grace
            if self.config.pool_dead_grace is not None
            else max(2.0, 2.0 * self.config.liveness_grace)
        )
        self._immediate = {"store": 0, "construction": 0}
        self._searches = 0
        self._batches = 0
        #: Per-request service-time histograms for GET /stats: one overall,
        #: plus one per lane when QoS lanes are enabled.
        self._latency: Dict[str, LatencyHistogram] = {"overall": LatencyHistogram()}
        if self.lanes is not None:
            for spec in self.lanes:
                self._latency[spec.name] = LatencyHistogram()
        #: Worker-slot permits currently held by non-interactive jobs; the
        #: dispatcher uses it to always hold one slot back for the
        #: interactive lane (lane-aware slot reservation).
        self._nonint_permits = 0
        self._reserved_lanes: Optional[Tuple[str, ...]] = (
            (INTERACTIVE,)
            if self.lanes is not None
            and any(spec.name == INTERACTIVE for spec in self.lanes)
            else None
        )
        #: Per-family observability: requests and solved responses by tier.
        self._kinds: Dict[str, Dict[str, int]] = {}
        # Per-solver observability: requests by requested portfolio label,
        # search solves by the winning strategy's name.
        self._solver_requests: Dict[str, int] = {}
        self._solver_solves: Dict[str, int] = {}

    # ------------------------------------------------------------ failure policy
    @staticmethod
    def _resolve_fault_plan(plan: Any) -> Optional[FaultPlan]:
        """Normalise the config's fault plan; fall back to ``REPRO_FAULTS``.

        A malformed environment value raises here, at construction: silently
        running without the chaos that was asked for would make a red chaos
        suite look green.
        """
        if plan is None:
            return FaultPlan.from_env()
        if isinstance(plan, FaultPlan):
            return plan
        if isinstance(plan, str):
            return FaultPlan.parse(plan)
        if isinstance(plan, Mapping):
            return FaultPlan.from_dict(plan)
        raise SolverError(
            f"fault_plan must be a FaultPlan, str, mapping or None, "
            f"got {type(plan).__name__}"
        )

    @staticmethod
    def _resolve_lanes(
        lanes: Any, default_depth: Optional[int]
    ) -> Optional[Tuple[LaneSpec, ...]]:
        """Normalise the config's lane policy (``None`` = single-lane mode)."""
        if lanes is None or lanes is False:
            return None
        try:
            if lanes is True:
                return default_lanes(default_depth)
            if isinstance(lanes, str):
                return parse_lanes(lanes, default_depth)
            specs = tuple(lanes)
        except (TypeError, ValueError) as exc:
            raise SolverError(f"invalid lanes config: {exc}") from None
        if not specs or not all(isinstance(s, LaneSpec) for s in specs):
            raise SolverError("lanes must be a spec string, True, or LaneSpec list")
        return specs

    @staticmethod
    def _resolve_quotas(quotas: Any) -> Optional[TenantQuotas]:
        """Normalise the config's tenant quotas (``None`` = unlimited)."""
        if quotas is None:
            return None
        if isinstance(quotas, TenantQuotas):
            return quotas
        try:
            if isinstance(quotas, str):
                return TenantQuotas.from_spec(quotas)
            if isinstance(quotas, Mapping):
                limits = {
                    str(k): (float(v[0]), float(v[1]))
                    for k, v in quotas.items()
                    if k != "*"
                }
                default = quotas.get("*")
                if default is not None:
                    default = (float(default[0]), float(default[1]))
                return TenantQuotas(limits, default)
        except (TypeError, ValueError, IndexError) as exc:
            raise SolverError(f"invalid quota config: {exc}") from None
        raise SolverError("quotas must be a spec string, mapping or TenantQuotas")

    def _classify(
        self,
        lane: Optional[str],
        deadline: Optional[float],
        priority: int,
    ) -> Optional[str]:
        """Pipeline stage 1 (*classify*): pick the lane for one request.

        Returns ``None`` in single-lane mode (the scheduler's implicit
        lane); raises :class:`~repro.exceptions.SolverError` (HTTP 400) for
        an explicitly named lane that is not configured.
        """
        if self.lanes is None:
            return None
        if deadline is None:
            deadline = self.config.default_deadline
        try:
            return classify_lane(
                lane=lane,
                deadline=deadline,
                priority=priority,
                lanes=self.scheduler.lane_order,
                interactive_deadline=self.config.interactive_deadline,
            )
        except ValueError as exc:
            raise SolverError(str(exc)) from None

    def degraded_reason(self) -> Optional[str]:
        """Why fresh solves are currently refused, or ``None`` when healthy.

        Degraded mode refuses only the search tier: store hits and
        construction answers keep flowing, so a sick pool or a quarantined
        store shrinks the service instead of killing it.
        """
        quarantined = self.store.quarantined
        if quarantined is not None:
            return f"store quarantined: {quarantined}"
        pool_stats = self.pool.stats()
        if pool_stats["started"] and pool_stats["alive_workers"] == 0:
            # Worker deaths are routinely transient — the collector respawns
            # them — so an empty pool queues work rather than bouncing it.
            # Refuse only when the pool *stays* dead past the grace window,
            # i.e. respawns are not taking.
            now = time.monotonic()
            if self._pool_dead_since is None:
                self._pool_dead_since = now
            if now - self._pool_dead_since >= self._pool_dead_grace:
                return "no live workers"
        else:
            self._pool_dead_since = None
        return None

    def _admit_search(
        self, kind: str, order: int, lane: Optional[str] = None
    ) -> None:
        """Gate one search-tier admission: degraded mode, then the breaker.

        Runs *after* the immediate tiers so degraded mode never refuses what
        the store or a construction can still answer.  With QoS lanes
        enabled, *reduced* capacity (some — not all — workers down) refuses
        the background lane first, keeping the remaining workers for
        interactive and batch traffic; full degradation refuses every lane
        as before.
        """
        reason = self.degraded_reason()
        if reason is not None:
            raise ServiceDegradedError(
                f"service degraded ({reason}); fresh solves are refused",
                retry_after=5.0,
            )
        if lane == BACKGROUND and self.lanes is not None:
            pool_stats = self.pool.stats()
            alive = pool_stats["alive_workers"]
            if pool_stats["started"] and 0 < alive < pool_stats["n_workers"]:
                raise ServiceDegradedError(
                    f"service degraded ({pool_stats['n_workers'] - alive} "
                    "worker(s) down); background lane is refused first",
                    retry_after=5.0,
                    lane=lane,
                )
        allowed, retry_after = self.breaker.allow((kind, int(order)))
        if not allowed:
            raise CircuitOpenError(
                f"circuit open for {kind} n={order} after repeated failures; "
                f"retry in {retry_after:.1f}s",
                retry_after=retry_after,
            )

    def _deadline_at(self, deadline: Optional[float]) -> Optional[float]:
        """Absolute ``time.time()`` deadline for a request, or ``None``."""
        if deadline is None:
            deadline = self.config.default_deadline
        if deadline is None:
            return None
        deadline = float(deadline)
        if deadline <= 0:
            raise SolverError(f"deadline must be > 0 seconds, got {deadline}")
        return time.time() + deadline

    # ----------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the pool and the scheduler->pool dispatch thread (idempotent).

        Spawning the worker processes takes whole seconds under the spawn
        start method, so it must happen *outside* ``_lock``: holding the
        service lock across it would freeze every concurrent ``stats()`` /
        ``health()`` / ``request()`` call for the duration.  The first
        caller claims startup under the lock, releases it to do the slow
        work, and signals ``_started``; racing callers just wait on the
        event.
        """
        with self._lock:
            if self._start_claimed:
                claimed_elsewhere = True
            else:
                self._start_claimed = True
                claimed_elsewhere = False
        if claimed_elsewhere:
            self._started.wait()
            return
        try:
            self.pool.start()
            thread = threading.Thread(
                target=self._dispatch_loop, name="repro-service-dispatch", daemon=True
            )
            thread.start()
            with self._lock:
                self._dispatch_thread = thread
        finally:
            self._started.set()

    def close(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Shut down: refuse new requests, drain or abort, release everything."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.scheduler.close()
        if self._dispatch_thread is not None:
            self._dispatch_thread.join(timeout=5.0)
        self.pool.shutdown(drain=drain, timeout=timeout)
        # Fail whatever is still unresolved so clients never hang.  A future
        # may legitimately resolve between the snapshot and here (a straggler
        # collector callback), so losing that race is fine.
        with self._lock:
            pending = [r for r in self._requests.values() if not r.future.done()]
        for request in pending:
            try:
                request.future.set_exception(SolverError("service shut down"))
            except InvalidStateError:
                pass
        # Failing the futures published terminal events through the normal
        # done-callback path; anything still registered (a subscriber that
        # raced its registration against shutdown) is force-closed here so no
        # SSE stream is left hanging.
        with self._lock:
            leftovers = [sub for subs in self._subscribers.values() for sub in subs]
            self._subscribers.clear()
        for sub in leftovers:
            sub.push(
                {
                    "event": "failed",
                    "request_id": sub.request_id,
                    "status": "failed",
                    "error": "service shut down",
                }
            )
            sub.close()
        self.store.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SolverService":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------- submit
    def submit(
        self,
        order: int,
        *,
        kind: str = "costas",
        priority: int = 0,
        max_time: Optional[float] = None,
        deadline: Optional[float] = None,
        solver: Optional[Any] = None,
        model_options: Optional[Mapping[str, Any]] = None,
        use_store: Optional[bool] = None,
        use_constructions: Optional[bool] = None,
        lane: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> ServiceRequest:
        """Submit one solve request; returns immediately with a future.

        ``kind`` selects any family of the :mod:`repro.problems` registry
        (``"costas"``, ``"queens"``, ``"all-interval"``, ``"magic-square"``,
        aliases included); ``order`` is the family's natural size parameter
        (the board/series order, the magic square's side).  Store and
        construction hits resolve the future before ``submit`` returns;
        search-tier requests resolve when the (possibly shared) solve
        finishes.  Raises
        :class:`~repro.service.scheduler.SchedulerSaturatedError` when the
        search queue is full.

        ``solver`` selects the search strategy (or a portfolio raced
        first-past-the-post) from the :mod:`repro.solvers` registry; it only
        affects the search tier — a store or construction hit answers the
        *instance* regardless of which algorithm was requested (pass
        ``use_store=False``/``use_constructions=False`` to force the solver
        to actually run).  Unknown solver names, unknown kinds, and
        solver/kind mismatches (the CP solver only accepts Costas) raise
        :class:`~repro.exceptions.SolverError` before anything is queued.

        ``model_options`` is forwarded to the family's problem factory in
        the workers (e.g. ``{"err_weight": "constant"}`` for the basic
        Costas model) and is part of the coalescing identity.

        ``use_store=False`` opts this request out of being *answered* from
        the store (a fresh solve is wanted); whether results are *inserted*
        is service policy (``config.use_store``) on every tier, so a bypass
        request still warms the store for everyone else.

        ``deadline`` (seconds from now) bounds the *whole* request: a job
        still queued past it fails with
        :class:`~repro.service.faults.DeadlineExceededError`, and a running
        walk's time budget is capped by what remains.  Search admission can
        also raise :class:`~repro.service.faults.ServiceDegradedError` (sick
        pool or quarantined store) or
        :class:`~repro.service.faults.CircuitOpenError` (this ``(kind, n)``
        keeps failing) — both fail fast *after* the immediate tiers had their
        chance, so store and construction answers flow even then.

        With QoS lanes enabled (``config.lanes``), the request is
        *classified* first: an explicit ``lane`` wins, otherwise a tight
        deadline or positive priority maps to ``interactive``, negative
        priority to ``background``, the rest to ``batch``.  ``tenant``
        (usually the ``X-Repro-Tenant`` header) selects the token bucket
        charged for new jobs; an exhausted bucket raises
        :class:`~repro.service.scheduler.SchedulerQuotaError` (HTTP 429).
        Store/construction answers bypass classification entirely — cheap
        requests never queue behind expensive fresh solves.
        """
        if self._closed:
            raise SolverError("service is closed")
        family, kind, specs = self._resolve_selection(order, kind, solver)
        lane_name = self._classify(lane, deadline, priority)
        tenant = tenant or DEFAULT_TENANT
        deadline_at = self._deadline_at(deadline)
        self.start()
        request = self._new_request(order, kind, lane=lane_name, tenant=tenant)
        start = time.perf_counter()
        if self._try_immediate(
            request,
            family,
            lookup_store=use_store,
            try_construct=use_constructions,
            start=start,
        ):
            return request
        payload = self._search_payload(
            kind, order, specs, max_time, model_options, deadline_at,
            lane=lane_name, tenant=tenant,
        )
        key = self._instance_key(kind, order, payload)
        try:
            self._admit_search(kind, order, lane_name)
            ticket = self.scheduler.submit(
                key,
                payload,
                priority=priority,
                deadline_at=deadline_at,
                lane=lane_name,
                tenant=tenant,
            )
        except ReproError:
            with self._lock:
                self._requests.pop(request.request_id, None)
            raise
        except RuntimeError as exc:
            # The scheduler closed between our _closed check and here (a
            # request racing close()); don't leak a never-resolving entry.
            with self._lock:
                self._requests.pop(request.request_id, None)
            raise SolverError("service is closed") from exc
        self._attach_ticket(request, ticket, start)
        return request

    def submit_batch(
        self,
        items: Sequence[Mapping[str, Any]],
        *,
        priority: int = 0,
        tenant: Optional[str] = None,
    ) -> List[Union[ServiceRequest, ReproError]]:
        """Submit many solve requests in **one** pass (``POST /solve-batch``).

        Each *item* is a mapping with the same fields :meth:`submit` takes as
        keywords, plus the mandatory ``"order"``.  The store and construction
        tiers are consulted per item as usual; everything that needs the
        search tier is admitted to the scheduler under a single lock
        acquisition (:meth:`~repro.service.scheduler.RequestScheduler.submit_batch`),
        so N instances pay one scheduler pass instead of N.

        Failures are **per item**, never whole-batch: the returned list is
        aligned with *items* and each slot holds either the admitted
        :class:`ServiceRequest` or the :class:`~repro.exceptions.ReproError`
        that rejected that item (a
        :class:`~repro.service.scheduler.SchedulerSaturatedError` slot means
        backpressure — HTTP 503 semantics — while other
        :class:`~repro.exceptions.SolverError`\\ s are client errors).  Only a
        closed service raises.
        """
        if self._closed:
            raise SolverError("service is closed")
        self.start()
        batch_tenant = tenant or DEFAULT_TENANT
        outcomes: List[Union[ServiceRequest, ReproError, None]] = [None] * len(items)
        # Identical instances inside one batch share a single store read /
        # construction call — part of the batch's amortisation.
        immediate_cache: Dict[Tuple[Any, ...], Optional[Tuple[np.ndarray, str]]] = {}
        #: (item index, request, key, payload, priority, deadline, start time)
        queued: List[
            Tuple[
                int,
                ServiceRequest,
                Tuple[Any, ...],
                Dict[str, Any],
                int,
                Optional[float],
                float,
            ]
        ] = []
        for index, item in enumerate(items):
            try:
                if not isinstance(item, Mapping):
                    raise SolverError(
                        f"batch item {index} must be an object, got {type(item).__name__}"
                    )
                order = int(item["order"])
                family, kind, specs = self._resolve_selection(
                    order, str(item.get("kind", "costas")), item.get("solver")
                )
                item_priority = int(item.get("priority", priority))
                max_time = item.get("max_time")
                max_time = float(max_time) if max_time is not None else None
                item_deadline = item.get("deadline")
                deadline_at = self._deadline_at(item_deadline)
                item_lane = item.get("lane")
                lane_name = self._classify(
                    str(item_lane) if item_lane is not None else None,
                    float(item_deadline) if item_deadline is not None else None,
                    item_priority,
                )
                item_tenant = str(item.get("tenant") or batch_tenant)
                model_options = item.get("model_options")
                if model_options is not None and not isinstance(model_options, Mapping):
                    raise SolverError(
                        f"batch item {index}: model_options must be an object"
                    )
            except ReproError as exc:
                outcomes[index] = exc
                continue
            except (KeyError, TypeError, ValueError) as exc:
                outcomes[index] = SolverError(f"invalid batch item {index}: {exc}")
                continue
            request = self._new_request(order, kind, lane=lane_name, tenant=item_tenant)
            start = time.perf_counter()
            if self._try_immediate(
                request,
                family,
                lookup_store=item.get("use_store"),
                try_construct=item.get("use_constructions"),
                start=start,
                immediate_cache=immediate_cache,
            ):
                outcomes[index] = request
                continue
            payload = self._search_payload(
                kind, order, specs, max_time, model_options, deadline_at,
                lane=lane_name, tenant=item_tenant,
            )
            key = self._instance_key(kind, order, payload)
            try:
                self._admit_search(kind, order, lane_name)
            except ReproError as exc:
                with self._lock:
                    self._requests.pop(request.request_id, None)
                outcomes[index] = exc
                continue
            queued.append(
                (index, request, key, payload, item_priority, deadline_at, start)
            )
        if queued:
            try:
                tickets = self.scheduler.submit_batch(
                    [
                        (
                            key,
                            payload,
                            prio,
                            deadline_at,
                            request.lane if self.lanes is not None else None,
                            request.tenant,
                        )
                        for _, request, key, payload, prio, deadline_at, _ in queued
                    ]
                )
            except RuntimeError:
                # The scheduler closed underneath the batch: fail the queued
                # items, keep the already-resolved ones.
                tickets = [
                    SolverError("service is closed") for _ in queued  # type: ignore[misc]
                ]
            for (index, request, _, _, _, _, start), ticket in zip(queued, tickets):
                if isinstance(ticket, ReproError):
                    with self._lock:
                        self._requests.pop(request.request_id, None)
                    outcomes[index] = ticket
                else:
                    self._attach_ticket(request, ticket, start)
                    outcomes[index] = request
        with self._lock:
            self._batches += 1
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------- submission helpers
    def _resolve_selection(
        self, order: int, kind: str, solver: Optional[Any]
    ) -> Tuple[Any, str, List[Any]]:
        """Validate ``(order, kind, solver)``; bump the request counters.

        Returns ``(family, canonical kind, portfolio specs)``.  Raising here
        means nothing was registered or queued — the HTTP layer turns the
        :class:`SolverError` into a 400 for exactly this request/item.
        """
        family = get_family(kind)
        kind = family.name
        if order < family.min_order:
            raise SolverError(
                f"{family.name} order must be >= {family.min_order}, got {order}"
            )
        # Validate and canonicalise the solver selection up front, so a bad
        # name (or a solver that cannot run this family, like CP on queens)
        # fails fast (HTTP 400) instead of failing inside a worker.
        specs = resolve_portfolio(
            solver if solver is not None else self.config.default_solver
        )
        for spec in specs:
            info = get_solver(spec.name)
            if (
                "permutation" not in info.problem_kinds
                and family.name not in info.problem_kinds
            ):
                raise SolverError(
                    f"solver {info.name!r} does not accept problem kind "
                    f"{family.name!r} (supports: {', '.join(info.problem_kinds)})"
                )
        solver_label = portfolio_label(specs)
        with self._lock:
            self._solver_requests[solver_label] = (
                self._solver_requests.get(solver_label, 0) + 1
            )
            self._kind_counter_locked(kind, "requests")
        return family, kind, specs

    def _new_request(
        self,
        order: int,
        kind: str,
        *,
        lane: Optional[str] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> ServiceRequest:
        """Register a fresh request handle (terminal events auto-published)."""
        request_id = f"r{next(self._req_counter)}"
        future: Future = Future()
        request = ServiceRequest(
            request_id=request_id,
            order=order,
            kind=kind,
            future=future,
            lane=lane if lane is not None else DEFAULT_LANE,
            tenant=tenant,
        )
        # Every terminal transition (result, failure, cancellation — from any
        # tier or from close()) flows through the future, so one callback
        # feeds every progress subscriber reliably.
        future.add_done_callback(
            lambda fut, request=request: self._publish_terminal(request, fut)
        )
        with self._lock:
            self._requests[request_id] = request
            self._evict_settled_locked()
        return request

    def _try_immediate(
        self,
        request: ServiceRequest,
        family: Any,
        *,
        lookup_store: Optional[bool],
        try_construct: Optional[bool],
        start: float,
        immediate_cache: Optional[Dict[Tuple[Any, ...], Any]] = None,
    ) -> bool:
        """Tiers 1+2: answer from the store or a construction; ``True`` if so.

        ``immediate_cache`` (one dict per :meth:`submit_batch` call) lets
        identical instances inside a batch share a single store read or
        construction: the cached entry is ``(solution, source)`` or ``None``
        for a miss.  Cached answers still count as per-kind ``store``/
        ``construction`` responses in the service stats, but only the first
        touches SQLite.
        """
        lookup = self.config.use_store if lookup_store is None else lookup_store
        construct = (
            self.config.use_constructions if try_construct is None else try_construct
        )
        kind = family.name
        cache_key = (kind, int(request.order), lookup, construct)
        if immediate_cache is not None and cache_key in immediate_cache:
            hit = immediate_cache[cache_key]
            if hit is None:
                return False
            solution, source = hit
            if source == "construction":
                with self._lock:
                    self._immediate["construction"] += 1
            self._resolve(request, solution, source=source, solved=True, start=start)
            return True
        # Tier 1: the persistent store (answers whole symmetry classes).
        if lookup:
            cached = self.store.get(kind, family.instance_size(request.order))
            if cached is not None:
                if immediate_cache is not None:
                    immediate_cache[cache_key] = (cached, "store")
                self._resolve(request, cached, source="store", solved=True, start=start)
                return True
        # Tier 2: algebraic constructions (family-specific shortcuts).
        if construct:
            solution = family.try_construct(request.order)
            if solution is not None:
                if self.config.use_store:
                    try:
                        self.store.insert(kind, solution, source="construction")
                    except StoreUnavailableError:
                        pass  # the construction answer is served regardless
                if immediate_cache is not None:
                    immediate_cache[cache_key] = (solution, "construction")
                with self._lock:
                    self._immediate["construction"] += 1
                self._resolve(
                    request, solution, source="construction", solved=True, start=start
                )
                return True
        if immediate_cache is not None:
            immediate_cache[cache_key] = None
        return False

    def _search_payload(
        self,
        kind: str,
        order: int,
        specs: List[Any],
        max_time: Optional[float],
        model_options: Optional[Mapping[str, Any]],
        deadline_at: Optional[float] = None,
        *,
        lane: Optional[str] = None,
        tenant: str = DEFAULT_TENANT,
    ) -> Dict[str, Any]:
        """Tier-3 job payload.  A single-member portfolio travels as one spec
        dict; a real portfolio as a list the pool assigns round-robin.

        ``deadline_at`` rides in the payload (workers cap their budget with
        it) but is **not** part of the coalescing identity — two requests
        differing only in patience share one solve; the scheduler keeps the
        job's deadline as the loosest of its tickets'.  ``lane``/``tenant``
        likewise ride along for pool observability only (the dispatcher
        refreshes the lane if a coalesced join promoted the job).
        """
        solver_payload = (
            specs[0].as_dict() if len(specs) == 1 else [s.as_dict() for s in specs]
        )
        return {
            "kind": kind,
            "order": int(order),
            "solver": solver_payload,
            "params": None,
            "max_time": max_time if max_time is not None else self.config.default_max_time,
            "deadline_at": deadline_at,
            "model_options": dict(model_options) if model_options else {},
            "progress_interval": self.config.progress_interval,
            "population": max(1, int(self.config.population)),
            "lane": lane if lane is not None else DEFAULT_LANE,
            "tenant": tenant,
        }

    def _attach_ticket(
        self, request: ServiceRequest, ticket: Ticket, start: float
    ) -> None:
        request.ticket = ticket
        with self._lock:
            self._ticket_requests[id(ticket)] = request.request_id
        ticket.future.add_done_callback(
            lambda fut: self._on_ticket_done(request, fut, start)
        )

    #: Completed requests retained for ``GET /result/<id>``; beyond this the
    #: oldest settled ones are evicted so a long-lived server stays bounded.
    _MAX_RETAINED_REQUESTS = 10_000

    def _evict_settled_locked(self) -> None:
        if len(self._requests) <= self._MAX_RETAINED_REQUESTS:
            return
        for request_id in list(self._requests):
            if len(self._requests) <= self._MAX_RETAINED_REQUESTS:
                break
            if self._requests[request_id].future.done():
                del self._requests[request_id]

    @staticmethod
    def _instance_key(kind: str, order: int, payload: Dict[str, Any]) -> Tuple[Any, ...]:
        """Identity under which concurrent requests coalesce.

        ``(family, order, model_options, solver)`` plus the time budget: a
        ``tabu`` request must not piggyback on an in-flight ``adaptive``
        solve of the same instance — the client asked for that algorithm's
        walk — and a basic-model Costas solve is not the same instance as
        the optimised-model one.
        """
        model_options = payload.get("model_options") or {}
        return (
            kind,
            int(order),
            tuple(sorted((str(k), repr(v)) for k, v in model_options.items())),
            payload.get("max_time"),
            canonical_portfolio(payload.get("solver")),
        )

    def _kind_counter_locked(self, kind: str, counter: str) -> None:
        """Bump one per-family observability counter (caller holds the lock)."""
        bucket = self._kinds.setdefault(
            kind,
            {"requests": 0, "store": 0, "construction": 0, "search": 0, "unsolved": 0},
        )
        bucket[counter] += 1

    def _resolve(
        self,
        request: ServiceRequest,
        solution: Optional[np.ndarray],
        *,
        source: str,
        solved: bool,
        start: float,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        with self._lock:
            if source == "store":
                self._immediate["store"] += 1
            self._kind_counter_locked(request.kind, source if solved else "unsolved")
        elapsed = time.perf_counter() - start
        self._latency["overall"].record(elapsed)
        lane_hist = self._latency.get(request.lane)
        if lane_hist is not None and request.lane != "overall":
            lane_hist.record(elapsed)
        response = ServiceResponse(
            order=request.order,
            kind=request.kind,
            solution=solution,
            source=source,
            solved=solved,
            elapsed=elapsed,
            request_id=request.request_id,
            detail=detail or {},
        )
        if not request.future.done():
            request.future.set_result(response)

    def _on_ticket_done(self, request: ServiceRequest, fut: Future, start: float) -> None:
        """Scheduler ticket resolved (from the pool collector thread)."""
        if request.ticket is not None:
            with self._lock:
                self._ticket_requests.pop(id(request.ticket), None)
        if request.future.done():
            return
        if fut.cancelled():
            request.future.cancel()
            return
        exc = fut.exception()
        if exc is not None:
            request.future.set_exception(exc)
            return
        outcome: Dict[str, Any] = fut.result()
        self._resolve(
            request,
            outcome.get("solution"),
            source="search",
            solved=outcome.get("solved", False),
            start=start,
            detail=outcome.get("detail", {}),
        )

    # ----------------------------------------------------------------- dispatch
    def _dispatch_loop(self) -> None:
        """Move jobs from the scheduler onto the worker pool, slot-gated.

        Lane-aware slot reservation: with QoS lanes enabled, once
        non-interactive jobs hold all but one worker slot, the remaining
        slot only accepts interactive work — a flooded batch/background
        queue can saturate at most ``total_slots - 1`` workers, so an
        interactive fresh solve always finds capacity within one job's
        service time.
        """
        while True:
            if not self._slots.acquire(timeout=0.2):
                if self.scheduler.closed:
                    return
                continue
            only_lanes: Optional[Tuple[str, ...]] = None
            if self._reserved_lanes is not None and self._total_slots > 1:
                with self._lock:
                    if self._nonint_permits >= self._total_slots - 1:
                        only_lanes = self._reserved_lanes
            job = self.scheduler.next_job(timeout=0.2, only_lanes=only_lanes)
            if job is None:
                self._slots.release()
                if self.scheduler.closed:
                    return
                continue
            self._searches += 1
            # Late coalescers may have loosened the job's deadline since
            # admission (or promoted its lane); the workers read the payload,
            # so refresh it now that the job is leaving the scheduler.
            job.payload["deadline_at"] = job.deadline_at
            job.payload["lane"] = job.lane
            # A heterogeneous portfolio needs one walk per member to actually
            # race; a larger walks_per_job fans each member out over seeds too.
            solver = job.payload.get("solver")
            members = len(solver) if isinstance(solver, (list, tuple)) else 1
            walks = max(self.config.walks_per_job, members)
            # The permit already held covers walks_per_job walks; a wider
            # portfolio job pays for the extra workers it occupies (capped at
            # the whole pool so an oversized portfolio throttles rather than
            # deadlocks), keeping the slot-gating backpressure honest.
            walks_per_permit = max(1, self.config.walks_per_job)
            permits = min(-(-walks // walks_per_permit), self._total_slots)
            # Waiting here holds up later (possibly narrower) jobs — the
            # dispatch order is deliberately FIFO-by-priority, a wide
            # portfolio is not allowed to be overtaken into starvation — but
            # a job whose every ticket was cancelled must not keep hoarding
            # permits nobody is waiting on.
            extra_held = 0
            abort: Optional[BaseException] = None
            while extra_held < permits - 1:
                if self.scheduler.closed:
                    abort = SolverError("service is closed")
                    break
                if not job.tickets:
                    abort = CancelledError()
                    break
                if self._slots.acquire(timeout=0.2):
                    extra_held += 1
            if abort is not None:
                for _ in range(extra_held + 1):
                    self._slots.release()
                self.scheduler.fail(job, abort)
                if self.scheduler.closed:
                    return
                continue
            try:
                handle = self.pool.submit(
                    job.payload,
                    walks=walks,
                    on_done=lambda h, job=job: self._on_pool_done(job, h),
                    on_progress=lambda h, sample, job=job: self._on_job_progress(
                        job, sample
                    ),
                )
            except ReproError as exc:
                for _ in range(permits):
                    self._slots.release()
                self.scheduler.fail(job, exc)
                continue
            with self._lock:
                self._job_handles[id(job)] = handle
                self._job_permits[id(job)] = permits
                if self._reserved_lanes is not None and job.lane != INTERACTIVE:
                    self._nonint_permits += permits
            # A cancellation that landed between next_job() and the handle
            # registration above found nothing to abort; re-check now that
            # the handle is visible so the walk doesn't run (for up to its
            # whole time budget) with nobody waiting.
            if not job.tickets:
                self.pool.cancel(handle)

    def _on_pool_done(self, job: Job, handle: PoolJobHandle) -> None:
        """Pool collector callback: persist, record breaker outcome, fan out.

        Breaker accounting: a worker-level failure (repeated deaths, an
        exception in the walk) counts against the ``(kind, n)`` breaker; a
        clean outcome — solved, or honestly unsolved within its budget —
        counts as a success; cancellations and deadline expiries count as
        neither (they say nothing about the instance's health).
        """
        with self._lock:
            self._job_handles.pop(id(job), None)
            permits = self._job_permits.pop(id(job), 1)
            if self._reserved_lanes is not None and job.lane != INTERACTIVE:
                self._nonint_permits -= permits
        for _ in range(permits):
            self._slots.release()
        breaker_key = (job.payload["kind"], int(job.payload["order"]))
        best = handle.best
        if handle.cancelled and (best is None or not best.solved):
            self.scheduler.fail(job, CancelledError())
            return
        deadline_at = job.deadline_at
        deadline_expired = deadline_at is not None and time.time() >= deadline_at
        if best is None:
            if deadline_expired:
                self.scheduler.fail(
                    job,
                    DeadlineExceededError(
                        f"deadline expired before {breaker_key[0]} "
                        f"n={breaker_key[1]} finished"
                    ),
                )
                return
            self.breaker.record_failure(breaker_key)
            self.scheduler.fail(
                job,
                SolverError(handle.failure or "search produced no result"),
            )
            return
        if not best.solved and deadline_expired:
            self.scheduler.fail(
                job,
                DeadlineExceededError(
                    f"deadline expired while solving {breaker_key[0]} "
                    f"n={breaker_key[1]}"
                ),
            )
            return
        if handle.failure is not None and not best.solved:
            # Some walks died even though others reported: a partial failure
            # still feeds the breaker.
            self.breaker.record_failure(breaker_key)
        else:
            self.breaker.record_success(breaker_key)
        solution = best.configuration if best.solved else None
        if best.solved:
            with self._lock:
                self._solver_solves[best.solver] = (
                    self._solver_solves.get(best.solver, 0) + 1
                )
        if best.solved and self.config.use_store:
            try:
                self.store.insert(job.payload["kind"], solution, source="search")
            except StoreUnavailableError:
                # The client still gets its solution; the store's sickness is
                # visible through health() and degraded-mode admission.
                pass
            except ReproError:  # pragma: no cover - invalid result guard
                self.scheduler.fail(
                    job, SolverError("search returned an invalid solution")
                )
                return
        self.scheduler.complete(
            job,
            {
                "solution": solution,
                "solved": bool(best.solved),
                "detail": {
                    "iterations": int(best.iterations),
                    "wall_time": float(best.wall_time),
                    "stop_reason": best.stop_reason,
                    "solver": best.solver,
                    "walks": handle.walks,
                    "coalesced_width": job.width,
                    # Which engine ran the winning walk ("compiled",
                    # "numpy-fallback", absent for non-adaptive strategies)
                    # and how wide its in-process population was.
                    "engine": best.extra.get("engine"),
                    "population": int(best.extra.get("population", 1)),
                },
            },
        )

    # ------------------------------------------------------------ progress fan-out
    def subscribe(self, request_id: str) -> Optional[ProgressSubscription]:
        """Open a live event stream for *request_id*; ``None`` when unknown.

        The stream starts with a ``"status"`` snapshot, carries throttled
        ``"progress"`` samples while the search tier works (shared solves fan
        the same samples out to every coalesced subscriber), and ends with
        exactly one terminal event.  A subscription to an already-settled
        request gets its snapshot and terminal event immediately.
        """
        with self._lock:
            request = self._requests.get(request_id)
        if request is None:
            return None
        sub = ProgressSubscription(request_id)
        sub.push(
            {
                "event": "status",
                "request_id": request_id,
                "kind": request.kind,
                "order": request.order,
                "status": "done" if request.future.done() else "pending",
            }
        )
        with self._lock:
            if not request.future.done():
                # Registered under the same lock _publish_terminal pops with,
                # so a request settling concurrently cannot miss this stream.
                self._subscribers.setdefault(request_id, []).append(sub)
                return sub
        # Already settled: synthesize the terminal event this stream missed.
        sub.push(self._terminal_event(request_id, request.future))
        return sub

    def unsubscribe(self, sub: ProgressSubscription) -> None:
        """Detach *sub* (the consumer went away); idempotent."""
        sub.close()
        with self._lock:
            subs = self._subscribers.get(sub.request_id)
            if subs and sub in subs:
                subs.remove(sub)
                if not subs:
                    del self._subscribers[sub.request_id]

    @staticmethod
    def _terminal_event(request_id: str, fut: Future) -> Dict[str, Any]:
        if fut.cancelled():
            return {"event": "cancelled", "request_id": request_id, "status": "cancelled"}
        exc = fut.exception()
        if exc is not None:
            return {
                "event": "failed",
                "request_id": request_id,
                "status": "failed",
                "error": str(exc),
            }
        response: ServiceResponse = fut.result()
        return {"event": "done", "status": "done", **response.as_dict()}

    def _publish_terminal(self, request: ServiceRequest, fut: Future) -> None:
        """Future done-callback: push the terminal event, end the streams."""
        with self._lock:
            subs = self._subscribers.pop(request.request_id, None)
        if not subs:
            return
        event = self._terminal_event(request.request_id, fut)
        for sub in subs:
            sub.push(event)
            sub.close()

    def _on_job_progress(self, job: Job, sample: Dict[str, Any]) -> None:
        """Pool collector hook: fan one walk's progress sample out to every
        subscriber of every request coalesced onto *job*."""
        with self._lock:
            if not self._subscribers:
                return
            targets: list = []
            for ticket in list(job.tickets):
                request_id = self._ticket_requests.get(id(ticket))
                if request_id is None:
                    continue
                for sub in self._subscribers.get(request_id, ()):
                    targets.append((sub, request_id))
        for sub, request_id in targets:
            sub.push({"event": "progress", "request_id": request_id, **sample})

    def _abort_running_job(self, job: Job) -> None:
        """Scheduler callback: the last ticket of a running job was cancelled."""
        with self._lock:
            handle = self._job_handles.get(id(job))
        if handle is not None:
            self.pool.cancel(handle)

    # ------------------------------------------------------------------ queries
    def result(
        self, request_id: str, timeout: Optional[float] = None
    ) -> Optional[ServiceResponse]:
        """Resolve a request id; ``None`` when the id is unknown.

        Raises the underlying error for failed requests and
        :class:`concurrent.futures.TimeoutError` when *timeout* elapses.
        """
        with self._lock:
            request = self._requests.get(request_id)
        if request is None:
            return None
        return request.result(timeout)

    def request(self, request_id: str) -> Optional[ServiceRequest]:
        with self._lock:
            return self._requests.get(request_id)

    def cancel(self, request_id: str) -> bool:
        """Cancel a pending request; ``False`` if unknown or already settled."""
        with self._lock:
            request = self._requests.get(request_id)
        if request is None or request.future.done():
            return False
        if request.ticket is not None:
            return self.scheduler.cancel(request.ticket)
        return request.future.cancel()

    def health(self) -> Dict[str, Any]:
        """Readiness/liveness report: ``ok`` / ``degraded`` / ``failing``.

        ``failing`` means the service answers nothing (it is closed);
        ``degraded`` means the immediate tiers still answer but fresh solves
        are refused (quarantined store, dead pool) or capacity is reduced
        (dead-but-respawning workers, open breakers).  The per-component
        detail under ``"components"`` names the culprit.  The legacy
        top-level ``"status"`` and ``"pool"`` keys are preserved for older
        monitoring.
        """
        store_health = self.store.health()
        pool_stats = self.pool.stats()
        breaker = self.breaker.snapshot()
        scheduler_stats = self.scheduler.stats()
        alive = pool_stats["alive_workers"]
        degraded = None if self._closed else self.degraded_reason()
        if not pool_stats["started"]:
            pool_status = "ok"  # lazily started on first search-tier request
        elif alive == 0:
            # Dead-but-within-grace means the collector is respawning and
            # queued work will still be served; only a pool that stayed
            # dead past the grace window is genuinely failing.
            pool_status = "failing" if degraded == "no live workers" else "degraded"
        elif alive < pool_stats["n_workers"]:
            pool_status = "degraded"
        else:
            pool_status = "ok"
        breaker_status = "degraded" if breaker["open"] else "ok"
        components = {
            "store": store_health,
            # Informational: which Adaptive Search engine path workers run
            # ("c" = compiled walk kernels, "numpy" = pure-Python fallback)
            # and the per-slot vectorised population width.  NumPy mode is a
            # slower but fully functional path, hence never degraded.
            "engine": {
                "status": "ok",
                "kernel_mode": _ckernels.mode(),
                "population": max(1, int(self.config.population)),
            },
            "pool": {"status": pool_status, **pool_stats},
            "scheduler": {
                "status": "ok" if not self.scheduler.closed else "failing",
                **scheduler_stats,
            },
            "breaker": {"status": breaker_status, **breaker},
        }
        reason: Optional[str] = None
        if self._closed:
            status = "failing"
            reason = "service is closed"
        else:
            reason = degraded
            if reason is None and (
                pool_status == "degraded" or breaker_status == "degraded"
            ):
                reason = (
                    f"{pool_stats['n_workers'] - alive} worker(s) down"
                    if pool_status == "degraded"
                    else f"open breakers: {', '.join(breaker['open'])}"
                )
            status = "ok" if reason is None else "degraded"
        return {
            "status": status,
            "reason": reason,
            "pool": pool_stats,
            "components": components,
            "faults": {
                "enabled": self.fault_plan is not None and self.fault_plan.enabled,
                "rates": dict(self.fault_plan.rates) if self.fault_plan else {},
            },
        }

    def stats(self) -> Dict[str, Any]:
        """One JSON-friendly snapshot across store, scheduler and pool."""
        with self._lock:
            open_requests = sum(
                1 for r in self._requests.values() if not r.future.done()
            )
            immediate = dict(self._immediate)
            searches = self._searches
            batches = self._batches
            progress_subscribers = sum(len(s) for s in self._subscribers.values())
            solver_requests = dict(self._solver_requests)
            solver_solves = dict(self._solver_solves)
            kinds = {kind: dict(counters) for kind, counters in self._kinds.items()}
        return {
            "uptime": time.time() - self._started_at,
            "open_requests": open_requests,
            "immediate": immediate,
            "searches_dispatched": searches,
            "batches": batches,
            "progress_subscribers": progress_subscribers,
            # Per-family requests and solved responses by answering tier.
            "kinds": kinds,
            "solvers": {
                # Requests by the portfolio label clients asked for, search
                # solves by the strategy that actually won the race.
                "requests": solver_requests,
                "solved": solver_solves,
            },
            # Per-request service-time histograms (overall plus per lane
            # when QoS lanes are enabled): count, mean/max, p50/p95/p99 ms.
            "latency": {
                name: hist.snapshot() for name, hist in self._latency.items()
            },
            "qos": {
                "enabled": self.lanes is not None,
                "lanes": list(self.scheduler.lane_order),
                "quotas": self.quotas.snapshot() if self.quotas is not None else {},
            },
            "store": self.store.snapshot(),
            "scheduler": self.scheduler.stats(),
            "pool": self.pool.stats(),
            "breaker": self.breaker.snapshot(),
            # Which Adaptive Search engine path the workers run ("c" =
            # compiled walk kernels, "numpy" = fallback) and the vectorised
            # per-slot population width.
            "engine": {
                "kernel_mode": _ckernels.mode(),
                "population": max(1, int(self.config.population)),
            },
            "config": {
                "n_workers": self.pool.n_workers,
                "walks_per_job": self.config.walks_per_job,
                "population": max(1, int(self.config.population)),
                "max_queue_depth": self.config.max_queue_depth,
                "default_solver": self._default_solver_label,
                "use_store": self.config.use_store,
                "use_constructions": self.config.use_constructions,
            },
        }
