"""The :class:`SolverService` facade: store -> construction -> scheduler -> pool.

A request for "a solution of kind k and order n" — any family of the
:mod:`repro.problems` registry: Costas, N-Queens, All-Interval, Magic
Square — flows through three tiers, cheapest first:

1. **Store** — a previously solved (or symmetry-equivalent under the
   family's own group) instance answers from SQLite in microseconds.
2. **Construction** — orders with an algebraic shortcut (Welch / Lempel /
   Golomb for Costas, the modular closed form for N-Queens, the zigzag for
   All-Interval) are answered without search and the result is inserted into
   the store, so the search tier never sees them.
3. **Search** — everything else is admitted to the coalescing scheduler and
   solved by the long-lived worker pool; the solution is inserted into the
   store on the way out, upgrading all future requests for its symmetry class
   to tier 1.

Every submission returns a :class:`ServiceRequest` whose ``future`` resolves
to a :class:`ServiceResponse`; ``submit()``/``result()``/``cancel()``/
``stats()`` are the whole surface the HTTP layer needs.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import CancelledError, Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import ReproError, SolverError
from repro.problems import get_family
from repro.service.scheduler import Job, RequestScheduler, Ticket
from repro.service.store import SolutionStore
from repro.service.workers import PoolJobHandle, WorkerPool
from repro.solvers import (
    canonical_portfolio,
    get_solver,
    portfolio_label,
    resolve_portfolio,
)

__all__ = ["ServiceConfig", "ServiceRequest", "ServiceResponse", "SolverService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`SolverService` instance."""

    store_path: str = ":memory:"
    n_workers: Optional[int] = None
    max_queue_depth: int = 256
    #: Independent walks per search-tier job (first past the post).  A
    #: portfolio request always gets at least one walk per portfolio member.
    walks_per_job: int = 1
    #: Default per-walk wall-clock budget (seconds); ``None`` = unbounded.
    default_max_time: Optional[float] = 300.0
    #: Solver (or portfolio) used when a request does not name one: a
    #: registry name ("adaptive", "tabu"), an inline portfolio
    #: ("adaptive+tabu"), a named portfolio ("mixed") or a spec dict/list.
    default_solver: Optional[Any] = None
    #: Disable tiers globally (benchmarks use these to build the naive rival).
    use_store: bool = True
    use_constructions: bool = True
    seed_root: Optional[int] = None
    mp_context: Optional[str] = None


@dataclass
class ServiceResponse:
    """Terminal outcome of one request."""

    order: int
    kind: str
    solution: Optional[np.ndarray]
    source: str  # "store" | "construction" | "search"
    solved: bool
    elapsed: float
    request_id: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "kind": self.kind,
            "order": self.order,
            "solved": self.solved,
            "source": self.source,
            "solution": None
            if self.solution is None
            else [int(v) for v in self.solution],
            "elapsed": self.elapsed,
            "detail": self.detail,
        }


@dataclass
class ServiceRequest:
    """Client-side handle: a future plus enough identity to cancel it."""

    request_id: str
    order: int
    kind: str
    future: Future
    ticket: Optional[Ticket] = None
    submitted_at: float = field(default_factory=time.perf_counter)

    def result(self, timeout: Optional[float] = None) -> ServiceResponse:
        return self.future.result(timeout)

    def done(self) -> bool:
        return self.future.done()


class SolverService:
    """Solver-as-a-service: persistent store, coalescing, warm workers.

    Thread-safe; designed to sit behind the threaded HTTP front-end of
    :mod:`repro.service.http` but equally usable in-process::

        with SolverService(ServiceConfig(store_path="solutions.db")) as svc:
            response = svc.submit(18).result(timeout=600)
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.store = SolutionStore(self.config.store_path)
        self.scheduler = RequestScheduler(
            max_depth=self.config.max_queue_depth,
            on_cancel_running=self._abort_running_job,
        )
        self.pool = WorkerPool(
            self.config.n_workers,
            mp_context=self.config.mp_context,
            seed_root=self.config.seed_root,
        )
        self._lock = threading.Lock()
        self._requests: Dict[str, ServiceRequest] = {}
        self._req_counter = itertools.count(1)
        #: scheduler Job -> pool handle, for cancellation of running jobs.
        self._job_handles: Dict[int, PoolJobHandle] = {}
        #: scheduler Job -> slot permits it holds (portfolio jobs hold more).
        self._job_permits: Dict[int, int] = {}
        self._dispatch_thread: Optional[threading.Thread] = None
        # One permit per walks_per_job workers: jobs stay *queued in the
        # scheduler* (where they count toward max_depth and remain
        # coalescable/cancellable) until worker slots free up, instead of
        # draining into the pool's opaque mp queue.  An ordinary job takes
        # one permit; a portfolio job takes one permit per walks_per_job
        # walks it fans out (capped at the pool), so heterogeneous requests
        # cannot oversubscribe the workers behind the semaphore's back.
        self._total_slots = max(
            1, self.pool.n_workers // max(1, self.config.walks_per_job)
        )
        self._slots = threading.Semaphore(self._total_slots)
        # Validate the configured default solver once, at construction: a
        # typo must fail fast here, not on the first request or stats() call.
        self._default_solver_label = portfolio_label(
            resolve_portfolio(self.config.default_solver)
        )
        self._closed = False
        self._started_at = time.time()
        self._immediate = {"store": 0, "construction": 0}
        self._searches = 0
        #: Per-family observability: requests and solved responses by tier.
        self._kinds: Dict[str, Dict[str, int]] = {}
        # Per-solver observability: requests by requested portfolio label,
        # search solves by the winning strategy's name.
        self._solver_requests: Dict[str, int] = {}
        self._solver_solves: Dict[str, int] = {}

    # ----------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the pool and the scheduler->pool dispatch thread (idempotent)."""
        with self._lock:
            if self._dispatch_thread is not None:
                return
            self.pool.start()
            self._dispatch_thread = threading.Thread(
                target=self._dispatch_loop, name="repro-service-dispatch", daemon=True
            )
            self._dispatch_thread.start()

    def close(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Shut down: refuse new requests, drain or abort, release everything."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.scheduler.close()
        if self._dispatch_thread is not None:
            self._dispatch_thread.join(timeout=5.0)
        self.pool.shutdown(drain=drain, timeout=timeout)
        # Fail whatever is still unresolved so clients never hang.  A future
        # may legitimately resolve between the snapshot and here (a straggler
        # collector callback), so losing that race is fine.
        with self._lock:
            pending = [r for r in self._requests.values() if not r.future.done()]
        for request in pending:
            try:
                request.future.set_exception(SolverError("service shut down"))
            except InvalidStateError:
                pass
        self.store.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SolverService":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------- submit
    def submit(
        self,
        order: int,
        *,
        kind: str = "costas",
        priority: int = 0,
        max_time: Optional[float] = None,
        solver: Optional[Any] = None,
        model_options: Optional[Mapping[str, Any]] = None,
        use_store: Optional[bool] = None,
        use_constructions: Optional[bool] = None,
    ) -> ServiceRequest:
        """Submit one solve request; returns immediately with a future.

        ``kind`` selects any family of the :mod:`repro.problems` registry
        (``"costas"``, ``"queens"``, ``"all-interval"``, ``"magic-square"``,
        aliases included); ``order`` is the family's natural size parameter
        (the board/series order, the magic square's side).  Store and
        construction hits resolve the future before ``submit`` returns;
        search-tier requests resolve when the (possibly shared) solve
        finishes.  Raises
        :class:`~repro.service.scheduler.SchedulerSaturatedError` when the
        search queue is full.

        ``solver`` selects the search strategy (or a portfolio raced
        first-past-the-post) from the :mod:`repro.solvers` registry; it only
        affects the search tier — a store or construction hit answers the
        *instance* regardless of which algorithm was requested (pass
        ``use_store=False``/``use_constructions=False`` to force the solver
        to actually run).  Unknown solver names, unknown kinds, and
        solver/kind mismatches (the CP solver only accepts Costas) raise
        :class:`~repro.exceptions.SolverError` before anything is queued.

        ``model_options`` is forwarded to the family's problem factory in
        the workers (e.g. ``{"err_weight": "constant"}`` for the basic
        Costas model) and is part of the coalescing identity.

        ``use_store=False`` opts this request out of being *answered* from
        the store (a fresh solve is wanted); whether results are *inserted*
        is service policy (``config.use_store``) on every tier, so a bypass
        request still warms the store for everyone else.
        """
        if self._closed:
            raise SolverError("service is closed")
        family = get_family(kind)
        kind = family.name
        if order < family.min_order:
            raise SolverError(
                f"{family.name} order must be >= {family.min_order}, got {order}"
            )
        # Validate and canonicalise the solver selection up front, so a bad
        # name (or a solver that cannot run this family, like CP on queens)
        # fails fast (HTTP 400) instead of failing inside a worker.
        specs = resolve_portfolio(
            solver if solver is not None else self.config.default_solver
        )
        for spec in specs:
            info = get_solver(spec.name)
            if (
                "permutation" not in info.problem_kinds
                and family.name not in info.problem_kinds
            ):
                raise SolverError(
                    f"solver {info.name!r} does not accept problem kind "
                    f"{family.name!r} (supports: {', '.join(info.problem_kinds)})"
                )
        solver_label = portfolio_label(specs)
        with self._lock:
            self._solver_requests[solver_label] = (
                self._solver_requests.get(solver_label, 0) + 1
            )
            self._kind_counter_locked(kind, "requests")
        self.start()
        request_id = f"r{next(self._req_counter)}"
        future: Future = Future()
        request = ServiceRequest(request_id=request_id, order=order, kind=kind, future=future)
        with self._lock:
            self._requests[request_id] = request
            self._evict_settled_locked()
        start = time.perf_counter()

        lookup_store = self.config.use_store if use_store is None else use_store
        try_construct = (
            self.config.use_constructions
            if use_constructions is None
            else use_constructions
        )
        storage_n = family.instance_size(order)

        # Tier 1: the persistent store (answers whole symmetry classes).
        if lookup_store:
            cached = self.store.get(kind, storage_n)
            if cached is not None:
                self._resolve(
                    request, cached, source="store", solved=True, start=start
                )
                return request

        # Tier 2: algebraic constructions (family-specific shortcuts).
        if try_construct:
            solution = family.try_construct(order)
            if solution is not None:
                if self.config.use_store:
                    self.store.insert(kind, solution, source="construction")
                with self._lock:
                    self._immediate["construction"] += 1
                self._resolve(
                    request, solution, source="construction", solved=True, start=start
                )
                return request

        # Tier 3: coalesced search on the warm pool.  A single-member
        # portfolio travels as one spec dict; a real portfolio as a list the
        # pool assigns round-robin.
        solver_payload = (
            specs[0].as_dict() if len(specs) == 1 else [s.as_dict() for s in specs]
        )
        payload = {
            "kind": kind,
            "order": int(order),
            "solver": solver_payload,
            "params": None,
            "max_time": max_time if max_time is not None else self.config.default_max_time,
            "model_options": dict(model_options) if model_options else {},
        }
        key = self._instance_key(kind, order, payload)
        try:
            ticket = self.scheduler.submit(key, payload, priority=priority)
        except ReproError:
            with self._lock:
                self._requests.pop(request_id, None)
            raise
        except RuntimeError as exc:
            # The scheduler closed between our _closed check and here (a
            # request racing close()); don't leak a never-resolving entry.
            with self._lock:
                self._requests.pop(request_id, None)
            raise SolverError("service is closed") from exc
        request.ticket = ticket
        ticket.future.add_done_callback(
            lambda fut: self._on_ticket_done(request, fut, start)
        )
        return request

    #: Completed requests retained for ``GET /result/<id>``; beyond this the
    #: oldest settled ones are evicted so a long-lived server stays bounded.
    _MAX_RETAINED_REQUESTS = 10_000

    def _evict_settled_locked(self) -> None:
        if len(self._requests) <= self._MAX_RETAINED_REQUESTS:
            return
        for request_id in list(self._requests):
            if len(self._requests) <= self._MAX_RETAINED_REQUESTS:
                break
            if self._requests[request_id].future.done():
                del self._requests[request_id]

    @staticmethod
    def _instance_key(kind: str, order: int, payload: Dict[str, Any]) -> Tuple[Any, ...]:
        """Identity under which concurrent requests coalesce.

        ``(family, order, model_options, solver)`` plus the time budget: a
        ``tabu`` request must not piggyback on an in-flight ``adaptive``
        solve of the same instance — the client asked for that algorithm's
        walk — and a basic-model Costas solve is not the same instance as
        the optimised-model one.
        """
        model_options = payload.get("model_options") or {}
        return (
            kind,
            int(order),
            tuple(sorted((str(k), repr(v)) for k, v in model_options.items())),
            payload.get("max_time"),
            canonical_portfolio(payload.get("solver")),
        )

    def _kind_counter_locked(self, kind: str, counter: str) -> None:
        """Bump one per-family observability counter (caller holds the lock)."""
        bucket = self._kinds.setdefault(
            kind,
            {"requests": 0, "store": 0, "construction": 0, "search": 0, "unsolved": 0},
        )
        bucket[counter] += 1

    def _resolve(
        self,
        request: ServiceRequest,
        solution: Optional[np.ndarray],
        *,
        source: str,
        solved: bool,
        start: float,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        with self._lock:
            if source == "store":
                self._immediate["store"] += 1
            self._kind_counter_locked(request.kind, source if solved else "unsolved")
        response = ServiceResponse(
            order=request.order,
            kind=request.kind,
            solution=solution,
            source=source,
            solved=solved,
            elapsed=time.perf_counter() - start,
            request_id=request.request_id,
            detail=detail or {},
        )
        if not request.future.done():
            request.future.set_result(response)

    def _on_ticket_done(self, request: ServiceRequest, fut: Future, start: float) -> None:
        """Scheduler ticket resolved (from the pool collector thread)."""
        if request.future.done():
            return
        if fut.cancelled():
            request.future.cancel()
            return
        exc = fut.exception()
        if exc is not None:
            request.future.set_exception(exc)
            return
        outcome: Dict[str, Any] = fut.result()
        self._resolve(
            request,
            outcome.get("solution"),
            source="search",
            solved=outcome.get("solved", False),
            start=start,
            detail=outcome.get("detail", {}),
        )

    # ----------------------------------------------------------------- dispatch
    def _dispatch_loop(self) -> None:
        """Move jobs from the scheduler onto the worker pool, slot-gated."""
        while True:
            if not self._slots.acquire(timeout=0.2):
                if self.scheduler.closed:
                    return
                continue
            job = self.scheduler.next_job(timeout=0.2)
            if job is None:
                self._slots.release()
                if self.scheduler.closed:
                    return
                continue
            self._searches += 1
            # A heterogeneous portfolio needs one walk per member to actually
            # race; a larger walks_per_job fans each member out over seeds too.
            solver = job.payload.get("solver")
            members = len(solver) if isinstance(solver, (list, tuple)) else 1
            walks = max(self.config.walks_per_job, members)
            # The permit already held covers walks_per_job walks; a wider
            # portfolio job pays for the extra workers it occupies (capped at
            # the whole pool so an oversized portfolio throttles rather than
            # deadlocks), keeping the slot-gating backpressure honest.
            walks_per_permit = max(1, self.config.walks_per_job)
            permits = min(-(-walks // walks_per_permit), self._total_slots)
            # Waiting here holds up later (possibly narrower) jobs — the
            # dispatch order is deliberately FIFO-by-priority, a wide
            # portfolio is not allowed to be overtaken into starvation — but
            # a job whose every ticket was cancelled must not keep hoarding
            # permits nobody is waiting on.
            extra_held = 0
            abort: Optional[BaseException] = None
            while extra_held < permits - 1:
                if self.scheduler.closed:
                    abort = SolverError("service is closed")
                    break
                if not job.tickets:
                    abort = CancelledError()
                    break
                if self._slots.acquire(timeout=0.2):
                    extra_held += 1
            if abort is not None:
                for _ in range(extra_held + 1):
                    self._slots.release()
                self.scheduler.fail(job, abort)
                if self.scheduler.closed:
                    return
                continue
            try:
                handle = self.pool.submit(
                    job.payload,
                    walks=walks,
                    on_done=lambda h, job=job: self._on_pool_done(job, h),
                )
            except ReproError as exc:
                for _ in range(permits):
                    self._slots.release()
                self.scheduler.fail(job, exc)
                continue
            with self._lock:
                self._job_handles[id(job)] = handle
                self._job_permits[id(job)] = permits
            # A cancellation that landed between next_job() and the handle
            # registration above found nothing to abort; re-check now that
            # the handle is visible so the walk doesn't run (for up to its
            # whole time budget) with nobody waiting.
            if not job.tickets:
                self.pool.cancel(handle)

    def _on_pool_done(self, job: Job, handle: PoolJobHandle) -> None:
        """Pool collector callback: persist, then fan the result out."""
        with self._lock:
            self._job_handles.pop(id(job), None)
            permits = self._job_permits.pop(id(job), 1)
        for _ in range(permits):
            self._slots.release()
        best = handle.best
        if handle.cancelled and (best is None or not best.solved):
            self.scheduler.fail(job, CancelledError())
            return
        if best is None:
            self.scheduler.fail(
                job,
                SolverError(handle.failure or "search produced no result"),
            )
            return
        solution = best.configuration if best.solved else None
        if best.solved:
            with self._lock:
                self._solver_solves[best.solver] = (
                    self._solver_solves.get(best.solver, 0) + 1
                )
        if best.solved and self.config.use_store:
            try:
                self.store.insert(job.payload["kind"], solution, source="search")
            except ReproError:  # pragma: no cover - invalid result guard
                self.scheduler.fail(
                    job, SolverError("search returned an invalid solution")
                )
                return
        self.scheduler.complete(
            job,
            {
                "solution": solution,
                "solved": bool(best.solved),
                "detail": {
                    "iterations": int(best.iterations),
                    "wall_time": float(best.wall_time),
                    "stop_reason": best.stop_reason,
                    "solver": best.solver,
                    "walks": handle.walks,
                    "coalesced_width": job.width,
                },
            },
        )

    def _abort_running_job(self, job: Job) -> None:
        """Scheduler callback: the last ticket of a running job was cancelled."""
        with self._lock:
            handle = self._job_handles.get(id(job))
        if handle is not None:
            self.pool.cancel(handle)

    # ------------------------------------------------------------------ queries
    def result(
        self, request_id: str, timeout: Optional[float] = None
    ) -> Optional[ServiceResponse]:
        """Resolve a request id; ``None`` when the id is unknown.

        Raises the underlying error for failed requests and
        :class:`concurrent.futures.TimeoutError` when *timeout* elapses.
        """
        with self._lock:
            request = self._requests.get(request_id)
        if request is None:
            return None
        return request.result(timeout)

    def request(self, request_id: str) -> Optional[ServiceRequest]:
        with self._lock:
            return self._requests.get(request_id)

    def cancel(self, request_id: str) -> bool:
        """Cancel a pending request; ``False`` if unknown or already settled."""
        with self._lock:
            request = self._requests.get(request_id)
        if request is None or request.future.done():
            return False
        if request.ticket is not None:
            return self.scheduler.cancel(request.ticket)
        return request.future.cancel()

    def stats(self) -> Dict[str, Any]:
        """One JSON-friendly snapshot across store, scheduler and pool."""
        with self._lock:
            open_requests = sum(
                1 for r in self._requests.values() if not r.future.done()
            )
            immediate = dict(self._immediate)
            searches = self._searches
            solver_requests = dict(self._solver_requests)
            solver_solves = dict(self._solver_solves)
            kinds = {kind: dict(counters) for kind, counters in self._kinds.items()}
        return {
            "uptime": time.time() - self._started_at,
            "open_requests": open_requests,
            "immediate": immediate,
            "searches_dispatched": searches,
            # Per-family requests and solved responses by answering tier.
            "kinds": kinds,
            "solvers": {
                # Requests by the portfolio label clients asked for, search
                # solves by the strategy that actually won the race.
                "requests": solver_requests,
                "solved": solver_solves,
            },
            "store": self.store.snapshot(),
            "scheduler": self.scheduler.stats(),
            "pool": self.pool.stats(),
            "config": {
                "n_workers": self.pool.n_workers,
                "walks_per_job": self.config.walks_per_job,
                "max_queue_depth": self.config.max_queue_depth,
                "default_solver": self._default_solver_label,
                "use_store": self.config.use_store,
                "use_constructions": self.config.use_constructions,
            },
        }
