"""Deterministic fault injection and failure policy for the serving stack.

The source paper's parallelism model survives failure by construction: every
walk is independent, so a crashed machine costs one walk, not the experiment.
The serving stack (store -> scheduler -> pool -> HTTP) has to earn the same
property, and this module supplies both halves of that work:

* **Fault injection** — a seedable :class:`FaultPlan` names the places where
  the stack is allowed to break (:data:`FAULT_POINTS`: a worker crashing or
  hanging mid-walk, a store read raising ``disk I/O error``, a store write
  raising ``database is locked``, a deliberately slow solve, an HTTP
  connection dropped instead of answered) and the probability of each.  A
  :class:`FaultInjector` turns the plan into deterministic Bernoulli draws,
  so a chaos test that fails replays exactly.  Plans cross the process
  boundary through the ``REPRO_FAULTS`` environment variable
  (:meth:`FaultPlan.install_env` / :meth:`FaultPlan.from_env`), which is how
  the worker pool's children inherit the chaos the parent was configured
  with.

* **Failure policy** — the knobs every layer uses to degrade instead of
  dying: :class:`RetryPolicy` (bounded exponential backoff with
  deterministic-seedable jitter, shared by locked-store writes, dead-worker
  requeues and the CLI client), :class:`CircuitBreaker` (per-key consecutive
  failure counting with a cooldown and a half-open probe, keyed by
  ``(kind, n)`` in the service), and the exception vocabulary the HTTP layer
  maps onto status codes: :class:`CircuitOpenError` and
  :class:`ServiceDegradedError` (503 + ``Retry-After``),
  :class:`DeadlineExceededError` (504).

Nothing here imports the rest of the service: the store, scheduler, workers
and facade all import *this* module, never the other way around.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.exceptions import SolverError

__all__ = [
    "FAULT_POINTS",
    "FAULTS_ENV_VAR",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceededError",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "ServiceDegradedError",
]

#: Environment variable carrying a JSON-encoded :class:`FaultPlan` so child
#: processes (pool workers, subprocess servers) inherit the active chaos.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: The named injection points.  Every rate key of a :class:`FaultPlan` must be
#: one of these; the component that owns each point documents where it fires.
FAULT_POINTS = (
    "worker.crash",        # child hard-exits right after claiming a walk
    "worker.hang",         # child sleeps `hang_seconds` instead of solving
    "worker.slow",         # child sleeps `slow_seconds` before solving
    "store.read.error",    # a store SELECT raises "disk I/O error"
    "store.write.locked",  # a store INSERT raises "database is locked"
    "http.drop",           # the front-end closes the socket instead of replying
)


# --------------------------------------------------------------------- errors
class CircuitOpenError(SolverError):
    """The per-``(kind, n)`` breaker is open: fail fast, retry later (503)."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = max(0.0, float(retry_after))


class ServiceDegradedError(SolverError):
    """The service is in degraded mode: immediate tiers only, no fresh solves.

    ``lane`` scopes a *partial* refusal: with QoS lanes enabled, reduced
    capacity (some workers down) refuses only the named lane — background
    first — while full degradation refuses every lane (``lane is None``).
    """

    def __init__(
        self,
        message: str,
        retry_after: float = 5.0,
        lane: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.retry_after = max(0.0, float(retry_after))
        self.lane = lane


class DeadlineExceededError(SolverError):
    """A request's deadline passed before (or while) its solve could run (504)."""


# ------------------------------------------------------------------ fault plan
@dataclass(frozen=True)
class FaultPlan:
    """Seedable specification of which faults fire, and how often.

    ``rates`` maps injection-point names (:data:`FAULT_POINTS`) to
    probabilities in ``[0, 1]``; points not named never fire.  The plan is
    pure data — picklable, JSON-round-trippable, comparable — so one plan
    can describe the chaos of a whole multi-process deployment and every
    process derives its own deterministic draw streams from it
    (:class:`FaultInjector`).
    """

    rates: Mapping[str, float] = field(default_factory=dict)
    seed: int = 0
    #: How long an injected hang sleeps (the pool's hung-walk watchdog is
    #: expected to kill the worker long before this elapses).
    hang_seconds: float = 30.0
    #: Injected latency of a ``worker.slow`` fault.
    slow_seconds: float = 0.25

    def __post_init__(self) -> None:
        clean: Dict[str, float] = {}
        for point, rate in dict(self.rates).items():
            if point not in FAULT_POINTS:
                raise ValueError(
                    f"unknown fault point {point!r}; known: {', '.join(FAULT_POINTS)}"
                )
            rate = float(rate)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"fault rate for {point!r} must be in [0, 1], got {rate}")
            if rate > 0.0:
                clean[point] = rate
        object.__setattr__(self, "rates", clean)

    @property
    def enabled(self) -> bool:
        """Whether any point can ever fire."""
        return bool(self.rates)

    def rate(self, point: str) -> float:
        return self.rates.get(point, 0.0)

    # ------------------------------------------------------------ serialisation
    def as_dict(self) -> Dict[str, Any]:
        return {
            "rates": dict(self.rates),
            "seed": self.seed,
            "hang_seconds": self.hang_seconds,
            "slow_seconds": self.slow_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            rates=dict(data.get("rates", {})),
            seed=int(data.get("seed", 0)),
            hang_seconds=float(data.get("hang_seconds", 30.0)),
            slow_seconds=float(data.get("slow_seconds", 0.25)),
        )

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("a fault plan must be a JSON object")
        return cls.from_dict(data)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI shorthand: JSON, or ``point=rate[,point=rate...]``
        with an optional ``seed=N`` entry (``worker.crash=0.1,seed=7``)."""
        text = text.strip()
        if not text:
            return cls()
        if text.startswith("{"):
            return cls.from_json(text)
        rates: Dict[str, float] = {}
        seed = 0
        for chunk in text.split(","):
            name, sep, value = chunk.strip().partition("=")
            if not sep:
                raise ValueError(f"malformed fault spec {chunk!r}; expected point=rate")
            if name == "seed":
                seed = int(value)
            else:
                rates[name] = float(value)
        return cls(rates=rates, seed=seed)

    # ------------------------------------------------------------------ env hook
    def install_env(self, environ: Optional[Mapping[str, str]] = None) -> None:
        """Publish this plan in ``REPRO_FAULTS`` so child processes inherit it
        (a disabled plan removes the variable instead)."""
        env = os.environ if environ is None else environ
        if self.enabled:
            env[FAULTS_ENV_VAR] = self.to_json()  # type: ignore[index]
        else:
            env.pop(FAULTS_ENV_VAR, None)  # type: ignore[union-attr]

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["FaultPlan"]:
        """The plan published in ``REPRO_FAULTS``, or ``None``.

        A malformed value raises: silently running *without* the chaos that
        was asked for would make a red chaos suite look green.
        """
        env = os.environ if environ is None else environ
        raw = env.get(FAULTS_ENV_VAR)
        if not raw:
            return None
        return cls.from_json(raw)


class FaultInjector:
    """Runtime face of a :class:`FaultPlan`: deterministic Bernoulli draws.

    Each ``(plan seed, scope, point)`` triple seeds an independent
    ``random.Random`` stream, so two components (or two worker incarnations)
    with different *scope* strings draw independently but reproducibly.  An
    injector built from ``None`` (or a disabled plan) is inert and costs one
    attribute check per call — production code paths keep their injector
    unconditionally and never branch on "is chaos on".
    """

    def __init__(self, plan: Optional[FaultPlan], *, scope: str = "") -> None:
        self.plan = plan if plan is not None and plan.enabled else None
        self.scope = scope
        self._lock = threading.Lock()
        self._rngs: Dict[str, random.Random] = {}
        #: point -> number of times it actually fired (observability).
        self.fired: Dict[str, int] = {}

    def _rng(self, point: str) -> random.Random:
        rng = self._rngs.get(point)
        if rng is None:
            assert self.plan is not None
            digest = hashlib.sha256(
                f"{self.plan.seed}|{self.scope}|{point}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._rngs[point] = rng
        return rng

    def fires(self, point: str) -> bool:
        """One deterministic draw: does *point* fire this time?"""
        if self.plan is None:
            return False
        rate = self.plan.rate(point)
        if rate <= 0.0:
            return False
        with self._lock:
            fired = self._rng(point).random() < rate
            if fired:
                self.fired[point] = self.fired.get(point, 0) + 1
        return fired

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            fired = dict(self.fired)
        return {
            "enabled": self.plan is not None,
            "scope": self.scope,
            "rates": dict(self.plan.rates) if self.plan is not None else {},
            "fired": fired,
        }


# ---------------------------------------------------------------- retry policy
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with optional jitter.

    ``attempts`` counts *retries* (a policy with ``attempts=3`` allows four
    tries total).  ``delay(retry)`` is the pause before the given retry
    (0-indexed): ``base_delay * factor**retry``, capped at ``max_delay``,
    plus up to ``jitter`` of itself drawn from *rng* (deterministic when the
    caller seeds one — the chaos suite does).
    """

    attempts: int = 3
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25

    def delay(self, retry: int, rng: Optional[random.Random] = None) -> float:
        base = min(self.base_delay * (self.factor ** max(0, retry)), self.max_delay)
        if self.jitter <= 0.0:
            return base
        draw = (rng.random() if rng is not None else random.random())
        return base * (1.0 + self.jitter * draw)

    def run(
        self,
        fn: Callable[[], Any],
        *,
        retry_on: Tuple[type, ...],
        should_retry: Optional[Callable[[BaseException], bool]] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ) -> Any:
        """Call *fn* with up to ``attempts`` retries on *retry_on* exceptions.

        ``should_retry`` refines the class check (e.g. only ``database is
        locked`` among ``OperationalError``\\ s).  The final failure is
        re-raised unchanged.
        """
        for retry in range(self.attempts + 1):
            try:
                return fn()
            except retry_on as exc:
                if retry >= self.attempts:
                    raise
                if should_retry is not None and not should_retry(exc):
                    raise
                sleep(self.delay(retry, rng))


# -------------------------------------------------------------- circuit breaker
class _BreakerState:
    __slots__ = ("failures", "opened_at", "probing", "tripped")

    def __init__(self) -> None:
        self.failures = 0
        self.opened_at: Optional[float] = None  # None = closed
        self.probing = False  # a half-open trial request is in flight
        self.tripped = 0


class CircuitBreaker:
    """Per-key circuit breaker: trip after N consecutive failures, cool down,
    then probe.

    The service keys it by ``(kind, n)``: an instance that keeps crashing its
    workers stops consuming pool slots (and its clients stop waiting a full
    solve budget to learn that) while every other instance keeps being
    served.  States per key:

    * **closed** — requests pass; a success resets the failure count.
    * **open** — requests are rejected with the cooldown remainder as
      ``retry_after`` (the HTTP layer turns this into ``503`` +
      ``Retry-After``).
    * **half-open** — after the cooldown, exactly one trial request passes;
      its success closes the breaker, its failure re-opens it for a fresh
      cooldown.
    """

    def __init__(
        self,
        *,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._states: Dict[Hashable, _BreakerState] = {}

    def allow(self, key: Hashable) -> Tuple[bool, float]:
        """May a request for *key* proceed?  Returns ``(allowed, retry_after)``
        where ``retry_after`` is meaningful only on rejection."""
        now = self._clock()
        with self._lock:
            state = self._states.get(key)
            if state is None or state.opened_at is None:
                return True, 0.0
            remaining = state.opened_at + self.cooldown - now
            if remaining > 0.0:
                return False, remaining
            if state.probing:
                # One probe is already in flight; hold the rest back briefly.
                return False, min(self.cooldown, 1.0)
            state.probing = True
            return True, 0.0

    def record_success(self, key: Hashable) -> None:
        with self._lock:
            self._states.pop(key, None)

    def record_failure(self, key: Hashable) -> None:
        now = self._clock()
        with self._lock:
            state = self._states.setdefault(key, _BreakerState())
            state.failures += 1
            was_probe = state.probing
            state.probing = False
            still_open = (
                state.opened_at is not None and now < state.opened_at + self.cooldown
            )
            # A failed half-open probe re-opens immediately; a closed (or
            # cooled-down) key opens once the failure threshold is reached.
            # Stragglers failing while already open just extend the cooldown.
            if was_probe or state.failures >= self.threshold:
                if was_probe or not still_open:
                    state.tripped += 1
                state.opened_at = now

    def state(self, key: Hashable) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` (observability)."""
        now = self._clock()
        with self._lock:
            state = self._states.get(key)
            if state is None or state.opened_at is None:
                return "closed"
            if state.probing or now >= state.opened_at + self.cooldown:
                return "half-open"
            return "open"

    def snapshot(self) -> Dict[str, Any]:
        now = self._clock()
        with self._lock:
            open_keys: List[str] = []
            tripped = 0
            for key, state in self._states.items():
                tripped += state.tripped
                if state.opened_at is not None and (
                    now < state.opened_at + self.cooldown or state.probing
                ):
                    open_keys.append(repr(key))
            return {
                "threshold": self.threshold,
                "cooldown": self.cooldown,
                "open": sorted(open_keys),
                "tracked_keys": len(self._states),
                "tripped_total": tripped,
            }
