"""Long-lived process worker pool for the solver service.

:class:`~repro.parallel.multiwalk.MultiWalkSolver` pays process spawn, module
import and (on first use) C-kernel compilation on *every* request.  The pool
amortises all of that: ``n_workers`` processes are started **once**, block on
a shared job queue, run the incremental Adaptive Search engine from PR 1, and
push results back on a shared result queue.  A request therefore costs one
queue round-trip instead of a fork.

Per-walk control uses a dedicated ``multiprocessing.Event`` per worker slot
(created before the processes start, so it works under both ``fork`` and
``spawn``): a worker announces which job it picked up, the dispatcher records
the slot, and cancelling the job simply sets that slot's event, which the
engine observes through its ``stop_check`` hook.  Multi-walk jobs fan the same
instance out to several slots with independent seeds; the first solved walk
cancels its siblings, mirroring the paper's first-past-the-post multi-walk.

Liveness reuses :class:`repro.parallel.liveness.DeadProcessDetector` (shared
with the multi-walk solver): a worker that dies mid-job is detected, its slot
respawned, and the walk requeued (bounded retries), so one OOM-killed child
degrades a single request instead of wedging the service.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.params import ASParameters
from repro.core.result import SolveResult
from repro.exceptions import ParallelExecutionError
from repro.parallel.liveness import DeadProcessDetector, poll_interval
from repro.service.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.solvers import run_spec

__all__ = ["WorkerPool", "PoolJobHandle"]

#: How many times a walk is requeued after its worker died before giving up.
_MAX_WALK_RETRIES = 2

_SENTINEL = ("__shutdown__", None)


class _ProgressReporter:
    """Throttled :class:`~repro.core.callbacks.IterationCallback` that
    forwards search progress over the pool's result queue.

    The strategy harness (:class:`repro.core.strategy.StrategyRun`) dispatches
    ``on_iteration`` on every loop iteration; this reporter checks the clock
    only every 64 iterations and posts at most one ``("progress", ...)``
    message per *interval* seconds, so the hot path pays a couple of integer
    operations per iteration and the queue sees a few messages per second per
    walk at worst.  A full queue drops the sample (progress is advisory).
    """

    __slots__ = ("_queue", "_worker_id", "_job_id", "_walk_index", "_solver",
                 "_interval", "_next_at", "_count")

    def __init__(
        self,
        result_queue: Any,
        worker_id: int,
        job_id: int,
        walk_index: int,
        solver: Optional[str],
        interval: float,
    ) -> None:
        self._queue = result_queue
        self._worker_id = worker_id
        self._job_id = job_id
        self._walk_index = walk_index
        self._solver = solver
        self._interval = interval
        self._next_at = time.perf_counter() + interval
        self._count = 0

    def on_iteration(self, iteration: int, cost: int) -> None:
        self._count += 1
        if self._count & 63:
            return
        now = time.perf_counter()
        if now < self._next_at:
            return
        self._next_at = now + self._interval
        try:
            self._queue.put_nowait(
                (
                    "progress",
                    self._worker_id,
                    self._job_id,
                    self._walk_index,
                    {
                        "iteration": int(iteration),
                        "cost": int(cost),
                        "solver": self._solver,
                    },
                )
            )
        except queue_module.Full:  # pragma: no cover - advisory sample dropped
            pass

    def on_event(self, event: str, iteration: int, cost: int) -> None:
        # Progress streams sample the cost trajectory; discrete engine events
        # stay local to the walk.
        return


def _pool_worker(
    worker_id: int,
    job_queue,
    result_queue,
    cancel_event,
    shutdown_event,
    fault_scope: str = "",
) -> None:
    """Body of one long-lived worker process.

    Loops forever: pull ``(job_id, walk_index, spec)``, announce the claim,
    solve, report.  ``spec`` is a plain dict (picklable under ``spawn``):
    ``{"kind", "order", "solver": spec-dict | None, "params": dict | None,
    "seed", "max_time", "deadline_at", "model_options", "population"}``.
    ``kind`` selects
    any family of the :mod:`repro.problems` registry; ``solver`` selects any
    strategy of the :mod:`repro.solvers` registry (``None`` = Adaptive
    Search); ``params`` is the legacy engine-parameter override honoured by
    adaptive walks only — solver-specific parameters travel inside
    ``solver``.  ``deadline_at`` is an absolute ``time.time()`` deadline that
    caps the walk's time budget (an already-expired deadline is reported as
    an error without solving).  ``population`` (default 1) runs that many
    vectorised walks per slot in one compiled-kernel batch, reporting the
    best walk's result; solvers without population support degrade to a
    single walk.

    Chaos: the :data:`~repro.service.faults.FAULTS_ENV_VAR` plan inherited
    from the parent drives the ``worker.crash`` / ``worker.hang`` /
    ``worker.slow`` injection points, scoped by *fault_scope* (worker slot +
    incarnation) so respawned workers draw fresh — deterministic but not
    identical — fault streams.
    """
    from repro.problems import make_problem

    try:
        plan = FaultPlan.from_env()
    except ValueError:  # pragma: no cover - malformed env is parent's bug
        plan = None
    injector = FaultInjector(plan, scope=fault_scope)

    while not shutdown_event.is_set():
        try:
            item = job_queue.get(timeout=0.2)
        except queue_module.Empty:
            continue
        if item == _SENTINEL or item[0] == "__shutdown__":
            break
        job_id, walk_index, spec = item
        cancel_event.clear()
        result_queue.put(("started", worker_id, job_id, walk_index, None))
        if injector.fires("worker.crash"):
            # Simulate a hard death (OOM kill, segfault) *after* the claim
            # was observed: flush the queue's feeder thread so the "started"
            # announcement survives, then exit with no cleanup and no goodbye.
            # The pool's liveness detector has to notice on its own and
            # requeue exactly this walk.  (Exiting before the claim flushes
            # would model a crash before claiming — a different case, where
            # the walk is still in the job queue for a sibling to pick up.)
            result_queue.close()
            result_queue.join_thread()
            os._exit(17)
        if injector.fires("worker.hang"):
            # A true hang ignores cancel events; only the pool's hung-walk
            # watchdog (terminate) is expected to get us out of this.
            time.sleep(injector.plan.hang_seconds)
        if injector.fires("worker.slow"):
            time.sleep(injector.plan.slow_seconds)
        try:
            max_time = spec.get("max_time")
            deadline_at = spec.get("deadline_at")
            if deadline_at is not None:
                remaining = float(deadline_at) - time.time()
                if remaining <= 0.0:
                    result_queue.put(
                        (
                            "error",
                            worker_id,
                            job_id,
                            walk_index,
                            "DeadlineExceededError: deadline expired before "
                            "the walk could start",
                        )
                    )
                    continue
                max_time = (
                    remaining if max_time is None else min(float(max_time), remaining)
                )
            problem = make_problem(
                spec["kind"], spec["order"], **spec.get("model_options", {})
            )
            as_params = (
                ASParameters(**spec["params"]) if spec.get("params") is not None else None
            )
            interval = spec.get("progress_interval")
            reporter: Optional[_ProgressReporter] = None
            if interval:
                solver_spec = spec.get("solver")
                solver_name = (
                    solver_spec.get("name")
                    if isinstance(solver_spec, dict)
                    else solver_spec
                )
                reporter = _ProgressReporter(
                    result_queue,
                    worker_id,
                    job_id,
                    walk_index,
                    solver_name,
                    float(interval),
                )
            result = run_spec(
                spec.get("solver"),
                problem,
                seed=spec["seed"],
                problem_kind=spec["kind"],
                stop_check=cancel_event.is_set,
                max_time=max_time,
                callbacks=reporter,
                as_params=as_params,
                population=int(spec.get("population") or 1),
            )
            result.extra["worker_id"] = worker_id
            result.extra["walk_index"] = walk_index
            result_queue.put(("done", worker_id, job_id, walk_index, result.as_dict()))
        except Exception as exc:  # pragma: no cover - defensive crash path
            result_queue.put(("error", worker_id, job_id, walk_index, repr(exc)))


@dataclass
class PoolJobHandle:
    """Dispatcher-side bookkeeping of one in-flight pool job."""

    job_id: int
    spec: Dict[str, Any]
    walks: int
    on_done: Callable[["PoolJobHandle"], None]
    #: Optional live-progress hook: ``on_progress(handle, sample)`` fires on
    #: the collector thread for every throttled walk sample (advisory — it
    #: must be cheap and must not raise).
    on_progress: Optional[Callable[["PoolJobHandle", Dict[str, Any]], None]] = None
    results: List[SolveResult] = field(default_factory=list)
    #: walk_index -> worker slot currently running it (claimed walks only).
    running: Dict[int, int] = field(default_factory=dict)
    #: walk_index -> ``time.time()`` of its claim (hung-walk watchdog input).
    claimed_at: Dict[int, float] = field(default_factory=dict)
    #: walk_index -> retry count for walks whose worker died.
    retries: Dict[int, int] = field(default_factory=dict)
    outstanding: int = 0
    cancelled: bool = False
    settled: bool = False
    failure: Optional[str] = None
    submitted_at: float = 0.0

    @property
    def best(self) -> Optional[SolveResult]:
        if not self.results:
            return None
        return SolveResult.best_of(self.results)

    @property
    def solved(self) -> bool:
        return any(r.solved for r in self.results)


class WorkerPool:
    """Long-lived multiprocessing pool executing solve jobs.

    Parameters
    ----------
    n_workers:
        Worker process count (default: CPU count).
    mp_context:
        ``multiprocessing`` start method (``fork`` on POSIX by default).
    seed_root:
        Root for per-walk seed spawning; walks of distinct jobs get
        independent seeds derived from a monotonically increasing stream.
    max_walk_retries:
        How many times one walk is requeued after its worker died (or a stale
        cancel aborted it) before the job is failed.
    retry:
        Backoff policy spacing those requeues (exponential with jitter), so a
        crash-looping instance does not hammer the queue.
    liveness_grace:
        Seconds a worker may be observed dead before its walks are requeued
        (the queue feeder may still be flushing its last result).
    hang_grace:
        Seconds past a walk's time budget (``max_time`` / ``deadline_at``)
        before the hung-walk watchdog terminates its worker.
    faults:
        Optional :class:`~repro.service.faults.FaultPlan` published to
        ``REPRO_FAULTS`` at :meth:`start` so worker children inherit it.
    """

    def __init__(
        self,
        n_workers: Optional[int] = None,
        *,
        mp_context: Optional[str] = None,
        seed_root: Optional[int] = None,
        max_walk_retries: int = _MAX_WALK_RETRIES,
        retry: Optional[RetryPolicy] = None,
        liveness_grace: float = 5.0,
        hang_grace: float = 5.0,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.n_workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
        if self.n_workers < 1:
            raise ParallelExecutionError(f"n_workers must be >= 1, got {self.n_workers}")
        if max_walk_retries < 0:
            raise ParallelExecutionError(
                f"max_walk_retries must be >= 0, got {max_walk_retries}"
            )
        self.max_walk_retries = max_walk_retries
        self.liveness_grace = liveness_grace
        self.hang_grace = hang_grace
        self._retry = retry if retry is not None else RetryPolicy()
        self._fault_plan = faults
        if mp_context is None:
            mp_context = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(mp_context)
        self._job_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        self._shutdown_event = self._ctx.Event()
        self._cancel_events = [self._ctx.Event() for _ in range(self.n_workers)]
        self._procs: List[mp.process.BaseProcess] = []
        self._lock = threading.RLock()
        self._jobs: Dict[int, PoolJobHandle] = {}
        self._job_ids = iter(range(1, 1 << 62))
        self._seed_seq = np.random.SeedSequence(seed_root)
        self._dispatcher: Optional[threading.Thread] = None
        self._started = False
        self._closing = False
        self._jobs_done = 0
        self._walks_run = 0
        #: Monotonic walks submitted per QoS lane (specs without a lane —
        #: direct pool users — count under "default").
        self._walks_by_lane: Dict[str, int] = {}
        self._workers_respawned = 0
        self._walks_requeued = 0
        self._hung_terminated = 0
        self._incarnations = [0] * self.n_workers
        self._timers: List[threading.Timer] = []

    # ----------------------------------------------------------------- startup
    def start(self) -> None:
        """Spawn the worker processes and the collector thread (idempotent).

        The spawns happen *outside* ``_lock``: starting N processes takes
        whole seconds under the spawn method, and ``submit()`` / ``stats()``
        need the lock.  ``_started`` flips first (under the lock), so the
        one claiming thread owns the spawn loop; jobs submitted meanwhile
        just sit in the mp queue until the workers come up.
        """
        with self._lock:
            if self._started:
                return
            self._started = True
            if self._fault_plan is not None:
                # Children inherit the parent environment under both fork and
                # spawn, so publishing before the first Process.start() is
                # enough to arm the workers' injectors.
                self._fault_plan.install_env()
        procs = [self._spawn(worker_id) for worker_id in range(self.n_workers)]
        with self._lock:
            self._procs.extend(procs)
            self._dispatcher = threading.Thread(
                target=self._collect_loop, name="repro-pool-collector", daemon=True
            )
            self._dispatcher.start()

    def _spawn(self, worker_id: int) -> mp.process.BaseProcess:
        # Incarnation counters keep respawned workers on fresh deterministic
        # fault streams: without them a worker whose first injected draw is
        # "crash" would crash-loop forever under the same seed.
        self._incarnations[worker_id] += 1
        scope = f"w{worker_id}.{self._incarnations[worker_id]}"
        proc = self._ctx.Process(
            target=_pool_worker,
            args=(
                worker_id,
                self._job_queue,
                self._result_queue,
                self._cancel_events[worker_id],
                self._shutdown_event,
                scope,
            ),
            daemon=True,
            name=f"repro-pool-worker-{worker_id}",
        )
        proc.start()
        return proc

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(drain=False)

    # ------------------------------------------------------------------ submit
    def submit(
        self,
        spec: Dict[str, Any],
        *,
        walks: int = 1,
        on_done: Callable[[PoolJobHandle], None],
        on_progress: Optional[Callable[[PoolJobHandle, Dict[str, Any]], None]] = None,
    ) -> PoolJobHandle:
        """Enqueue *spec* as one job fanned out over *walks* independent walks.

        ``on_done`` fires exactly once from the collector thread when the job
        settles (first solved walk wins and cancels its siblings; an unsolved
        job settles when every walk reported).

        When ``spec["solver"]`` is a *list* of solver spec dicts (a
        heterogeneous portfolio), walks are assigned members round-robin, so
        the job races different strategies first-past-the-post.
        """
        if not self._started:
            self.start()
        if walks < 1:
            raise ParallelExecutionError(f"walks must be >= 1, got {walks}")
        with self._lock:
            if self._closing:
                raise ParallelExecutionError("worker pool is shutting down")
            job_id = next(self._job_ids)
            handle = PoolJobHandle(
                job_id=job_id,
                spec=dict(spec),
                walks=walks,
                on_done=on_done,
                on_progress=on_progress,
                outstanding=walks,
                submitted_at=time.perf_counter(),
            )
            self._jobs[job_id] = handle
            lane = str(spec.get("lane") or "default")
            self._walks_by_lane[lane] = self._walks_by_lane.get(lane, 0) + walks
            for walk_index in range(walks):
                self._job_queue.put((job_id, walk_index, self._walk_spec(handle, walk_index)))
                self._walks_run += 1
        return handle

    def _walk_spec(self, handle: PoolJobHandle, walk_index: int) -> Dict[str, Any]:
        """One walk's job spec: fresh seed, portfolio member picked round-robin.

        Also used by the requeue paths (stale cancel, dead worker) so a
        requeued walk keeps racing with the *same* strategy it was assigned.
        """
        walk_spec = dict(handle.spec)
        solver = handle.spec.get("solver")
        if isinstance(solver, (list, tuple)) and solver:
            walk_spec["solver"] = solver[walk_index % len(solver)]
        walk_spec["seed"] = self._next_seeds(1)[0]
        return walk_spec

    def _next_seeds(self, count: int) -> List[int]:
        children = self._seed_seq.spawn(count)
        return [int(child.generate_state(1, dtype=np.uint64)[0] % (2**63)) for child in children]

    # ------------------------------------------------------------------ cancel
    def cancel(self, handle: PoolJobHandle) -> None:
        """Abort a job: running walks are signalled, queued walks discarded.

        The job still settles through ``on_done`` (with whatever results
        arrived before the abort).
        """
        with self._lock:
            if handle.settled:
                return
            handle.cancelled = True
            for walk_index, worker_id in handle.running.items():
                self._cancel_events[worker_id].set()

    # ---------------------------------------------------------------- collector
    def _collect_loop(self) -> None:
        """Collector thread: route worker messages, watch liveness, respawn."""
        detector = DeadProcessDetector(grace=self.liveness_grace)
        poll = poll_interval(self.liveness_grace)
        last_liveness = time.perf_counter()
        while True:
            if self._shutdown_event.is_set() and not self._jobs:
                break
            # Liveness must run even under a steady message stream from the
            # healthy workers, or a worker that dies mid-job while its
            # siblings stay busy would never be detected.
            now = time.perf_counter()
            if now - last_liveness >= poll:
                last_liveness = now
                self._check_liveness(detector)
            try:
                kind, worker_id, job_id, walk_index, payload = self._result_queue.get(
                    timeout=poll
                )
            except queue_module.Empty:
                continue
            except (EOFError, OSError):  # pragma: no cover - queue torn down
                break
            with self._lock:
                handle = self._jobs.get(job_id)
            if handle is None:
                # Late message for a settled job.  A late *claim* means a
                # leftover queued walk (its job settled first): abort it so
                # the slot frees up at the next stop_check instead of running
                # a full solve nobody is waiting for.
                if kind == "started":
                    self._cancel_events[worker_id].set()
                continue
            if kind == "started":
                self._on_started(handle, walk_index, worker_id)
            elif kind == "progress":
                self._on_walk_progress(handle, walk_index, payload)
            elif kind == "done":
                self._on_walk_done(handle, walk_index, worker_id, payload)
            else:  # "error"
                self._on_walk_error(handle, walk_index, worker_id, payload)

    def _on_walk_progress(
        self, handle: PoolJobHandle, walk_index: int, payload: Dict[str, Any]
    ) -> None:
        on_progress = handle.on_progress
        if on_progress is None or handle.settled:
            return
        sample = dict(payload)
        sample["walk"] = walk_index
        try:
            on_progress(handle, sample)
        except Exception:  # pragma: no cover - advisory hook must not kill collector
            pass

    def _on_started(self, handle: PoolJobHandle, walk_index: int, worker_id: int) -> None:
        with self._lock:
            handle.running[walk_index] = worker_id
            handle.claimed_at[walk_index] = time.time()
            if handle.cancelled:
                # Cancellation raced the claim: abort this walk now.
                self._cancel_events[worker_id].set()

    def _on_walk_done(
        self, handle: PoolJobHandle, walk_index: int, worker_id: int, payload: Dict[str, Any]
    ) -> None:
        result = SolveResult.from_dict(payload)
        settle = False
        with self._lock:
            handle.running.pop(walk_index, None)
            handle.claimed_at.pop(walk_index, None)
            stale_stop = (
                result.stop_reason == "external_stop"
                and not result.solved
                and not handle.cancelled
                and not handle.solved
            )
            if stale_stop and handle.retries.get(walk_index, 0) < self.max_walk_retries:
                # A stale cancel event (set for this slot's previous job just
                # as it finished) aborted an innocent walk: requeue it.
                self._requeue_locked(handle, walk_index)
                return
            handle.results.append(result)
            handle.outstanding -= 1
            if result.solved and not handle.cancelled:
                # First past the post: abort the sibling walks.
                for other_walk, other_worker in handle.running.items():
                    self._cancel_events[other_worker].set()
            settle = handle.outstanding <= 0 or result.solved or handle.cancelled
            if settle:
                settle = self._settle_locked(handle)
        if settle:
            handle.on_done(handle)

    def _on_walk_error(
        self, handle: PoolJobHandle, walk_index: int, worker_id: int, payload: str
    ) -> None:
        settle = False
        with self._lock:
            handle.running.pop(walk_index, None)
            handle.claimed_at.pop(walk_index, None)
            handle.failure = payload
            handle.outstanding -= 1
            settle = handle.outstanding <= 0
            if settle:
                settle = self._settle_locked(handle)
        if settle:
            handle.on_done(handle)

    def _settle_locked(self, handle: PoolJobHandle) -> bool:
        """Mark *handle* settled exactly once; returns whether we won the race."""
        if handle.settled:
            return False
        handle.settled = True
        self._jobs.pop(handle.job_id, None)
        self._jobs_done += 1
        return True

    def _requeue_locked(self, handle: PoolJobHandle, walk_index: int) -> None:
        """Requeue one walk with exponential backoff (caller holds the lock).

        The backoff keeps a crash-looping instance from monopolising the job
        queue; the delayed put is skipped (and the walk written off) when the
        job settled, was cancelled, or the pool started closing meanwhile.
        """
        retries = handle.retries.get(walk_index, 0)
        handle.retries[walk_index] = retries + 1
        self._walks_requeued += 1
        walk_spec = self._walk_spec(handle, walk_index)
        delay = self._retry.delay(retries)

        def put() -> None:
            settle = False
            with self._lock:
                if handle.settled:
                    return
                if handle.cancelled or self._closing:
                    handle.outstanding -= 1
                    settle = handle.outstanding <= 0 and self._settle_locked(handle)
                else:
                    self._job_queue.put((handle.job_id, walk_index, walk_spec))
            if settle:
                handle.on_done(handle)

        if delay <= 0.0:
            self._job_queue.put((handle.job_id, walk_index, walk_spec))
            return
        timer = threading.Timer(delay, put)
        timer.daemon = True
        self._timers = [t for t in self._timers if t.is_alive()]
        self._timers.append(timer)
        timer.start()

    def _terminate_hung_walks(self) -> int:
        """Terminate workers stuck far past their walk's time budget.

        A healthy walk stops itself at ``max_time`` (engine clock) or is
        stopped by cancellation; one that blows ``hang_grace`` past its
        budget — or past its request deadline — is wedged (injected hang, a
        stuck native loop) and only ``terminate()`` gets the slot back.  The
        resulting dead process flows through the ordinary liveness →
        respawn → requeue path.
        """
        now = time.time()
        victims: List[mp.process.BaseProcess] = []
        with self._lock:
            victim_ids = set()
            for handle in self._jobs.values():
                budget = handle.spec.get("max_time")
                deadline_at = handle.spec.get("deadline_at")
                for walk_index, worker_id in handle.running.items():
                    claimed = handle.claimed_at.get(walk_index)
                    if claimed is None:
                        continue
                    limits = []
                    if budget:
                        limits.append(claimed + float(budget) + self.hang_grace)
                    if deadline_at is not None:
                        limits.append(float(deadline_at) + self.hang_grace)
                    if limits and now > min(limits):
                        victim_ids.add(worker_id)
            for worker_id in victim_ids:
                proc = self._procs[worker_id]
                if proc.is_alive():
                    victims.append(proc)
            self._hung_terminated += len(victims)
        for proc in victims:
            proc.terminate()
        return len(victims)

    def _check_liveness(self, detector: DeadProcessDetector) -> None:
        """Respawn dead workers and requeue (or fail) the walks they carried."""
        if self._shutdown_event.is_set():
            return
        self._terminate_hung_walks()
        with self._lock:
            alive_map = {i: proc for i, proc in enumerate(self._procs)}
        dead = detector.poll(alive_map)
        if not dead:
            return
        # Spawn the replacements before taking the lock: a process start can
        # take seconds under the spawn method, and submit()/stats() callers
        # must not stall behind it.  Only this liveness thread respawns, so
        # the unlocked spawns cannot race another respawn of the same slot.
        replacements = {worker_id: self._spawn(worker_id) for worker_id in dead}
        to_settle: List[PoolJobHandle] = []
        with self._lock:
            for worker_id in dead:
                self._procs[worker_id] = replacements[worker_id]
                self._workers_respawned += 1
                for handle in list(self._jobs.values()):
                    for walk_index, running_worker in list(handle.running.items()):
                        if running_worker != worker_id:
                            continue
                        handle.running.pop(walk_index, None)
                        handle.claimed_at.pop(walk_index, None)
                        retries = handle.retries.get(walk_index, 0)
                        if handle.cancelled:
                            handle.outstanding -= 1
                        elif retries < self.max_walk_retries:
                            self._requeue_locked(handle, walk_index)
                        else:
                            handle.failure = (
                                f"worker {worker_id} died repeatedly on walk {walk_index}"
                            )
                            handle.outstanding -= 1
                        if handle.outstanding <= 0 and self._settle_locked(handle):
                            to_settle.append(handle)
        for handle in to_settle:
            handle.on_done(handle)

    # ---------------------------------------------------------------- shutdown
    def shutdown(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool.

        ``drain=True`` waits (up to *timeout*) for in-flight jobs to settle
        before stopping; ``drain=False`` aborts running walks immediately.
        Always joins, then terminates stragglers — no leaked children.
        """
        with self._lock:
            if not self._started:
                return
            self._closing = True
            timers, self._timers = self._timers, []
            if not drain:
                for handle in list(self._jobs.values()):
                    handle.cancelled = True
                for event in self._cancel_events:
                    event.set()
        for timer in timers:
            # Jobs whose delayed requeue never lands are failed as orphans
            # below; cancelling keeps no timer thread alive past shutdown.
            timer.cancel()
        deadline = time.perf_counter() + timeout
        if drain:
            while time.perf_counter() < deadline:
                with self._lock:
                    if not self._jobs:
                        break
                time.sleep(0.05)
        self._shutdown_event.set()
        for _ in self._procs:
            try:
                self._job_queue.put_nowait(_SENTINEL)
            except Exception:  # pragma: no cover - full queue during teardown
                break
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.perf_counter()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=2.0)
        # Fail any job that never settled (drain timeout or hard abort).
        orphans: List[PoolJobHandle] = []
        with self._lock:
            for handle in list(self._jobs.values()):
                if self._settle_locked(handle):
                    handle.failure = handle.failure or "worker pool shut down"
                    orphans.append(handle)
        for handle in orphans:
            handle.on_done(handle)

    # ------------------------------------------------------------------- stats
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            inflight_by_lane: Dict[str, int] = {}
            for handle in self._jobs.values():
                lane = str(handle.spec.get("lane") or "default")
                inflight_by_lane[lane] = inflight_by_lane.get(lane, 0) + 1
            return {
                "n_workers": self.n_workers,
                "started": self._started,
                "alive_workers": sum(1 for p in self._procs if p.is_alive()),
                "inflight_jobs": len(self._jobs),
                "inflight_by_lane": inflight_by_lane,
                "jobs_done": self._jobs_done,
                "walks_run": self._walks_run,
                "walks_by_lane": dict(self._walks_by_lane),
                "workers_respawned": self._workers_respawned,
                "walks_requeued": self._walks_requeued,
                "hung_walks_terminated": self._hung_terminated,
            }
