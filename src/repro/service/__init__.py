"""Solver-as-a-service layer: store, scheduler, worker pool, facade, HTTP API.

The engine (:mod:`repro.core`) and the multi-walk driver
(:mod:`repro.parallel`) treat every solve as a one-shot batch job.  This
subpackage adds the serving layer the ROADMAP's "heavy traffic" north star
needs, composed of four pieces a request flows through:

1. :mod:`repro.service.store` — a SQLite-backed persistent solution store.
   Solutions are keyed by ``(problem_kind, n, canonical_form)`` with Costas
   arrays canonicalised through :mod:`repro.costas.symmetry`, so one stored
   array answers its entire rotation/reflection class; repeated and
   symmetry-equivalent requests are served in microseconds.
2. :mod:`repro.service.scheduler` — a priority request queue with
   *coalescing* (concurrent requests for the same instance share one
   in-flight solve), bounded depth with explicit backpressure, and
   cancellation.
3. :mod:`repro.service.workers` — a long-lived process worker pool: workers
   start once, pull jobs over queues, run the incremental Adaptive Search
   engine, and drain gracefully on shutdown.
4. :mod:`repro.service.api` — the :class:`~repro.service.api.SolverService`
   facade composing store -> algebraic-construction shortcut -> scheduler ->
   pool, exposed over stdlib HTTP by the asyncio front-end
   (:mod:`repro.service.http_async` — batch submit, SSE progress streaming,
   thousands of concurrent waiting clients) or the legacy threaded one
   (:mod:`repro.service.http`), and by the ``repro serve`` /
   ``repro request`` CLI commands.
"""

from repro.service.api import ProgressSubscription, ServiceConfig, SolverService
from repro.service.scheduler import RequestScheduler, SchedulerSaturatedError, Ticket
from repro.service.store import SolutionStore, StoreStats
from repro.service.workers import WorkerPool

__all__ = [
    "ProgressSubscription",
    "ServiceConfig",
    "SolverService",
    "RequestScheduler",
    "SchedulerSaturatedError",
    "Ticket",
    "SolutionStore",
    "StoreStats",
    "WorkerPool",
]
