"""Complete propagation-based solver for the Costas Array Problem.

Section IV-C of the paper reports that a constraint-programming model (the
Comet program derived from Barry O'Sullivan's MiniZinc model) is roughly 400
times slower than Adaptive Search on CAP 19 — CP is simply the wrong tool for
this problem at medium sizes.  To reproduce that comparison without the
closed-source Comet system, this module implements a self-contained complete
solver:

* variables are the columns, domains are the row values;
* search assigns columns left to right (static order) or by smallest domain
  (``dom`` heuristic);
* after every assignment, **forward checking** removes from future domains
  the values that would violate either the permutation (``alldifferent``)
  constraint or any difference-triangle ``alldifferent`` row with respect to
  the already-assigned columns;
* a dead end (empty domain) triggers chronological backtracking.

Node and failure counts are reported in :attr:`SolveResult.extra`, so the CP
comparison benchmark can report search effort as well as wall-clock time.

Although the search is complete rather than local, the solver speaks the same
strategy dialect as everything else in :mod:`repro.solvers`: ``solve`` accepts
either a raw order or a Costas :class:`~repro.core.problem.PermutationProblem`
(so the registry and the multi-walk/service layers can hand it the same
factories as the local-search strategies), and it honours ``stop_check``
(polled every ``check_period`` nodes) and ``max_time`` like every other
registered solver.  ``callbacks`` is accepted for signature uniformity; a
tree search has no per-iteration events to report, so it is ignored.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Iterator, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.problem import PermutationProblem
from repro.core.result import SolveResult
from repro.core.rng import SeedLike, ensure_generator
from repro.exceptions import SolverError

__all__ = ["CPParameters", "CPBacktrackingSolver"]


@dataclass(frozen=True)
class CPParameters:
    """Tuning knobs of :class:`CPBacktrackingSolver`."""

    #: Variable ordering: "lex" (left to right) or "dom" (smallest domain first).
    variable_order: str = "dom"
    #: Randomise value ordering (requires a seed for reproducibility).
    random_value_order: bool = False
    #: Abort after this many search nodes (``None`` = unlimited).
    max_nodes: Optional[int] = None
    #: Abort after this wall-clock budget in seconds (``None`` = unlimited).
    max_time: Optional[float] = None
    #: Search nodes between polls of the external ``stop_check``.
    check_period: int = 64

    def __post_init__(self) -> None:
        if self.variable_order not in ("lex", "dom"):
            raise ValueError("variable_order must be 'lex' or 'dom'")
        if self.max_nodes is not None and self.max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")
        if self.max_time is not None and self.max_time <= 0:
            raise ValueError("max_time must be positive")
        if self.check_period < 1:
            raise ValueError("check_period must be >= 1")


class CPBacktrackingSolver:
    """Backtracking + forward checking on the Costas difference constraints."""

    def __init__(self, params: Optional[CPParameters] = None) -> None:
        self.params = params if params is not None else CPParameters()

    # ------------------------------------------------------------------ public
    def solve(
        self,
        order: Union[int, PermutationProblem],
        seed: SeedLike = None,
        *,
        params: Optional[CPParameters] = None,
        stop_check: Optional[Callable[[], bool]] = None,
        callbacks: Optional[object] = None,
        max_time: Optional[float] = None,
    ) -> SolveResult:
        """Find one Costas array of the given *order* (or prove the budget ran out).

        *order* may also be a Costas :class:`PermutationProblem` instance (the
        uniform strategy interface); only its size is used — the CP model
        solves the pure Costas constraints, not an arbitrary cost function.
        ``max_time`` tightens (never widens) the parameter-level budget, and
        ``stop_check`` is polled every ``check_period`` search nodes.
        """
        del callbacks  # accepted for strategy-signature uniformity; no events
        if isinstance(order, PermutationProblem):
            from repro.models.costas import CostasProblem

            problem = order
            if not isinstance(problem, CostasProblem):
                raise SolverError(
                    "CPBacktrackingSolver only solves Costas instances, got "
                    f"{problem.describe()}"
                )
            order = problem.size
        p = params if params is not None else self.params
        if max_time is not None:
            effective = max_time if p.max_time is None else min(p.max_time, max_time)
            p = replace(p, max_time=effective)
        rng = ensure_generator(seed)
        seed_int = int(seed) if isinstance(seed, (int, np.integer)) else None

        start = time.perf_counter()
        state = _SearchState(order, p, rng, start, stop_check=stop_check)
        solution = state.search()
        elapsed = time.perf_counter() - start

        solved = solution is not None
        config = np.array(solution if solved else range(order), dtype=np.int64)
        return SolveResult(
            solved=solved,
            configuration=config,
            cost=0 if solved else order,
            iterations=state.nodes,
            local_minima=state.failures,
            wall_time=elapsed,
            seed=seed_int,
            stop_reason="solved" if solved else state.stop_reason,
            solver="cp-backtracking",
            problem=f"costas(n={order})",
            extra={
                "nodes": state.nodes,
                "failures": state.failures,
                "backtracks": state.backtracks,
                "propagations": state.propagations,
            },
        )

    def count_solutions(self, order: int, *, params: Optional[CPParameters] = None) -> int:
        """Count all Costas arrays of *order* with the same propagation machinery.

        Useful as an independent cross-check of
        :func:`repro.costas.enumeration.count_costas_arrays`.
        """
        p = params if params is not None else self.params
        # The exhaustive count visits every branch regardless of value
        # order, so the generator never influences the result — but it must
        # still be seeded: counting runs are bit-for-bit reproducible.
        state = _SearchState(order, p, ensure_generator(0), time.perf_counter())
        return state.count_all()


class _SearchState:
    """Mutable search state shared by the recursive exploration."""

    def __init__(
        self,
        order: int,
        params: CPParameters,
        rng: np.random.Generator,
        start_time: float,
        stop_check: Optional[Callable[[], bool]] = None,
    ) -> None:
        if order < 1:
            raise ValueError(f"order must be positive, got {order}")
        self.n = order
        self.params = params
        self.rng = rng
        self.start_time = start_time
        self.stop_check = stop_check
        # Next node count at which the external stop is polled (node 0 counts,
        # so a pre-set stop aborts before any search happens).
        self._next_poll = 0
        self.nodes = 0
        self.failures = 0
        self.backtracks = 0
        self.propagations = 0
        self.stop_reason = "exhausted"
        # domains[c] = set of values still possible for column c.
        self.domains: List[Set[int]] = [set(range(order)) for _ in range(order)]
        self.assignment: List[Optional[int]] = [None] * order
        # diff_used[d] = set of difference values already used at distance d.
        self.diff_used: List[Set[int]] = [set() for _ in range(order)]

    # ---------------------------------------------------------------- heuristics
    def _select_column(self) -> Optional[int]:
        unassigned = [c for c in range(self.n) if self.assignment[c] is None]
        if not unassigned:
            return None
        if self.params.variable_order == "lex":
            return unassigned[0]
        return min(unassigned, key=lambda c: (len(self.domains[c]), c))

    def _ordered_values(self, col: int) -> List[int]:
        values = sorted(self.domains[col])
        if self.params.random_value_order:
            self.rng.shuffle(values)
        return values

    def _budget_exceeded(self) -> bool:
        if self.stop_reason == "external_stop":  # sticky: unwind immediately
            return True
        if self.params.max_nodes is not None and self.nodes >= self.params.max_nodes:
            self.stop_reason = "max_iterations"
            return True
        if self.stop_check is not None and self.nodes >= self._next_poll:
            self._next_poll = self.nodes + self.params.check_period
            if self.stop_check():
                self.stop_reason = "external_stop"
                return True
        if (
            self.params.max_time is not None
            and time.perf_counter() - self.start_time >= self.params.max_time
        ):
            self.stop_reason = "max_time"
            return True
        return False

    # -------------------------------------------------------------- propagation
    def _assign(self, col: int, value: int) -> Optional[List[Tuple[int, int]]]:
        """Assign ``col = value`` with forward checking.

        Returns the list of (column, value) prunings performed, or ``None`` if
        a future domain was wiped out (the caller must then undo nothing: the
        prunings already applied are rolled back here).
        """
        self.assignment[col] = value
        removed: List[Tuple[int, int]] = []
        new_diffs: List[Tuple[int, int]] = []

        # Record the differences this assignment creates with earlier columns.
        for other in range(self.n):
            other_value = self.assignment[other]
            if other_value is None or other == col:
                continue
            d = abs(col - other)
            diff = value - other_value if col > other else other_value - value
            if diff in self.diff_used[d]:
                self._undo(col, removed, new_diffs)
                return None
            self.diff_used[d].add(diff)
            new_diffs.append((d, diff))

        # Forward-check future columns.
        for future in range(self.n):
            if self.assignment[future] is not None or future == col:
                continue
            domain = self.domains[future]
            to_remove = []
            d = abs(future - col)
            for candidate in domain:
                self.propagations += 1
                if candidate == value:
                    to_remove.append(candidate)
                    continue
                diff = candidate - value if future > col else value - candidate
                if diff in self.diff_used[d]:
                    to_remove.append(candidate)
            for candidate in to_remove:
                domain.discard(candidate)
                removed.append((future, candidate))
            if not domain:
                self._undo(col, removed, new_diffs)
                return None
        # Stash the created differences so _undo can find them later.
        self._pending_diffs = new_diffs
        return removed

    def _undo(
        self,
        col: int,
        removed: List[Tuple[int, int]],
        new_diffs: List[Tuple[int, int]],
    ) -> None:
        for future, candidate in removed:
            self.domains[future].add(candidate)
        for d, diff in new_diffs:
            self.diff_used[d].discard(diff)
        self.assignment[col] = None

    # -------------------------------------------------------------------- search
    def search(self) -> Optional[List[int]]:
        """Depth-first search for one solution."""
        for solution in self._solutions():
            return solution
        return None

    def count_all(self) -> int:
        return sum(1 for _ in self._solutions())

    def _solutions(self) -> Iterator[List[int]]:
        col = self._select_column()
        if col is None:
            yield [int(v) for v in self.assignment]  # type: ignore[arg-type]
            return
        if self._budget_exceeded():
            return
        for value in self._ordered_values(col):
            self.nodes += 1
            removed = self._assign(col, value)
            if removed is None:
                self.failures += 1
                continue
            diffs = self._pending_diffs
            yield from self._solutions()
            self.backtracks += 1
            self._undo(col, removed, diffs)
            if (
                self.stop_reason in ("max_iterations", "max_time", "external_stop")
                and self._budget_exceeded()
            ):
                return
