"""Plain tabu search over the swap ("quadratic") neighbourhood.

The paper mentions that Kadioglu & Sellmann's Dialectic Search was itself
compared against "a tabu search algorithm using the quadratic neighbourhood
implemented in Comet".  This module provides that style of baseline: at every
iteration the whole ``n(n-1)/2`` swap neighbourhood is scanned, the best
non-tabu move (or a tabu move satisfying the aspiration criterion) is applied,
and the reversed move is forbidden for ``tenure`` iterations.

It is intentionally unsophisticated — its role in the repository is to be the
"honest simple metaheuristic" yardstick in solver-comparison examples and
tests, not to compete with Adaptive Search.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.problem import PermutationProblem
from repro.core.result import SolveResult
from repro.core.rng import SeedLike, ensure_generator

__all__ = ["TabuSearchParameters", "TabuSearch"]


@dataclass(frozen=True)
class TabuSearchParameters:
    """Tuning knobs of :class:`TabuSearch`."""

    #: Iterations a reversed move stays forbidden (``None`` = ``n`` of the problem).
    tenure: Optional[int] = None
    #: Restart from a fresh random configuration after this many non-improving
    #: iterations (``None`` disables restarts).
    restart_after: Optional[int] = 2_000
    #: Total iteration budget.
    max_iterations: Optional[int] = 500_000
    target_cost: int = 0
    check_period: int = 16

    def __post_init__(self) -> None:
        if self.tenure is not None and self.tenure < 1:
            raise ValueError("tenure must be >= 1")
        if self.restart_after is not None and self.restart_after < 1:
            raise ValueError("restart_after must be >= 1")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.check_period < 1:
            raise ValueError("check_period must be >= 1")


class TabuSearch:
    """Best-improvement tabu search on the swap neighbourhood."""

    def __init__(self, params: Optional[TabuSearchParameters] = None) -> None:
        self.params = params if params is not None else TabuSearchParameters()

    def solve(
        self,
        problem: PermutationProblem,
        seed: SeedLike = None,
        *,
        params: Optional[TabuSearchParameters] = None,
        stop_check=None,
        max_time: Optional[float] = None,
    ) -> SolveResult:
        """Run tabu search on *problem* until solved or out of budget."""
        p = params if params is not None else self.params
        rng = ensure_generator(seed)
        seed_int = int(seed) if isinstance(seed, (int, np.integer)) else None
        n = problem.size
        tenure = p.tenure if p.tenure is not None else n

        start = time.perf_counter()
        problem.initialise(rng)
        cost = problem.cost()
        best_cost = cost
        best_config = problem.configuration()

        tabu: Dict[Tuple[int, int], int] = {}
        iterations = 0
        swaps = 0
        restarts = 0
        local_minima = 0
        stagnation = 0
        stop_reason = "solved"

        while cost > p.target_cost:
            if p.max_iterations is not None and iterations >= p.max_iterations:
                stop_reason = "max_iterations"
                break
            if iterations % p.check_period == 0:
                if stop_check is not None and stop_check():
                    stop_reason = "external_stop"
                    break
                if max_time is not None and time.perf_counter() - start >= max_time:
                    stop_reason = "max_time"
                    break
            iterations += 1

            # Scan the full swap neighbourhood.
            best_move = None
            best_move_cost = None
            for i in range(n - 1):
                deltas = problem.swap_deltas(i)
                for j in range(i + 1, n):
                    move_cost = cost + int(deltas[j])
                    is_tabu = tabu.get((i, j), 0) >= iterations
                    # Aspiration: a tabu move is allowed if it beats the best ever.
                    if is_tabu and move_cost >= best_cost:
                        continue
                    if best_move_cost is None or move_cost < best_move_cost:
                        best_move_cost = move_cost
                        best_move = (i, j)

            if best_move is None:
                # Every move tabu and none aspirational: clear the list.
                tabu.clear()
                local_minima += 1
                continue

            i, j = best_move
            if best_move_cost >= cost:
                local_minima += 1
                stagnation += 1
            else:
                stagnation = 0
            cost = problem.apply_swap(i, j)
            swaps += 1
            tabu[(i, j)] = iterations + tenure

            if cost < best_cost:
                best_cost = cost
                best_config = problem.configuration()

            if (
                p.restart_after is not None
                and stagnation >= p.restart_after
                and cost > p.target_cost
            ):
                restarts += 1
                stagnation = 0
                tabu.clear()
                problem.initialise(rng)
                cost = problem.cost()
                if cost < best_cost:
                    best_cost = cost
                    best_config = problem.configuration()

        solved = best_cost <= p.target_cost
        return SolveResult(
            solved=solved,
            configuration=best_config,
            cost=int(best_cost),
            iterations=iterations,
            local_minima=local_minima,
            restarts=restarts,
            swaps=swaps,
            wall_time=time.perf_counter() - start,
            seed=seed_int,
            stop_reason="solved" if solved else stop_reason,
            solver="tabu-search",
            problem=problem.describe(),
        )
