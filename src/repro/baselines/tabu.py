"""Plain tabu search over the swap ("quadratic") neighbourhood.

The paper mentions that Kadioglu & Sellmann's Dialectic Search was itself
compared against "a tabu search algorithm using the quadratic neighbourhood
implemented in Comet".  This module provides that style of baseline: at every
iteration the whole ``n(n-1)/2`` swap neighbourhood is scanned, the best
non-tabu move (or a tabu move satisfying the aspiration criterion) is applied,
and the reversed move is forbidden for ``tenure`` iterations.

It is intentionally unsophisticated — its role in the repository is to be the
"honest simple metaheuristic" yardstick in solver-comparison examples and
tests, not to compete with Adaptive Search.  Run control (budgets,
``stop_check``, ``max_time``, ``callbacks``) comes from the shared
:class:`~repro.core.strategy.StrategyRun` harness, so the solver is a
first-class citizen of the :mod:`repro.solvers` registry: it can be
multi-walked, served and cancelled exactly like the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.callbacks import IterationCallback
from repro.core.problem import PermutationProblem
from repro.core.result import SolveResult
from repro.core.rng import SeedLike, ensure_generator
from repro.core.strategy import StrategyRun

__all__ = ["TabuSearchParameters", "TabuSearch"]


@dataclass(frozen=True)
class TabuSearchParameters:
    """Tuning knobs of :class:`TabuSearch`."""

    #: Iterations a reversed move stays forbidden (``None`` = ``n`` of the problem).
    tenure: Optional[int] = None
    #: Restart from a fresh random configuration after this many non-improving
    #: iterations (``None`` disables restarts).
    restart_after: Optional[int] = 2_000
    #: Total iteration budget.
    max_iterations: Optional[int] = 500_000
    target_cost: int = 0
    check_period: int = 16

    def __post_init__(self) -> None:
        if self.tenure is not None and self.tenure < 1:
            raise ValueError("tenure must be >= 1")
        if self.restart_after is not None and self.restart_after < 1:
            raise ValueError("restart_after must be >= 1")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.check_period < 1:
            raise ValueError("check_period must be >= 1")


class TabuSearch:
    """Best-improvement tabu search on the swap neighbourhood."""

    def __init__(self, params: Optional[TabuSearchParameters] = None) -> None:
        self.params = params if params is not None else TabuSearchParameters()

    def solve(
        self,
        problem: PermutationProblem,
        seed: SeedLike = None,
        *,
        params: Optional[TabuSearchParameters] = None,
        stop_check: Optional[Callable[[], bool]] = None,
        callbacks: Optional[IterationCallback] = None,
        max_time: Optional[float] = None,
    ) -> SolveResult:
        """Run tabu search on *problem* until solved, stopped or out of budget."""
        p = params if params is not None else self.params
        rng = ensure_generator(seed)
        n = problem.size
        tenure = p.tenure if p.tenure is not None else n

        run = StrategyRun(
            problem,
            "tabu-search",
            seed,
            target_cost=p.target_cost,
            max_iterations=p.max_iterations,
            check_period=p.check_period,
            stop_check=stop_check,
            max_time=max_time,
            callbacks=callbacks,
        )
        problem.initialise(rng)
        cost = problem.cost()
        run.track_best(cost)

        tabu: Dict[Tuple[int, int], int] = {}
        stagnation = 0

        while run.running(cost):
            iterations = run.iteration

            # Scan the full swap neighbourhood.
            best_move = None
            best_move_cost = None
            for i in range(n - 1):
                deltas = problem.swap_deltas(i)
                for j in range(i + 1, n):
                    move_cost = cost + int(deltas[j])
                    is_tabu = tabu.get((i, j), 0) >= iterations
                    # Aspiration: a tabu move is allowed if it beats the best ever.
                    if is_tabu and move_cost >= run.best_cost:
                        continue
                    if best_move_cost is None or move_cost < best_move_cost:
                        best_move_cost = move_cost
                        best_move = (i, j)

            if best_move is None:
                # Every move tabu and none aspirational: clear the list.
                tabu.clear()
                run.local_minima += 1
                run.event("local_minimum", cost)
                continue

            i, j = best_move
            if best_move_cost >= cost:
                run.local_minima += 1
                stagnation += 1
                run.event("local_minimum", cost)
            else:
                stagnation = 0
            cost = problem.apply_swap(i, j)
            run.swaps += 1
            tabu[(i, j)] = iterations + tenure
            run.track_best(cost)

            if (
                p.restart_after is not None
                and stagnation >= p.restart_after
                and cost > p.target_cost
            ):
                run.restarts += 1
                stagnation = 0
                tabu.clear()
                problem.initialise(rng)
                cost = problem.cost()
                run.track_best(cost)
                run.event("restart", cost)
            run.iteration_done(cost)

        return run.finish()
