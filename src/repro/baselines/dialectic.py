"""Dialectic Search baseline (Kadioglu & Sellmann, CP 2009).

Table II of the paper compares Adaptive Search against Dialectic Search (DS)
on the Costas Array Problem.  The original DS implementation is not publicly
available, so this module re-implements the method from its published
description, specialised (like the original experiments) to permutation
problems with a swap neighbourhood:

1. **Thesis** — greedily improve a random configuration to a local minimum.
2. **Antithesis** — perturb the thesis by a sequence of random swaps.
3. **Synthesis** — walk from the thesis towards the antithesis: repeatedly
   apply the *assimilating* swap (one that makes the current configuration
   agree with the antithesis on one more position) of minimum cost, and
   remember the best configuration seen along the path.
4. Greedily improve the best point of the path.  If it improves on the
   thesis, it becomes the new thesis; otherwise the antithesis is counted as
   a failure.  After ``max_no_improvement`` consecutive failures the search
   restarts from a fresh random configuration.

The solver works on any :class:`repro.core.problem.PermutationProblem`, so the
Table II benchmark runs AS and DS on the *same* cost model and hardware —
which is what makes the measured time ratio meaningful.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.params import ASParameters
from repro.core.problem import PermutationProblem
from repro.core.result import SolveResult
from repro.core.rng import SeedLike, ensure_generator

__all__ = ["DialecticSearchParameters", "DialecticSearch"]


@dataclass(frozen=True)
class DialecticSearchParameters:
    """Tuning knobs of :class:`DialecticSearch`.

    ``perturbation_strength`` is the number of random swaps applied to produce
    the antithesis (scaled by problem size when ``None``); ``max_no_improvement``
    is the number of consecutive unsuccessful dialectic steps tolerated before
    a restart; ``max_iterations`` bounds the total number of dialectic steps.
    """

    perturbation_strength: Optional[int] = None
    max_no_improvement: int = 20
    max_iterations: Optional[int] = 1_000_000
    target_cost: int = 0
    check_period: int = 16

    def __post_init__(self) -> None:
        if self.perturbation_strength is not None and self.perturbation_strength < 1:
            raise ValueError("perturbation_strength must be >= 1")
        if self.max_no_improvement < 1:
            raise ValueError("max_no_improvement must be >= 1")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.check_period < 1:
            raise ValueError("check_period must be >= 1")


class DialecticSearch:
    """Dialectic Search over the swap neighbourhood of a permutation problem."""

    def __init__(self, params: Optional[DialecticSearchParameters] = None) -> None:
        self.params = params if params is not None else DialecticSearchParameters()

    # ------------------------------------------------------------------ public
    def solve(
        self,
        problem: PermutationProblem,
        seed: SeedLike = None,
        *,
        params: Optional[DialecticSearchParameters] = None,
        stop_check=None,
        max_time: Optional[float] = None,
    ) -> SolveResult:
        """Run Dialectic Search on *problem* until solved or out of budget."""
        p = params if params is not None else self.params
        rng = ensure_generator(seed)
        seed_int = int(seed) if isinstance(seed, (int, np.integer)) else None
        n = problem.size
        strength = p.perturbation_strength or max(2, n // 3)

        start = time.perf_counter()
        iterations = 0
        greedy_steps = 0
        restarts = 0
        local_minima = 0
        stop_reason = "solved"

        problem.initialise(rng)
        greedy_steps += self._greedy(problem)
        thesis = problem.configuration()
        thesis_cost = problem.cost()
        best_config = thesis.copy()
        best_cost = thesis_cost
        no_improvement = 0

        while best_cost > p.target_cost:
            if p.max_iterations is not None and iterations >= p.max_iterations:
                stop_reason = "max_iterations"
                break
            if iterations % p.check_period == 0:
                if stop_check is not None and stop_check():
                    stop_reason = "external_stop"
                    break
                if max_time is not None and time.perf_counter() - start >= max_time:
                    stop_reason = "max_time"
                    break
            iterations += 1

            # ----------------------------------------------------------- antithesis
            antithesis = thesis.copy()
            for _ in range(strength):
                a, b = rng.integers(n), rng.integers(n)
                antithesis[a], antithesis[b] = antithesis[b], antithesis[a]

            # ------------------------------------------------------------ synthesis
            problem.set_configuration(thesis)
            path_best = thesis.copy()
            path_best_cost = thesis_cost
            current = thesis.copy()
            # Walk towards the antithesis one assimilating swap at a time.
            while True:
                mismatches = np.flatnonzero(current != antithesis)
                if mismatches.size == 0:
                    break
                best_move = None
                best_move_cost = None
                for i in mismatches:
                    target_value = antithesis[i]
                    j = int(np.flatnonzero(current == target_value)[0])
                    delta = problem.swap_delta(int(i), j)
                    cand_cost = problem.cost() + delta
                    if best_move_cost is None or cand_cost < best_move_cost:
                        best_move_cost = cand_cost
                        best_move = (int(i), j)
                i, j = best_move
                problem.apply_swap(i, j)
                current = problem.configuration()
                if best_move_cost < path_best_cost:
                    path_best_cost = best_move_cost
                    path_best = current.copy()

            # ------------------------------------------------- exploit the best point
            problem.set_configuration(path_best)
            greedy_steps += self._greedy(problem)
            candidate_cost = problem.cost()

            if candidate_cost < thesis_cost:
                thesis = problem.configuration()
                thesis_cost = candidate_cost
                no_improvement = 0
            else:
                no_improvement += 1
                local_minima += 1

            if thesis_cost < best_cost:
                best_cost = thesis_cost
                best_config = thesis.copy()

            if best_cost <= p.target_cost:
                break

            # -------------------------------------------------------------- restart
            if no_improvement >= p.max_no_improvement:
                restarts += 1
                problem.initialise(rng)
                greedy_steps += self._greedy(problem)
                thesis = problem.configuration()
                thesis_cost = problem.cost()
                no_improvement = 0
                if thesis_cost < best_cost:
                    best_cost = thesis_cost
                    best_config = thesis.copy()

        solved = best_cost <= p.target_cost
        return SolveResult(
            solved=solved,
            configuration=best_config,
            cost=int(best_cost),
            iterations=iterations,
            local_minima=local_minima,
            restarts=restarts,
            swaps=greedy_steps,
            wall_time=time.perf_counter() - start,
            seed=seed_int,
            stop_reason="solved" if solved else stop_reason,
            solver="dialectic-search",
            problem=problem.describe(),
            extra={"greedy_steps": greedy_steps},
        )

    # --------------------------------------------------------------- internals
    @staticmethod
    def _greedy(problem: PermutationProblem) -> int:
        """Best-improvement descent to a local minimum; returns the number of swaps."""
        n = problem.size
        steps = 0
        while True:
            best_delta = 0
            best_move = None
            for i in range(n):
                deltas = problem.swap_deltas(i)
                j = int(np.argmin(deltas[: n]))
                delta = int(deltas[j])
                if delta < best_delta:
                    best_delta = delta
                    best_move = (i, j)
            if best_move is None:
                return steps
            problem.apply_swap(*best_move)
            steps += 1
