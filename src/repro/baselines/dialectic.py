"""Dialectic Search baseline (Kadioglu & Sellmann, CP 2009).

Table II of the paper compares Adaptive Search against Dialectic Search (DS)
on the Costas Array Problem.  The original DS implementation is not publicly
available, so this module re-implements the method from its published
description, specialised (like the original experiments) to permutation
problems with a swap neighbourhood:

1. **Thesis** — greedily improve a random configuration to a local minimum.
2. **Antithesis** — perturb the thesis by a sequence of random swaps.
3. **Synthesis** — walk from the thesis towards the antithesis: repeatedly
   apply the *assimilating* swap (one that makes the current configuration
   agree with the antithesis on one more position) of minimum cost, and
   remember the best configuration seen along the path.
4. Greedily improve the best point of the path.  If it improves on the
   thesis, it becomes the new thesis; otherwise the antithesis is counted as
   a failure.  After ``max_no_improvement`` consecutive failures the search
   restarts from a fresh random configuration.

The solver works on any :class:`repro.core.problem.PermutationProblem`, so the
Table II benchmark runs AS and DS on the *same* cost model and hardware —
which is what makes the measured time ratio meaningful.  The running cost is
carried through ``apply_swap`` return values (like the engine does) instead of
re-reading ``problem.cost()`` inside the candidate loops, and run control
comes from the shared :class:`~repro.core.strategy.StrategyRun` harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.callbacks import IterationCallback
from repro.core.problem import PermutationProblem
from repro.core.result import SolveResult
from repro.core.rng import SeedLike, ensure_generator
from repro.core.strategy import StrategyRun

__all__ = ["DialecticSearchParameters", "DialecticSearch"]


@dataclass(frozen=True)
class DialecticSearchParameters:
    """Tuning knobs of :class:`DialecticSearch`.

    ``perturbation_strength`` is the number of random swaps applied to produce
    the antithesis (scaled by problem size when ``None``); ``max_no_improvement``
    is the number of consecutive unsuccessful dialectic steps tolerated before
    a restart; ``max_iterations`` bounds the total number of dialectic steps.
    """

    perturbation_strength: Optional[int] = None
    max_no_improvement: int = 20
    max_iterations: Optional[int] = 1_000_000
    target_cost: int = 0
    check_period: int = 16

    def __post_init__(self) -> None:
        if self.perturbation_strength is not None and self.perturbation_strength < 1:
            raise ValueError("perturbation_strength must be >= 1")
        if self.max_no_improvement < 1:
            raise ValueError("max_no_improvement must be >= 1")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.check_period < 1:
            raise ValueError("check_period must be >= 1")


class DialecticSearch:
    """Dialectic Search over the swap neighbourhood of a permutation problem."""

    def __init__(self, params: Optional[DialecticSearchParameters] = None) -> None:
        self.params = params if params is not None else DialecticSearchParameters()

    # ------------------------------------------------------------------ public
    def solve(
        self,
        problem: PermutationProblem,
        seed: SeedLike = None,
        *,
        params: Optional[DialecticSearchParameters] = None,
        stop_check: Optional[Callable[[], bool]] = None,
        callbacks: Optional[IterationCallback] = None,
        max_time: Optional[float] = None,
    ) -> SolveResult:
        """Run Dialectic Search on *problem* until solved, stopped or out of budget."""
        p = params if params is not None else self.params
        rng = ensure_generator(seed)
        n = problem.size
        strength = p.perturbation_strength or max(2, n // 3)

        run = StrategyRun(
            problem,
            "dialectic-search",
            seed,
            target_cost=p.target_cost,
            max_iterations=p.max_iterations,
            check_period=p.check_period,
            stop_check=stop_check,
            max_time=max_time,
            callbacks=callbacks,
        )
        greedy_steps = 0

        problem.initialise(rng)
        steps, thesis_cost = self._greedy(problem)
        greedy_steps += steps
        thesis = problem.configuration()
        run.record_best(thesis_cost, thesis)
        no_improvement = 0

        while run.running(run.best_cost):
            # ----------------------------------------------------------- antithesis
            antithesis = thesis.copy()
            for _ in range(strength):
                a, b = rng.integers(n), rng.integers(n)
                antithesis[a], antithesis[b] = antithesis[b], antithesis[a]

            # ------------------------------------------------------------ synthesis
            problem.set_configuration(thesis)
            current_cost = thesis_cost
            path_best = thesis.copy()
            path_best_cost = thesis_cost
            current = thesis.copy()
            # Walk towards the antithesis one assimilating swap at a time; the
            # running cost is carried through the apply_swap returns, so the
            # candidate loop costs one swap_delta per mismatch and no cost()
            # re-reads.
            while True:
                mismatches = np.flatnonzero(current != antithesis)
                if mismatches.size == 0:
                    break
                best_move = None
                best_move_cost = None
                for i in mismatches:
                    target_value = antithesis[i]
                    j = int(np.flatnonzero(current == target_value)[0])
                    delta = problem.swap_delta(int(i), j)
                    cand_cost = current_cost + delta
                    if best_move_cost is None or cand_cost < best_move_cost:
                        best_move_cost = cand_cost
                        best_move = (int(i), j)
                i, j = best_move
                current_cost = problem.apply_swap(i, j)
                current = problem.configuration()
                if best_move_cost < path_best_cost:
                    path_best_cost = best_move_cost
                    path_best = current.copy()

            # ------------------------------------------------- exploit the best point
            problem.set_configuration(path_best)
            steps, candidate_cost = self._greedy(problem, path_best_cost)
            greedy_steps += steps

            if candidate_cost < thesis_cost:
                thesis = problem.configuration()
                thesis_cost = candidate_cost
                no_improvement = 0
                run.event("improving_move", thesis_cost)
            else:
                no_improvement += 1
                run.local_minima += 1
                run.event("local_minimum", thesis_cost)

            run.record_best(thesis_cost, thesis)
            run.iteration_done(thesis_cost)

            if run.best_cost <= p.target_cost:
                break

            # -------------------------------------------------------------- restart
            if no_improvement >= p.max_no_improvement:
                run.restarts += 1
                problem.initialise(rng)
                steps, thesis_cost = self._greedy(problem)
                greedy_steps += steps
                thesis = problem.configuration()
                no_improvement = 0
                run.record_best(thesis_cost, thesis)
                run.event("restart", thesis_cost)

        run.swaps = greedy_steps
        return run.finish(extra={"greedy_steps": greedy_steps})

    # --------------------------------------------------------------- internals
    @staticmethod
    def _greedy(
        problem: PermutationProblem, cost: Optional[int] = None
    ) -> Tuple[int, int]:
        """Best-improvement descent to a local minimum.

        Returns ``(swaps_applied, final_cost)``; *cost* is the (known) cost of
        the problem's current configuration, read once from the model when the
        caller does not have it at hand.
        """
        n = problem.size
        steps = 0
        if cost is None:
            cost = problem.cost()
        while True:
            best_delta = 0
            best_move = None
            for i in range(n):
                deltas = problem.swap_deltas(i)
                j = int(np.argmin(deltas[:n]))
                delta = int(deltas[j])
                if delta < best_delta:
                    best_delta = delta
                    best_move = (i, j)
            if best_move is None:
                return steps, cost
            cost = problem.apply_swap(*best_move)
            steps += 1
