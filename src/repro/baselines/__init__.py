"""Baseline solvers the paper compares Adaptive Search against.

* :class:`~repro.baselines.dialectic.DialecticSearch` — the metaheuristic of
  Kadioglu & Sellmann (CP'09) used in Table II; reimplemented from its
  published description (thesis / antithesis / synthesis with greedy
  improvement).
* :class:`~repro.baselines.tabu.TabuSearch` — a plain best-improvement tabu
  search over the swap neighbourhood, the "quadratic neighbourhood" style
  comparator mentioned alongside Comet.
* :class:`~repro.baselines.random_restart.RandomRestartHillClimbing` — a
  simple restart-based stochastic search in the spirit of Rickard & Healy's
  study (whose weak restart policy the paper criticises); useful as a
  lower-bound baseline.
* :class:`~repro.baselines.cp_solver.CPBacktrackingSolver` — a complete,
  propagation-based solver (backtracking + forward checking on the difference
  triangle), standing in for the Comet/MiniZinc CP model that the paper
  reports to be ~400x slower than AS on CAP 19.

All of them speak the :class:`repro.core.strategy.SearchStrategy` dialect —
``solve(problem, seed, *, params, stop_check, callbacks, max_time)`` returning
a :class:`repro.core.result.SolveResult` (the CP solver also accepts a raw
order, since it works directly on the Costas structure) — and are registered
in :mod:`repro.solvers`, so every layer from the experiments to the HTTP
service treats them uniformly: any baseline can be multi-walked, raced in a
portfolio, served, cancelled and time-limited exactly like the engine.
"""

from repro.baselines.dialectic import DialecticSearch
from repro.baselines.tabu import TabuSearch
from repro.baselines.random_restart import RandomRestartHillClimbing
from repro.baselines.cp_solver import CPBacktrackingSolver

__all__ = [
    "DialecticSearch",
    "TabuSearch",
    "RandomRestartHillClimbing",
    "CPBacktrackingSolver",
]
