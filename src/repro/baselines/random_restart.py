"""Random-restart hill climbing, in the spirit of Rickard & Healy (2006).

Section II of the paper discusses Rickard & Healy's negative result on
stochastic search for Costas arrays and attributes it to "a restart policy
which is too simple".  This baseline deliberately implements that simple
policy — best-improvement hill climbing restarted from scratch whenever it
gets stuck — so that the repository can demonstrate the gap between a naive
stochastic search and Adaptive Search's adaptive tabu/reset machinery on the
same cost model.

Run control (budgets, ``stop_check``, ``max_time``, ``callbacks``) comes from
the shared :class:`~repro.core.strategy.StrategyRun` harness, making the hill
climber registry-addressable, multi-walkable and cancellable like every other
strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.callbacks import IterationCallback
from repro.core.problem import PermutationProblem
from repro.core.result import SolveResult
from repro.core.rng import SeedLike, ensure_generator
from repro.core.strategy import StrategyRun

__all__ = ["RandomRestartParameters", "RandomRestartHillClimbing"]


@dataclass(frozen=True)
class RandomRestartParameters:
    """Tuning knobs of :class:`RandomRestartHillClimbing`."""

    #: Allow equal-cost ("sideways") moves for at most this many consecutive steps.
    max_sideways: int = 10
    #: Total number of hill-climbing steps allowed across all restarts.
    max_steps: Optional[int] = 500_000
    target_cost: int = 0
    check_period: int = 64

    def __post_init__(self) -> None:
        if self.max_sideways < 0:
            raise ValueError("max_sideways must be >= 0")
        if self.max_steps is not None and self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if self.check_period < 1:
            raise ValueError("check_period must be >= 1")


class RandomRestartHillClimbing:
    """Best-improvement hill climbing with restarts at every local minimum."""

    def __init__(self, params: Optional[RandomRestartParameters] = None) -> None:
        self.params = params if params is not None else RandomRestartParameters()

    def solve(
        self,
        problem: PermutationProblem,
        seed: SeedLike = None,
        *,
        params: Optional[RandomRestartParameters] = None,
        stop_check: Optional[Callable[[], bool]] = None,
        callbacks: Optional[IterationCallback] = None,
        max_time: Optional[float] = None,
    ) -> SolveResult:
        """Run the hill climber on *problem* until solved, stopped or out of budget."""
        p = params if params is not None else self.params
        rng = ensure_generator(seed)
        n = problem.size

        run = StrategyRun(
            problem,
            "random-restart-hill-climbing",
            seed,
            target_cost=p.target_cost,
            max_iterations=p.max_steps,
            check_period=p.check_period,
            stop_check=stop_check,
            max_time=max_time,
            callbacks=callbacks,
        )
        problem.initialise(rng)
        cost = problem.cost()
        run.track_best(cost)

        sideways = 0

        while run.running(cost):
            # Best move over the full swap neighbourhood.
            best_delta = None
            best_move = None
            for i in range(n - 1):
                deltas = problem.swap_deltas(i)
                j = i + 1 + int(np.argmin(deltas[i + 1 :]))
                delta = int(deltas[j])
                if best_delta is None or delta < best_delta:
                    best_delta = delta
                    best_move = (i, j)

            take_move = False
            if best_delta is not None and best_delta < 0:
                take_move = True
                sideways = 0
            elif best_delta == 0 and sideways < p.max_sideways:
                take_move = True
                sideways += 1

            if take_move:
                cost = problem.apply_swap(*best_move)
                run.swaps += 1
                run.track_best(cost)
                run.event("improving_move" if best_delta < 0 else "plateau_move", cost)
                if best_delta == 0:
                    run.plateau_moves += 1
            else:
                # Stuck: restart from scratch (the "too simple" policy).
                run.local_minima += 1
                run.restarts += 1
                sideways = 0
                run.event("local_minimum", cost)
                problem.initialise(rng)
                cost = problem.cost()
                run.track_best(cost)
                run.event("restart", cost)
            run.iteration_done(cost)

        return run.finish()
