"""Random-restart hill climbing, in the spirit of Rickard & Healy (2006).

Section II of the paper discusses Rickard & Healy's negative result on
stochastic search for Costas arrays and attributes it to "a restart policy
which is too simple".  This baseline deliberately implements that simple
policy — best-improvement hill climbing restarted from scratch whenever it
gets stuck — so that the repository can demonstrate the gap between a naive
stochastic search and Adaptive Search's adaptive tabu/reset machinery on the
same cost model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.problem import PermutationProblem
from repro.core.result import SolveResult
from repro.core.rng import SeedLike, ensure_generator

__all__ = ["RandomRestartParameters", "RandomRestartHillClimbing"]


@dataclass(frozen=True)
class RandomRestartParameters:
    """Tuning knobs of :class:`RandomRestartHillClimbing`."""

    #: Allow equal-cost ("sideways") moves for at most this many consecutive steps.
    max_sideways: int = 10
    #: Total number of hill-climbing steps allowed across all restarts.
    max_steps: Optional[int] = 500_000
    target_cost: int = 0
    check_period: int = 64

    def __post_init__(self) -> None:
        if self.max_sideways < 0:
            raise ValueError("max_sideways must be >= 0")
        if self.max_steps is not None and self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if self.check_period < 1:
            raise ValueError("check_period must be >= 1")


class RandomRestartHillClimbing:
    """Best-improvement hill climbing with restarts at every local minimum."""

    def __init__(self, params: Optional[RandomRestartParameters] = None) -> None:
        self.params = params if params is not None else RandomRestartParameters()

    def solve(
        self,
        problem: PermutationProblem,
        seed: SeedLike = None,
        *,
        params: Optional[RandomRestartParameters] = None,
        stop_check=None,
        max_time: Optional[float] = None,
    ) -> SolveResult:
        """Run the hill climber on *problem* until solved or out of budget."""
        p = params if params is not None else self.params
        rng = ensure_generator(seed)
        seed_int = int(seed) if isinstance(seed, (int, np.integer)) else None
        n = problem.size

        start = time.perf_counter()
        problem.initialise(rng)
        cost = problem.cost()
        best_cost = cost
        best_config = problem.configuration()

        steps = 0
        restarts = 0
        local_minima = 0
        sideways = 0
        stop_reason = "solved"

        while cost > p.target_cost:
            if p.max_steps is not None and steps >= p.max_steps:
                stop_reason = "max_iterations"
                break
            if steps % p.check_period == 0:
                if stop_check is not None and stop_check():
                    stop_reason = "external_stop"
                    break
                if max_time is not None and time.perf_counter() - start >= max_time:
                    stop_reason = "max_time"
                    break
            steps += 1

            # Best move over the full swap neighbourhood.
            best_delta = None
            best_move = None
            for i in range(n - 1):
                deltas = problem.swap_deltas(i)
                j = i + 1 + int(np.argmin(deltas[i + 1 :]))
                delta = int(deltas[j])
                if best_delta is None or delta < best_delta:
                    best_delta = delta
                    best_move = (i, j)

            take_move = False
            if best_delta is not None and best_delta < 0:
                take_move = True
                sideways = 0
            elif best_delta == 0 and sideways < p.max_sideways:
                take_move = True
                sideways += 1

            if take_move:
                cost = problem.apply_swap(*best_move)
                if cost < best_cost:
                    best_cost = cost
                    best_config = problem.configuration()
            else:
                # Stuck: restart from scratch (the "too simple" policy).
                local_minima += 1
                restarts += 1
                sideways = 0
                problem.initialise(rng)
                cost = problem.cost()
                if cost < best_cost:
                    best_cost = cost
                    best_config = problem.configuration()

        solved = best_cost <= p.target_cost
        return SolveResult(
            solved=solved,
            configuration=best_config,
            cost=int(best_cost),
            iterations=steps,
            local_minima=local_minima,
            restarts=restarts,
            swaps=steps,
            wall_time=time.perf_counter() - start,
            seed=seed_int,
            stop_reason="solved" if solved else stop_reason,
            solver="random-restart-hill-climbing",
            problem=problem.describe(),
        )
