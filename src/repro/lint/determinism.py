"""Determinism lint: every entropy source must be a seeded generator.

Rule ``unseeded-random``.  The paper's results are reproducible because each
RNG draw is accounted for: all entropy flows through ``core/rng.py``
(``ensure_generator`` / ``spawn_generators`` / ``derive_seed`` over NumPy
``SeedSequence`` streams).  Under ``core/``, ``models/``, ``baselines/`` and
``parallel/`` this checker therefore forbids:

* ``random.*`` module functions (hidden process-global state) and unseeded
  ``random.Random()`` / any ``random.SystemRandom()``;
* NumPy legacy global state (``np.random.seed`` / ``np.random.rand`` / ...)
  and ``np.random.RandomState``;
* unseeded stream constructors: ``default_rng()`` / ``default_rng(None)``,
  ``SeedSequence()`` / ``SeedSequence(None)``, ``ensure_generator(None)`` —
  each of these pulls fresh OS entropy;
* ``time.time()`` — wall-clock values leak into seeds and run records; use
  ``time.perf_counter`` for durations and ``derive_seed`` for seeds.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from .findings import Finding

__all__ = ["check_source"]

#: ``np.random.X`` legacy attrs that are allowed (object/stream types that
#: take an explicit seed; unseeded *calls* are caught separately).
_NP_RANDOM_OK = {"Generator", "SeedSequence", "default_rng", "BitGenerator",
                 "PCG64", "Philox", "SFC64", "MT19937"}

#: Constructors where a missing / literal-``None`` seed argument means
#: "fresh OS entropy".
_SEEDED_CONSTRUCTORS = {"default_rng", "SeedSequence", "ensure_generator",
                        "Random"}


def _attr_chain(node: ast.expr) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _first_seed_is_missing_or_none(call: ast.Call) -> bool:
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for kw in call.keywords:
        if kw.arg in ("seed", "entropy", "x"):
            return isinstance(kw.value, ast.Constant) and kw.value.value is None
    return True


class _Walk(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(self.path, getattr(node, "lineno", 0), "unseeded-random", message)
        )

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain:
            self._check_chain(node, chain)
        self.generic_visit(node)

    def _check_chain(self, node: ast.Call, chain: List[str]) -> None:
        # random.<fn>(...) — module-global state or OS entropy.
        if len(chain) == 2 and chain[0] == "random":
            fn = chain[1]
            if fn == "Random":
                if _first_seed_is_missing_or_none(node):
                    self._flag(
                        node,
                        "random.Random() without an explicit seed draws OS "
                        "entropy; derive the seed via core.rng",
                    )
            elif fn == "SystemRandom":
                self._flag(
                    node,
                    "random.SystemRandom() is nondeterministic by design; "
                    "use a seeded generator from core.rng",
                )
            else:
                self._flag(
                    node,
                    f"random.{fn}() uses the process-global random state; "
                    "use a seeded generator from core.rng",
                )
            return
        # np.random.<fn>(...) / numpy.random.<fn>(...)
        if len(chain) == 3 and chain[0] in ("np", "numpy") and chain[1] == "random":
            fn = chain[2]
            if fn == "RandomState":
                self._flag(
                    node,
                    "np.random.RandomState is legacy global-state API; use "
                    "np.random.default_rng with an explicit seed",
                )
                return
            if fn not in _NP_RANDOM_OK:
                self._flag(
                    node,
                    f"np.random.{fn}() uses NumPy's legacy global state; "
                    "use a seeded Generator from core.rng",
                )
                return
            # fall through: seeded-constructor check below
        # time.time() — wall-clock entropy.
        if chain == ["time", "time"]:
            self._flag(
                node,
                "time.time() leaks wall-clock into seeds/records; use "
                "time.perf_counter for durations, core.rng.derive_seed for seeds",
            )
            return
        # Unseeded stream constructors, however they are spelled.
        tail = chain[-1]
        if tail in _SEEDED_CONSTRUCTORS and _first_seed_is_missing_or_none(node):
            # Bare Random() (no module) is too ambiguous to flag; require
            # the random.Random spelling handled above.
            if tail == "Random" and len(chain) == 1:
                return
            self._flag(
                node,
                f"{'.'.join(chain)}({'None' if node.args else ''}) creates an "
                "unseeded generator (fresh OS entropy); pass an explicit "
                "seed derived via core.rng",
            )


def check_source(source: str, path: str) -> List[Finding]:
    """Run the determinism lint over one module's source."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path, exc.lineno or 0, "unseeded-random", f"unparseable: {exc.msg}"
            )
        ]
    walk = _Walk(path)
    walk.visit(tree)
    return sorted(walk.findings, key=lambda f: (f.line, f.message))
