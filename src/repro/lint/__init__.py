"""Project-invariant static analysis (``repro lint``).

Five AST/text checkers machine-check the invariants the codebase otherwise
enforces only by convention: lock ordering and blocking-while-locked in the
service layer, seeded-determinism in the solver core, async-safety in the
asyncio front-end, C-kernel/ctypes/Python-mirror agreement, and the HTTP
retry contract.  See :mod:`repro.lint.runner` for the driver and
:data:`repro.lint.runner.RULES` for the rule registry.
"""

from .findings import Finding, apply_suppressions
from .runner import RULES, LintResult, repo_root, run

__all__ = [
    "Finding",
    "LintResult",
    "RULES",
    "apply_suppressions",
    "repo_root",
    "run",
]
