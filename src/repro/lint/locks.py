"""Lock-order and blocking-while-locked analysis for the service layer.

Rules
-----
``lock-order``
    The static lock-acquisition graph of a class contains a cycle: two code
    paths take the same pair of locks in opposite orders, which is the
    classic deadlock shape.
``lock-blocking``
    A blocking operation runs while a lock is held, stalling every other
    thread that needs the lock: SQLite commits, ``queue.get``,
    ``future.result``, sleeps, thread/process joins, process spawns,
    ``Event.wait`` on foreign events, and ``yield`` inside a ``with lock:``
    block (the caller's arbitrary code then runs under the lock).

Scope and method
----------------
Per class: discover lock attributes (``self.x = threading.Lock()`` /
``RLock`` / ``Condition`` / ``Semaphore``), canonicalising aliases —
``threading.Condition(self._lock)`` *is* ``self._lock``.  Walk each method
with a stack of held locks driven by ``with self.<lock>:`` blocks.
Blocking calls are recognised both directly and through self-method calls
(``self._spawn()`` under a lock is charged with the ``proc.start()`` inside
``_spawn``), propagated to a fixpoint.  Lambdas and nested ``def``s execute
later, outside the lock, so they are walked with an empty stack.

A ``@contextmanager`` helper that yields under a lock is reported once, at
the ``yield`` (the caller's with-block body runs under the lock); the lock
is deliberately *not* propagated into callers, because a branch-dependent
lock (the :memory:-store shape) would otherwise flag every file-backed call
site too.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .findings import Finding

__all__ = ["check_source"]

_LOCK_FACTORIES = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
}

#: Receiver-name fragments that mark ``.start()`` as a process spawn (a
#: bare ``thread.start()`` is cheap; forking/spawning a process is not).
_PROCESS_HINTS = ("proc", "process", "pool", "worker")

#: Receiver-name fragments that mark ``.get()`` as a queue read.
_QUEUE_HINTS = ("queue", "_q")


def _attr_chain(node: ast.expr) -> Optional[List[str]]:
    """``self.a.b`` -> ``["self", "a", "b"]``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _self_attr(node: ast.expr) -> Optional[str]:
    chain = _attr_chain(node)
    if chain is not None and len(chain) == 2 and chain[0] == "self":
        return chain[1]
    return None


def _receiver_name(node: ast.expr) -> Optional[str]:
    """Last identifier of the call receiver, for hint matching."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_timeout_style_args(call: ast.Call) -> bool:
    """True for ``x.join()`` / ``x.join(5)`` / ``x.join(timeout=...)`` —
    the thread/process shape — and False for ``sep.join(iterable)`` /
    ``os.path.join(a, b)``."""
    if call.keywords:
        return all(kw.arg == "timeout" for kw in call.keywords) and len(call.args) == 0
    if len(call.args) == 0:
        return True
    if len(call.args) == 1:
        arg = call.args[0]
        return isinstance(arg, ast.Constant) and isinstance(arg.value, (int, float))
    return False


def _collect_lock_attrs(cls: ast.ClassDef) -> Dict[str, str]:
    """Map lock attribute name -> canonical lock name (alias-resolved)."""
    canonical: Dict[str, str] = {}
    aliases: Dict[str, str] = {}
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        func_chain = _attr_chain(node.value.func)
        if func_chain is None or func_chain[-1] not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr is None:
                continue
            arg_attr = (
                _self_attr(node.value.args[0]) if node.value.args else None
            )
            if func_chain[-1] == "Condition" and arg_attr is not None:
                # Condition(self._lock) shares the mutex with self._lock.
                aliases[attr] = arg_attr
            else:
                canonical[attr] = attr
    for alias, target in aliases.items():
        canonical[alias] = canonical.get(target, target)
    return canonical


def _is_contextmanager(func: ast.FunctionDef) -> bool:
    for deco in func.decorator_list:
        chain = _attr_chain(deco) if not isinstance(deco, ast.Call) else None
        if chain and chain[-1] == "contextmanager":
            return True
    return False


class _MethodWalk(ast.NodeVisitor):
    """One method's walk: blocking ops, lock edges, self-calls, yields."""

    def __init__(
        self,
        lock_attrs: Dict[str, str],
        method_names: Set[str],
    ) -> None:
        self.lock_attrs = lock_attrs
        self.method_names = method_names
        self.held: List[str] = []
        #: (line, description) blocking ops at lock depth 0 (for summaries).
        self.unlocked_blocking: List[Tuple[int, str]] = []
        #: (line, description, held-locks) blocking ops under a lock.
        self.locked_blocking: List[Tuple[int, str, Tuple[str, ...]]] = []
        #: (line, callee, held-locks) self-method calls under a lock.
        self.locked_calls: List[Tuple[int, str, Tuple[str, ...]]] = []
        #: self-method calls at depth 0 (for transitive summaries).
        self.unlocked_calls: List[str] = []
        #: lock-order edges (outer, inner, line).
        self.edges: List[Tuple[str, str, int]] = []
        #: yields while a lock is held: (line, held-locks).
        self.locked_yields: List[Tuple[int, Tuple[str, ...]]] = []

    # -- lock acquisition -------------------------------------------------
    def _locks_of(self, expr: ast.expr) -> List[str]:
        attr = _self_attr(expr)
        if attr is not None and attr in self.lock_attrs:
            return [self.lock_attrs[attr]]
        return []

    def visit_With(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            for lock in self._locks_of(item.context_expr):
                if lock not in self.held:
                    for outer in self.held:
                        self.edges.append((outer, lock, node.lineno))
                    self.held.append(lock)
                    acquired.append(lock)
            # Still walk the context expression itself (e.g. call args).
            self.visit(item.context_expr)
        for stmt in node.body:
            self.visit(stmt)
        for lock in reversed(acquired):
            self.held.remove(lock)

    # -- deferred-execution bodies run without the current locks ----------
    def _visit_deferred(self, node: ast.AST) -> None:
        saved, self.held = self.held, []
        try:
            self.generic_visit(node)
        finally:
            self.held = saved

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_deferred(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_deferred(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_deferred(node)

    # -- yields hold the lock across arbitrary caller code ----------------
    def visit_Yield(self, node: ast.Yield) -> None:
        if self.held:
            self.locked_yields.append((node.lineno, tuple(self.held)))
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        if self.held:
            self.locked_yields.append((node.lineno, tuple(self.held)))
        self.generic_visit(node)

    # -- calls ------------------------------------------------------------
    def _blocking_reason(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "sleep":
                return "sleep()"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        receiver = _receiver_name(func.value)
        receiver_lc = (receiver or "").lower()
        if attr == "commit":
            return "SQLite commit"
        if attr == "sleep":
            return f"{receiver}.sleep()"
        if attr == "result":
            return "future.result()"
        if attr == "join" and _is_timeout_style_args(call):
            if isinstance(func.value, ast.Constant):
                return None  # "sep".join(...)
            return f"{receiver}.join()"
        if attr == "get" and any(hint in receiver_lc for hint in _QUEUE_HINTS):
            return f"{receiver}.get()"
        if attr == "wait":
            wait_lock = _self_attr(func.value)
            canon = self.lock_attrs.get(wait_lock or "")
            if canon is not None and canon in self.held:
                return None  # Condition.wait releases the lock it guards
            return f"{receiver}.wait()"
        if attr == "start" and any(hint in receiver_lc for hint in _PROCESS_HINTS):
            return f"process spawn via {receiver}.start()"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        reason = self._blocking_reason(node)
        callee = _self_attr(node.func)
        is_self_call = callee is not None and callee in self.method_names
        if self.held:
            if reason is not None:
                self.locked_blocking.append(
                    (node.lineno, reason, tuple(self.held))
                )
            if is_self_call:
                self.locked_calls.append((node.lineno, callee, tuple(self.held)))
        else:
            if reason is not None:
                self.unlocked_blocking.append((node.lineno, reason))
            if is_self_call:
                self.unlocked_calls.append(callee)
        self.generic_visit(node)


def _analyze_class(cls: ast.ClassDef, path: str) -> List[Finding]:
    lock_attrs = _collect_lock_attrs(cls)
    if not lock_attrs:
        return []
    methods = [
        node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    method_names = {m.name for m in methods}
    cm_methods = {
        m.name
        for m in methods
        if isinstance(m, ast.FunctionDef) and _is_contextmanager(m)
    }

    walks: Dict[str, _MethodWalk] = {}
    for method in methods:
        walk = _MethodWalk(lock_attrs, method_names)
        for stmt in method.body:
            walk.visit(stmt)
        walks[method.name] = walk

    # Transitive "does this method block when called with a lock held?"
    summaries: Dict[str, List[str]] = {
        name: [desc for _line, desc in walk.unlocked_blocking]
        for name, walk in walks.items()
    }
    changed = True
    while changed:
        changed = False
        for name, walk in walks.items():
            for callee in walk.unlocked_calls:
                for desc in summaries.get(callee, []):
                    entry = f"{desc} [via self.{callee}()]"
                    if entry not in summaries[name]:
                        summaries[name].append(entry)
                        changed = True

    findings: List[Finding] = []
    for name, walk in walks.items():
        for line, desc, held in walk.locked_blocking:
            findings.append(
                Finding(
                    path,
                    line,
                    "lock-blocking",
                    f"{cls.name}.{name} runs {desc} while holding "
                    f"{'/'.join(held)}",
                )
            )
        for line, callee, held in walk.locked_calls:
            for desc in summaries.get(callee, []):
                findings.append(
                    Finding(
                        path,
                        line,
                        "lock-blocking",
                        f"{cls.name}.{name} calls self.{callee}() which runs "
                        f"{desc} while holding {'/'.join(held)}",
                    )
                )
        for line, held in walk.locked_yields:
            if name in cm_methods:
                message = (
                    f"{cls.name}.{name} yields while holding "
                    f"{'/'.join(held)}: every caller's with-block body "
                    "runs under the lock"
                )
            else:
                message = (
                    f"{cls.name}.{name} yields while holding "
                    f"{'/'.join(held)}: the lock stays held across "
                    "arbitrary consumer code"
                )
            findings.append(Finding(path, line, "lock-blocking", message))

    # Lock-order cycles across the whole class.
    graph: Dict[str, Set[str]] = {}
    edge_lines: Dict[Tuple[str, str], int] = {}
    for walk in walks.values():
        for outer, inner, line in walk.edges:
            graph.setdefault(outer, set()).add(inner)
            edge_lines.setdefault((outer, inner), line)
    for cycle in _find_cycles(graph):
        line = edge_lines.get((cycle[0], cycle[1]), 0)
        findings.append(
            Finding(
                path,
                line,
                "lock-order",
                f"{cls.name} acquires locks in a cycle: "
                + " -> ".join(cycle + [cycle[0]])
                + " (deadlock possible)",
            )
        )
    return findings


def _find_cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Elementary cycles (each reported once, rotated to min node first)."""
    cycles: Set[Tuple[str, ...]] = set()

    def dfs(node: str, path: List[str], on_path: Set[str]) -> None:
        for succ in sorted(graph.get(node, ())):
            if succ in on_path:
                cycle = path[path.index(succ) :]
                pivot = cycle.index(min(cycle))
                cycles.add(tuple(cycle[pivot:] + cycle[:pivot]))
                continue
            dfs(succ, path + [succ], on_path | {succ})

    for start in sorted(graph):
        dfs(start, [start], {start})
    return [list(cycle) for cycle in sorted(cycles)]


def check_source(source: str, path: str) -> List[Finding]:
    """Run the lock analysis over one module's source."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(path, exc.lineno or 0, "lock-blocking", f"unparseable: {exc.msg}")
        ]
    findings: List[Finding] = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            findings.extend(_analyze_class(node, path))
    return sorted(findings, key=lambda f: (f.line, f.message))
