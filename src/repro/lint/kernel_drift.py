"""Kernel-mirror drift checker: C kernels vs ctypes bindings vs Python mirror.

The compiled walk engine lives three times: the C source
(``core/_kernels.c``), the ctypes declarations that call into it
(``core/_ckernels.py`` ``_SIGNATURES``), and the line-for-line Python mirror
that pins the RNG bit-exact (``core/cwalk_mirror.py``).  Silent skew between
them is memory corruption (wrong argtypes) or a broken reproducibility
guarantee (wrong RNG constants), so this checker cross-checks:

``kernel-drift``
    Every non-``static`` function defined in ``_kernels.c`` must have a
    ``_SIGNATURES`` entry (and vice versa) with matching arity, per-argument
    kind (integer scalar / double scalar / pointer) and return type.
``rng-drift``
    The xoshiro256** constants must agree between the C RNG
    (``wk_splitmix64`` / ``wk_next`` / ``wk_below`` / ``wk_double``) and the
    mirror (``Xoshiro256._splitmix64`` / ``next_u64`` / ``random``): the
    three splitmix64 mixing constants, the rotation/shift/multiplier set,
    and the 2^53 double divisor.

No compiler is needed: both sides are parsed as text/AST, so the check runs
in the same place as the other lint rules (and in the ``kernel-sanitize``
CI job, where a drift would otherwise surface as an ASan crash at best).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .findings import Finding

__all__ = ["check_files", "parse_c_exports", "parse_ctypes_signatures"]

# One exported (non-static) C definition: return type, name, params, body {.
_C_EXPORT_RE = re.compile(
    r"^(?P<ret>void|i64|u64|double|int64_t)\s+(?P<name>\w+)\s*"
    r"\((?P<params>[^)]*)\)\s*\{",
    re.MULTILINE,
)

_INT_RE = re.compile(r"0[xX][0-9a-fA-F]+|\b\d+\b")
_FLOAT_RE = re.compile(r"\b\d+\.\d+(?:[eE][+-]?\d+)?\b")


def _c_arg_kind(token: str) -> str:
    if "*" in token:
        return "ptr"
    if "double" in token or "float" in token:
        return "f64"
    return "i64"


def parse_c_exports(c_source: str) -> Dict[str, Tuple[List[str], str, int]]:
    """``name -> (arg kinds, return kind, line)`` for non-static functions."""
    exports: Dict[str, Tuple[List[str], str, int]] = {}
    for match in _C_EXPORT_RE.finditer(c_source):
        name = match.group("name")
        params = match.group("params").strip()
        if params in ("", "void"):
            kinds: List[str] = []
        else:
            kinds = [_c_arg_kind(tok) for tok in params.split(",")]
        ret = "void" if match.group("ret") == "void" else (
            "f64" if match.group("ret") == "double" else "i64"
        )
        line = c_source.count("\n", 0, match.start()) + 1
        exports[name] = (kinds, ret, line)
    return exports


def _ctype_kind(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Kind of one argtype/restype expression, via the module's aliases."""
    if isinstance(node, ast.Constant) and node.value is None:
        return "void"
    if isinstance(node, ast.Name):
        return aliases.get(node.id)
    if isinstance(node, ast.Attribute):  # ctypes.c_double etc.
        return _kind_of_ctypes_name(node.attr)
    return None


def _kind_of_ctypes_name(name: str) -> Optional[str]:
    if name in ("c_double", "c_float"):
        return "f64"
    if name in ("c_void_p", "c_char_p", "POINTER"):
        return "ptr"
    if name.startswith("c_"):
        return "i64"
    return None


def parse_ctypes_signatures(
    py_source: str, path: str = "_ckernels.py"
) -> Tuple[Dict[str, Tuple[List[str], str, int]], List[Finding]]:
    """``name -> (arg kinds, return kind, line)`` from the _SIGNATURES dict."""
    problems: List[Finding] = []
    try:
        tree = ast.parse(py_source, filename=path)
    except SyntaxError as exc:
        return {}, [
            Finding(path, exc.lineno or 0, "kernel-drift", f"unparseable: {exc.msg}")
        ]
    aliases: Dict[str, str] = {}
    signatures_node: Optional[ast.Dict] = None
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if isinstance(node.value, ast.Attribute):
                kind = _kind_of_ctypes_name(node.value.attr)
                if kind is not None:
                    aliases[target.id] = kind
            if target.id == "_SIGNATURES" and isinstance(node.value, ast.Dict):
                signatures_node = node.value
    if signatures_node is None:
        return {}, [
            Finding(path, 0, "kernel-drift", "no _SIGNATURES dict found")
        ]
    signatures: Dict[str, Tuple[List[str], str, int]] = {}
    for key, value in zip(signatures_node.keys, signatures_node.values):
        if not isinstance(key, ast.Constant) or not isinstance(key.value, str):
            continue
        name, line = key.value, key.lineno
        if (
            not isinstance(value, ast.Tuple)
            or len(value.elts) != 2
            or not isinstance(value.elts[0], (ast.List, ast.Tuple))
        ):
            problems.append(
                Finding(
                    path, line, "kernel-drift",
                    f"_SIGNATURES[{name!r}] is not an (argtypes, restype) pair",
                )
            )
            continue
        kinds: List[str] = []
        for element in value.elts[0].elts:
            kind = _ctype_kind(element, aliases)
            if kind is None:
                problems.append(
                    Finding(
                        path, element.lineno, "kernel-drift",
                        f"_SIGNATURES[{name!r}] has an unrecognised argtype",
                    )
                )
                kind = "?"
            kinds.append(kind)
        ret = _ctype_kind(value.elts[1], aliases)
        if ret is None:
            problems.append(
                Finding(
                    path, line, "kernel-drift",
                    f"_SIGNATURES[{name!r}] has an unrecognised restype",
                )
            )
            ret = "?"
        signatures[name] = (kinds, ret, line)
    return signatures, problems


# ----------------------------------------------------------- RNG constants

def _c_function_body(c_source: str, name: str) -> Optional[str]:
    match = re.search(rf"\b{re.escape(name)}\s*\([^)]*\)\s*\{{", c_source)
    if match is None:
        return None
    depth, start = 0, match.end() - 1
    for index in range(start, len(c_source)):
        if c_source[index] == "{":
            depth += 1
        elif c_source[index] == "}":
            depth -= 1
            if depth == 0:
                return c_source[start : index + 1]
    return None


def _ints_in_c(body: str) -> List[int]:
    return [int(tok, 0) for tok in _INT_RE.findall(body)]

def _floats_in_c(body: str) -> List[float]:
    return [float(tok) for tok in _FLOAT_RE.findall(body)]


def _python_method_constants(
    py_source: str, class_name: str, method: str, path: str
) -> Optional[Tuple[List[int], List[float]]]:
    """Int/float constants of ``class_name.method`` — falling back to a
    module-level ``def method`` (the mirror keeps ``_splitmix64`` free)."""
    try:
        tree = ast.parse(py_source, filename=path)
    except SyntaxError:
        return None
    target: Optional[ast.FunctionDef] = None
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == method:
                    target = item
    if target is None:
        for node in tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == method:
                target = node
    if target is None:
        return None
    ints: List[int] = []
    floats: List[float] = []
    for sub in ast.walk(target):
        if isinstance(sub, ast.Constant) and not isinstance(sub.value, bool):
            if isinstance(sub.value, int):
                ints.append(sub.value)
            elif isinstance(sub.value, float):
                floats.append(sub.value)
    return ints, floats


_MASK64 = (1 << 64) - 1
#: Array indices and trivial structure constants, excluded from the
#: shift/multiplier comparison (both sides index s[0..3]).
_STRUCTURAL = {0, 1, 2, 3, 4, 64}


def _rng_constant_findings(
    c_source: str, mirror_source: str, c_path: str, mirror_path: str
) -> List[Finding]:
    findings: List[Finding] = []

    def compare(
        c_fn: str,
        py_method: str,
        pick_ints,
        pick_floats=None,
        what: str = "constants",
    ) -> None:
        body = _c_function_body(c_source, c_fn)
        if body is None:
            findings.append(
                Finding(
                    c_path, 0, "rng-drift",
                    f"cannot locate RNG primitive {c_fn}() in the C kernels",
                )
            )
            return
        extracted = _python_method_constants(
            mirror_source, "Xoshiro256", py_method, mirror_path
        )
        if extracted is None:
            findings.append(
                Finding(
                    mirror_path, 0, "rng-drift",
                    f"cannot locate Xoshiro256.{py_method} in the mirror",
                )
            )
            return
        py_ints, py_floats = extracted
        c_side = sorted(pick_ints(_ints_in_c(body)))
        py_side = sorted(pick_ints(py_ints))
        if c_side != py_side:
            findings.append(
                Finding(
                    mirror_path, 0, "rng-drift",
                    f"{what} disagree between {c_fn}() and "
                    f"Xoshiro256.{py_method}: C={c_side} mirror={py_side}",
                )
            )
        if pick_floats is not None:
            c_f = sorted(pick_floats(_floats_in_c(body)))
            py_f = sorted(pick_floats(py_floats))
            if c_f != py_f:
                findings.append(
                    Finding(
                        mirror_path, 0, "rng-drift",
                        f"float constants disagree between {c_fn}() and "
                        f"Xoshiro256.{py_method}: C={c_f} mirror={py_f}",
                    )
                )

    # splitmix64: the three 64-bit mixing constants (mask excluded).
    compare(
        "wk_splitmix64",
        "_splitmix64",
        lambda ints: [i for i in ints if i >= (1 << 32) and i != _MASK64],
        what="splitmix64 mixing constants",
    )
    # xoshiro output/advance: multipliers 5 & 9, rotations 7 & 45, shift 17.
    compare(
        "wk_next",
        "next_u64",
        lambda ints: [
            i
            for i in ints
            if i < (1 << 32) and i not in _STRUCTURAL
        ],
        what="xoshiro shift/multiplier set",
    )
    # double conversion: >> 11 and the 2^53 divisor.
    compare(
        "wk_double",
        "random",
        lambda ints: [i for i in ints if i not in _STRUCTURAL and i < (1 << 32)],
        pick_floats=lambda floats: [f for f in floats if f != 1.0],
        what="double-conversion constants",
    )
    return findings


# ----------------------------------------------------------------- driver

def check_files(
    c_path: Path, ctypes_path: Path, mirror_path: Path
) -> List[Finding]:
    """Cross-check the kernel trio; paths are parameters so tests can point
    the checker at deliberately perturbed copies."""
    findings: List[Finding] = []
    try:
        c_source = c_path.read_text(encoding="utf-8")
        py_source = ctypes_path.read_text(encoding="utf-8")
        mirror_source = mirror_path.read_text(encoding="utf-8")
    except OSError as exc:
        return [Finding(str(exc.filename), 0, "kernel-drift", f"unreadable: {exc}")]

    c_name, py_name = str(c_path), str(ctypes_path)
    exports = parse_c_exports(c_source)
    signatures, problems = parse_ctypes_signatures(py_source, py_name)
    findings.extend(problems)

    for name, (kinds, ret, line) in sorted(exports.items()):
        if name not in signatures:
            findings.append(
                Finding(
                    c_name, line, "kernel-drift",
                    f"C export {name}() has no ctypes _SIGNATURES entry",
                )
            )
            continue
        py_kinds, py_ret, py_line = signatures[name]
        if len(kinds) != len(py_kinds):
            findings.append(
                Finding(
                    py_name, py_line, "kernel-drift",
                    f"{name}: C takes {len(kinds)} args but argtypes lists "
                    f"{len(py_kinds)}",
                )
            )
        else:
            for index, (c_kind, p_kind) in enumerate(zip(kinds, py_kinds)):
                if c_kind != p_kind:
                    findings.append(
                        Finding(
                            py_name, py_line, "kernel-drift",
                            f"{name}: arg {index} is {c_kind} in C but "
                            f"{p_kind} in argtypes",
                        )
                    )
        if ret != py_ret:
            findings.append(
                Finding(
                    py_name, py_line, "kernel-drift",
                    f"{name}: C returns {ret} but restype says {py_ret}",
                )
            )
    for name, (_kinds, _ret, line) in sorted(signatures.items()):
        if name not in exports:
            findings.append(
                Finding(
                    py_name, line, "kernel-drift",
                    f"_SIGNATURES entry {name!r} has no exported C definition",
                )
            )

    findings.extend(
        _rng_constant_findings(c_source, mirror_source, c_name, str(mirror_path))
    )
    return sorted(findings, key=lambda f: (f.path, f.line, f.message))
