"""Async-safety lint: coroutines must not call into the blocking core.

Rule ``async-blocking``.  The asyncio front-end runs every connection on one
event loop; a single blocking call stalls them all.  The service facade
(``self.service.*``) is the blocking surface — it takes locks, waits on
futures and touches SQLite — so inside a coroutine every call rooted at
``self.service`` must travel through the executor hop
(``await self._call(fn, *args)`` / ``loop.run_in_executor``), which passes
the *function* and never calls it on the loop.  Blocking primitives
(``time.sleep``, thread joins, ``future.result``, SQLite commits, ``open``)
are flagged the same way.

Lambdas and nested ``def``s are skipped: the executor idiom is
``await self._call(lambda: self.service.submit(...))``, where the lambda
body runs on the executor thread, not the loop.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from .findings import Finding

__all__ = ["check_source"]


def _attr_chain(node: ast.expr) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _is_timeout_style_args(call: ast.Call) -> bool:
    if call.keywords:
        return all(kw.arg == "timeout" for kw in call.keywords) and len(call.args) == 0
    if len(call.args) == 0:
        return True
    if len(call.args) == 1:
        arg = call.args[0]
        return isinstance(arg, ast.Constant) and isinstance(arg.value, (int, float))
    return False


class _CoroutineWalk(ast.NodeVisitor):
    """Walk one coroutine body; deferred bodies (lambda/def) are skipped."""

    def __init__(self, path: str, coroutine: str) -> None:
        self.path = path
        self.coroutine = coroutine
        self.findings: List[Finding] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                self.path,
                getattr(node, "lineno", 0),
                "async-blocking",
                f"coroutine {self.coroutine}: {message}",
            )
        )

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # runs later (typically on the executor), not on the loop

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass  # nested coroutines are visited as their own root

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if chain is not None:
            if len(chain) >= 3 and chain[0] == "self" and chain[1] == "service":
                self._flag(
                    node,
                    f"blocking service call {'.'.join(chain)}() on the event "
                    "loop; route it through await self._call(...)",
                )
            elif chain == ["time", "sleep"] or chain == ["sleep"]:
                self._flag(
                    node,
                    "time.sleep() stalls the event loop; use asyncio.sleep "
                    "or the executor",
                )
            elif chain[-1] == "commit":
                self._flag(
                    node,
                    "SQLite commit on the event loop; route it through "
                    "await self._call(...)",
                )
            elif (
                chain[-1] == "join"
                and len(chain) >= 2
                and _is_timeout_style_args(node)
            ):
                self._flag(
                    node,
                    f"{'.'.join(chain)}() joins a thread/process on the "
                    "event loop; route it through await self._call(...)",
                )
            elif (
                chain[-1] == "result"
                and len(chain) >= 2
                and _is_timeout_style_args(node)
            ):
                self._flag(
                    node,
                    f"{'.'.join(chain)}() waits for a future on the event "
                    "loop; await asyncio.wrap_future(...) instead",
                )
            elif chain == ["open"]:
                self._flag(
                    node,
                    "blocking file I/O on the event loop; route it through "
                    "await self._call(...)",
                )
        self.generic_visit(node)


def check_source(source: str, path: str) -> List[Finding]:
    """Run the async-safety lint over one module's source."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path, exc.lineno or 0, "async-blocking", f"unparseable: {exc.msg}"
            )
        ]
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            walk = _CoroutineWalk(path, node.name)
            for stmt in node.body:
                walk.visit(stmt)
            findings.extend(walk.findings)
    return sorted(findings, key=lambda f: (f.line, f.message))
