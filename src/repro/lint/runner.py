"""`repro lint` driver: checker dispatch, suppressions, baseline, output.

Default (no paths) run covers the repo's invariant surfaces:

* lock analysis over the five locked service modules;
* determinism lint over ``core/``, ``models/``, ``baselines/``,
  ``parallel/`` (``core/rng.py`` itself is the sanctioned entropy module);
* async-safety lint over ``service/http_async.py``;
* HTTP retry-contract lint over both front-ends;
* kernel-mirror drift check over the ``_kernels.c`` / ``_ckernels.py`` /
  ``cwalk_mirror.py`` trio.

Explicit paths run the four source checkers on exactly those files (fixture
and editor integration); the committed baseline applies only to the default
whole-tree run.  Exit code 0 = clean (after suppressions and baseline),
1 = findings, 2 = usage error.
"""

from __future__ import annotations

import json as json_module
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from . import asyncsafety, determinism, http_contract, kernel_drift, locks
from .findings import (
    Finding,
    apply_suppressions,
    load_baseline,
    partition_against_baseline,
    render_baseline,
)

__all__ = ["RULES", "LintResult", "run", "run_cli", "repo_root"]

#: rule-id -> one-line description (the `--help` and docs source of truth).
RULES: Dict[str, str] = {
    "lock-order": "lock-acquisition cycle across a class (deadlock shape)",
    "lock-blocking": (
        "blocking operation (commit/queue.get/result/sleep/join/spawn/yield) "
        "while a lock is held"
    ),
    "unseeded-random": (
        "entropy outside core.rng seeded generators (random.*, np.random "
        "legacy state, time.time, unseeded constructors)"
    ),
    "async-blocking": (
        "blocking call on the event loop instead of run_in_executor "
        "(await self._call(...))"
    ),
    "kernel-drift": (
        "C kernel prototypes vs ctypes _SIGNATURES skew (names/arity/"
        "arg kinds/restype)"
    ),
    "rng-drift": (
        "xoshiro256**/splitmix64 constants differ between _kernels.c and "
        "the Python mirror"
    ),
    "http-retry-contract": (
        "429/503/504 response without Retry-After header or \"retry\" body "
        "field"
    ),
    "bad-suppression": (
        "repro-lint ignore comment without the mandatory '-- justification'"
    ),
}

#: Source checkers applied to .py targets (drift is path-configured apart).
_SOURCE_CHECKERS: List[Callable[[str, str], List[Finding]]] = [
    locks.check_source,
    determinism.check_source,
    asyncsafety.check_source,
    http_contract.check_source,
]

#: Which rules each source checker can emit (drives `--rule` skipping).
_CHECKER_RULES = {
    locks.check_source: {"lock-order", "lock-blocking"},
    determinism.check_source: {"unseeded-random"},
    asyncsafety.check_source: {"async-blocking"},
    http_contract.check_source: {"http-retry-contract"},
}

_LOCKED_SERVICE_FILES = (
    "src/repro/service/scheduler.py",
    "src/repro/service/store.py",
    "src/repro/service/qos.py",
    "src/repro/service/workers.py",
    "src/repro/service/api.py",
)
_DETERMINISM_DIRS = ("core", "models", "baselines", "parallel")
_ASYNC_FILE = "src/repro/service/http_async.py"
_HTTP_FILES = ("src/repro/service/http.py", "src/repro/service/http_async.py")
_BASELINE_NAME = "lint-baseline.txt"


def repo_root() -> Path:
    """The repository root (three levels above this package)."""
    return Path(__file__).resolve().parents[3]


class LintResult:
    """Outcome of one lint run."""

    def __init__(
        self,
        new: List[Finding],
        baselined: List[Finding],
        stale_baseline: List[str],
    ) -> None:
        self.new = new
        self.baselined = baselined
        self.stale_baseline = stale_baseline

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "findings": [f.to_dict() for f in self.new],
            "count": len(self.new),
            "baselined": len(self.baselined),
            "stale_baseline": list(self.stale_baseline),
        }


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return str(path)


def _checker_wanted(checker, rules: Optional[Sequence[str]]) -> bool:
    if not rules:
        return True
    return bool(_CHECKER_RULES[checker] & set(rules))


def _check_python_file(
    path: Path,
    label: str,
    checkers: Sequence[Callable[[str, str], List[Finding]]],
) -> List[Finding]:
    source = path.read_text(encoding="utf-8")
    findings: List[Finding] = []
    for checker in checkers:
        findings.extend(checker(source, label))
    return apply_suppressions(findings, source)


def _default_targets(root: Path, rules: Optional[Sequence[str]]) -> List[Finding]:
    findings: List[Finding] = []
    if _checker_wanted(locks.check_source, rules):
        for rel in _LOCKED_SERVICE_FILES:
            path = root / rel
            if path.exists():
                findings.extend(_check_python_file(path, rel, [locks.check_source]))
    if _checker_wanted(determinism.check_source, rules):
        for sub in _DETERMINISM_DIRS:
            base = root / "src" / "repro" / sub
            for path in sorted(base.rglob("*.py")):
                rel = _relative(path, root)
                if rel == "src/repro/core/rng.py":
                    continue
                findings.extend(
                    _check_python_file(path, rel, [determinism.check_source])
                )
    if _checker_wanted(asyncsafety.check_source, rules):
        path = root / _ASYNC_FILE
        if path.exists():
            findings.extend(
                _check_python_file(path, _ASYNC_FILE, [asyncsafety.check_source])
            )
    if _checker_wanted(http_contract.check_source, rules):
        for rel in _HTTP_FILES:
            path = root / rel
            if path.exists():
                findings.extend(
                    _check_python_file(path, rel, [http_contract.check_source])
                )
    if not rules or {"kernel-drift", "rng-drift"} & set(rules):
        core = root / "src" / "repro" / "core"
        drift = kernel_drift.check_files(
            core / "_kernels.c", core / "_ckernels.py", core / "cwalk_mirror.py"
        )
        findings.extend(
            Finding(_relative(Path(f.path), root), f.line, f.rule, f.message)
            for f in drift
        )
    return findings


def run(
    root: Optional[Path] = None,
    targets: Optional[Sequence[Path]] = None,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Path] = None,
    use_baseline: bool = True,
) -> LintResult:
    """Run the suite; see module docstring for target semantics."""
    root = root or repo_root()
    if targets:
        findings: List[Finding] = []
        for target in targets:
            if target.suffix != ".py":
                continue
            checkers = [c for c in _SOURCE_CHECKERS if _checker_wanted(c, rules)]
            findings.extend(
                _check_python_file(target, _relative(target, root), checkers)
            )
        baselined: List[Finding] = []
        stale: List[str] = []
    else:
        findings = _default_targets(root, rules)
        if use_baseline:
            baseline_path = baseline or (root / _BASELINE_NAME)
            keys = load_baseline(baseline_path)
            findings, baselined, stale = partition_against_baseline(findings, keys)
        else:
            baselined, stale = [], []
    if rules:
        wanted = set(rules) | {"bad-suppression"}
        findings = [f for f in findings if f.rule in wanted]
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return LintResult(findings, baselined, stale)


def run_cli(args) -> int:
    """Entry point for ``repro lint`` (argparse namespace in, exit code out)."""
    root = Path(args.root).resolve() if args.root else repo_root()
    rules: List[str] = []
    for spec in args.rule or []:
        rules.extend(r.strip() for r in spec.split(",") if r.strip())
    unknown = [r for r in rules if r not in RULES]
    if unknown:
        print(f"error: unknown rule(s) {', '.join(unknown)}; known: "
              f"{', '.join(sorted(RULES))}")
        return 2
    targets = [Path(p) for p in args.paths or []]
    missing = [str(p) for p in targets if not p.exists()]
    if missing:
        print(f"error: no such file(s): {', '.join(missing)}")
        return 2

    result = run(
        root=root,
        targets=targets or None,
        rules=rules or None,
        baseline=Path(args.baseline) if args.baseline else None,
        use_baseline=not args.no_baseline,
    )

    if args.write_baseline:
        if targets:
            print("error: --write-baseline applies to the whole-tree run")
            return 2
        baseline_path = Path(args.baseline) if args.baseline else root / _BASELINE_NAME
        everything = sorted(
            result.new + result.baselined,
            key=lambda f: (f.path, f.line, f.rule, f.message),
        )
        baseline_path.write_text(render_baseline(everything), encoding="utf-8")
        print(f"wrote {len(everything)} baseline entr"
              f"{'y' if len(everything) == 1 else 'ies'} to {baseline_path}")
        return 0

    if args.json:
        print(json_module.dumps(result.to_dict(), indent=2))
        return result.exit_code

    for finding in result.new:
        print(finding.render())
    for key in result.stale_baseline:
        print(f"stale baseline entry (violation no longer present): {key}")
    if result.new:
        noun = "finding" if len(result.new) == 1 else "findings"
        suffix = (
            f" ({len(result.baselined)} baselined)" if result.baselined else ""
        )
        print(f"repro lint: {len(result.new)} {noun}{suffix}")
    else:
        suffix = (
            f" ({len(result.baselined)} baselined)" if result.baselined else ""
        )
        print(f"repro lint: clean{suffix}")
    return result.exit_code
