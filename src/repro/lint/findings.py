"""Finding, suppression, and baseline plumbing shared by every checker.

A *finding* is one violated project invariant: ``file:line rule-id message``.
Checkers produce findings; this module decides which of them the developer
has already answered for, through exactly two sanctioned channels:

* an **inline suppression** — ``# repro-lint: ignore[rule-id] -- <why>`` on
  the offending line (or on a comment line directly above it).  The
  justification after ``--`` is mandatory: a bare ignore is itself reported
  as a ``bad-suppression`` finding, so silencing a rule always costs one
  written sentence of explanation;
* the **committed baseline** (``lint-baseline.txt`` at the repo root) —
  pre-existing debt recorded as ``path|rule|message`` lines.  Baselined
  findings do not fail the run, but *new* ones do, so CI only ever ratchets
  forward.  Baseline keys carry no line numbers: unrelated edits that shift
  a known finding must not break the build.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "SUPPRESS_RE",
    "apply_suppressions",
    "load_baseline",
    "partition_against_baseline",
    "render_baseline",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str  #: repo-relative posix path (or the literal path it was given)
    line: int  #: 1-based line of the violation (0 = whole-file finding)
    rule: str  #: rule identifier, e.g. ``lock-blocking``
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line} {self.rule} {self.message}"

    def baseline_key(self) -> str:
        """Line-number-free identity used for baseline matching."""
        return f"{self.path}|{self.rule}|{self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "file": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


#: ``# repro-lint: ignore[rule-id] -- justification`` (justification optional
#: in the grammar so a missing one can be *reported* rather than ignored).
SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore\[(?P<rules>[a-z0-9_,\- ]+)\]"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)


@dataclass
class _Suppression:
    line: int
    rules: Tuple[str, ...]
    justified: bool
    used: bool = field(default=False)


def _collect_suppressions(source: str) -> List[_Suppression]:
    found: List[_Suppression] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            rule.strip() for rule in match.group("rules").split(",") if rule.strip()
        )
        found.append(
            _Suppression(line=lineno, rules=rules, justified=bool(match.group("why")))
        )
    return found


def _covering(
    suppressions: Sequence[_Suppression], source_lines: Sequence[str], finding: Finding
) -> Optional[_Suppression]:
    """The suppression covering *finding*, if any.

    A directive covers its own line, and — when it sits on a comment-only
    line — every following comment line plus the first code line below the
    comment block (the natural "explain above the statement" style).
    """
    by_line = {sup.line: sup for sup in suppressions}
    direct = by_line.get(finding.line)
    if direct is not None and finding.rule in direct.rules:
        return direct
    # Walk upward through the contiguous comment block above the finding.
    probe = finding.line - 1
    while probe >= 1 and source_lines[probe - 1].lstrip().startswith("#"):
        above = by_line.get(probe)
        if above is not None and finding.rule in above.rules:
            return above
        probe -= 1
    return None


def apply_suppressions(
    findings: Sequence[Finding], source: str
) -> List[Finding]:
    """Filter *findings* through the inline suppressions in *source*.

    Suppressed-with-justification findings are dropped.  A matching directive
    with no ``-- justification`` does *not* suppress; it earns an extra
    ``bad-suppression`` finding so the omission is loud.
    """
    suppressions = _collect_suppressions(source)
    lines = source.splitlines()
    kept: List[Finding] = []
    complaints: List[Finding] = []
    complained_at = set()
    for finding in findings:
        sup = _covering(suppressions, lines, finding)
        if sup is None:
            kept.append(finding)
            continue
        sup.used = True
        if sup.justified:
            continue
        kept.append(finding)
        if sup.line not in complained_at:
            complained_at.add(sup.line)
            complaints.append(
                Finding(
                    path=finding.path,
                    line=sup.line,
                    rule="bad-suppression",
                    message=(
                        "suppression needs a justification: "
                        "# repro-lint: ignore[rule] -- <why>"
                    ),
                )
            )
    return kept + complaints


# ------------------------------------------------------------------ baseline

def load_baseline(path: Path) -> List[str]:
    """Baseline keys from *path* (missing file = empty baseline)."""
    if not path.exists():
        return []
    keys: List[str] = []
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        keys.append(line)
    return keys


def partition_against_baseline(
    findings: Sequence[Finding], baseline_keys: Sequence[str]
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split into (new, baselined, stale-baseline-keys).

    Matching is multiset-aware: two identical findings need two baseline
    entries, so duplicating a known-bad pattern still fails CI.
    """
    budget: Dict[str, int] = {}
    for key in baseline_keys:
        budget[key] = budget.get(key, 0) + 1
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    stale = [key for key, count in budget.items() for _ in range(count)]
    return new, baselined, stale


def render_baseline(findings: Sequence[Finding]) -> str:
    """Serialise *findings* as a fresh baseline file body."""
    header = (
        "# repro lint baseline - accepted pre-existing findings.\n"
        "# One `path|rule|message` key per line; `repro lint` fails only on\n"
        "# findings NOT listed here.  Regenerate with `repro lint "
        "--write-baseline`\n"
        "# only after deciding each new finding is genuinely acceptable.\n"
    )
    body = "".join(
        key + "\n" for key in sorted(f.baseline_key() for f in findings)
    )
    return header + body
