"""HTTP retry-contract lint for the two front-ends.

Rule ``http-retry-contract``.  PRs 6 and 8 established the client-visible
overload contract: every 429/503/504 answer tells the client *that* it may
retry and *when* — a ``Retry-After`` header plus ``"retry"`` (and
``"retry_after"``) body fields.  ``repro request`` and every recorded client
rely on it for backoff; a response site that forgets either half strands
clients in fail-fast mode during exactly the overload it should smooth.

Checked response shapes:

* threaded front-end — ``self._send_json(status, body, headers=...)`` calls
  with a literal 429/503/504 status: the body must carry ``"retry"`` and the
  headers a ``"Retry-After"`` key;
* asyncio front-end — ``return (status, body, close[, headers])`` tuples
  whose status is a literal 429/503/504 (or a parameter defaulting to one,
  which covers the shared ``_reject`` helper): same body/header duties;
* batch item dicts — a dict literal with ``"code": 429/503/504`` must also
  carry ``"retry"`` (batch slots have no headers, so the body field is the
  whole contract).

The body may be a dict literal or a local name that demonstrably received
``name["retry"] = ...`` earlier in the same function (the /healthz shape).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from .findings import Finding

__all__ = ["check_source"]

_STATUSES = {429, 503, 504}


def _literal_status(node: ast.expr, retry_params: Set[str]) -> Optional[int]:
    if isinstance(node, ast.Constant) and node.value in _STATUSES:
        return int(node.value)
    if isinstance(node, ast.Name) and node.id in retry_params:
        return -1  # "some retryable status", via a defaulted parameter
    return None


def _dict_keys(node: ast.expr) -> Optional[Set[str]]:
    if not isinstance(node, ast.Dict):
        return None
    keys: Set[str] = set()
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.add(key.value)
        elif key is None:  # **spread — give it the benefit of the doubt
            keys.add("**")
    return keys


class _FunctionCheck(ast.NodeVisitor):
    """Check the response sites of one function."""

    def __init__(self, path: str, func_name: str, retry_params: Set[str]) -> None:
        self.path = path
        self.func_name = func_name
        self.retry_params = retry_params
        #: local names that received ``name["retry"] = ...`` so far.
        self.retry_assigned: Set[str] = set()
        self.findings: List[Finding] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                self.path,
                getattr(node, "lineno", 0),
                "http-retry-contract",
                f"{self.func_name}: {message}",
            )
        )

    # -- track names that demonstrably carry "retry": either assigned a
    # dict literal containing the key, or a later `name["retry"] = ...` ----
    def _track_targets(self, targets: List[ast.expr], value: ast.expr) -> None:
        keys = _dict_keys(value)
        for target in targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and isinstance(target.slice, ast.Constant)
                and target.slice.value == "retry"
            ):
                self.retry_assigned.add(target.value.id)
            elif isinstance(target, ast.Name) and keys is not None:
                if "retry" in keys or "**" in keys:
                    self.retry_assigned.add(target.id)
                else:
                    self.retry_assigned.discard(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._track_targets(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._track_targets([node.target], node.value)
        self.generic_visit(node)

    def _body_has_retry(self, node: ast.expr) -> bool:
        keys = _dict_keys(node)
        if keys is not None:
            return "retry" in keys or "**" in keys
        if isinstance(node, ast.Name):
            return node.id in self.retry_assigned
        return False

    def _headers_have_retry_after(self, node: Optional[ast.expr]) -> bool:
        if node is None:
            return False
        keys = _dict_keys(node)
        if keys is None:
            return True  # dynamic headers expression: not provably wrong
        return "Retry-After" in keys or "**" in keys

    # -- threaded front-end: self._send_json(status, body, headers=...) ---
    def visit_Call(self, node: ast.Call) -> None:
        callee = None
        if isinstance(node.func, ast.Attribute):
            callee = node.func.attr
        elif isinstance(node.func, ast.Name):
            callee = node.func.id
        if callee == "_send_json" and node.args:
            status = _literal_status(node.args[0], self.retry_params)
            if status is not None and len(node.args) >= 2:
                label = "retryable" if status == -1 else str(status)
                if not self._body_has_retry(node.args[1]):
                    self._flag(
                        node,
                        f"{label} response body lacks the \"retry\" field "
                        "of the PR-6/8 overload contract",
                    )
                headers = next(
                    (kw.value for kw in node.keywords if kw.arg == "headers"),
                    None,
                )
                if not self._headers_have_retry_after(headers):
                    self._flag(
                        node,
                        f"{label} response sends no Retry-After header",
                    )
        self.generic_visit(node)

    # -- asyncio front-end: return (status, body, close[, headers]) -------
    def visit_Return(self, node: ast.Return) -> None:
        value = node.value
        if isinstance(value, ast.Tuple) and len(value.elts) >= 2:
            status = _literal_status(value.elts[0], self.retry_params)
            if status is not None:
                label = "retryable" if status == -1 else str(status)
                if not self._body_has_retry(value.elts[1]):
                    self._flag(
                        node,
                        f"{label} response body lacks the \"retry\" field "
                        "of the PR-6/8 overload contract",
                    )
                headers = value.elts[3] if len(value.elts) >= 4 else None
                if not self._headers_have_retry_after(headers):
                    self._flag(
                        node,
                        f"{label} response sends no Retry-After header",
                    )
        self.generic_visit(node)

    # -- batch item slots: {"code": 503, ...} ------------------------------
    def visit_Dict(self, node: ast.Dict) -> None:
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "code"
                and isinstance(value, ast.Constant)
                and value.value in _STATUSES
            ):
                keys = _dict_keys(node) or set()
                if "retry" not in keys:
                    self._flag(
                        node,
                        f"batch item with code {value.value} lacks the "
                        "\"retry\" field (items carry no headers, so the "
                        "body field is the whole contract)",
                    )
        self.generic_visit(node)

    # Response sites live in the function they are written in; do not
    # descend into nested defs (they are checked as their own functions).
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _retry_params(func: ast.FunctionDef) -> Set[str]:
    """Parameters whose default is a literal retryable status (``_reject``'s
    ``status: int = 503`` shape)."""
    params: Set[str] = set()
    args = func.args
    positional = args.posonlyargs + args.args
    defaults = args.defaults
    for arg, default in zip(positional[len(positional) - len(defaults) :], defaults):
        if isinstance(default, ast.Constant) and default.value in _STATUSES:
            params.add(arg.arg)
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if (
            default is not None
            and isinstance(default, ast.Constant)
            and default.value in _STATUSES
        ):
            params.add(arg.arg)
    return params


def check_source(source: str, path: str) -> List[Finding]:
    """Run the HTTP retry-contract lint over one module's source."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path,
                exc.lineno or 0,
                "http-retry-contract",
                f"unparseable: {exc.msg}",
            )
        ]
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            check = _FunctionCheck(path, node.name, _retry_params(node))
            for stmt in node.body:
                check.visit(stmt)
            findings.extend(check.findings)
    return sorted(findings, key=lambda f: (f.line, f.message))
