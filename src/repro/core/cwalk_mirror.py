"""Pure-Python mirror of the compiled walk engine.

The C walk kernel in ``_kernels.c`` (``as_walk_init``/``as_walk_run``) owns
its own RNG stream, so its trajectories cannot be checked against the NumPy
engine — they are different (equally valid) random walks.  This module is
the *specification* the kernel is tested against instead: a line-for-line
Python re-implementation of the walk's control flow driven by the same
xoshiro256** stream, consuming draws at exactly the same points.  A compiled
walk and a :class:`MirrorWalk` started from the same seed must agree on
every bit of state after every iteration — permutation, cost, error vector,
tabu marks, all counters and the RNG words — and the trajectory test-suite
asserts exactly that across all three compiled families and every ablation
flag.

To keep the mirror an *independent* check rather than a transliteration of
the C arithmetic, all cost/error/delta evaluations here are brute-force
recomputations from the permutation (exact integers, so ties and argmins
are reproduced exactly); only the control flow and the RNG draws mirror the
kernel line for line.

The parameter blocks (``pi``/``pd``) use the same slot layout as the C side;
:mod:`repro.core.cwalk` defines the indices and builds the blocks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["Xoshiro256", "MirrorWalk"]

_MASK64 = (1 << 64) - 1
_I64_MAX = (1 << 63) - 1


def _rotl(x: int, k: int) -> int:
    return ((x << k) | (x >> (64 - k))) & _MASK64


def _splitmix64(x: int):
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x, z ^ (z >> 31)


class Xoshiro256:
    """xoshiro256** seeded through a splitmix64 chain, exactly as in C."""

    def __init__(self, seed: int) -> None:
        x = seed & _MASK64
        state = []
        for _ in range(4):
            x, value = _splitmix64(x)
            state.append(value)
        self.s = state

    def next_u64(self) -> int:
        s = self.s
        result = (_rotl((s[1] * 5) & _MASK64, 7) * 9) & _MASK64
        t = (s[1] << 17) & _MASK64
        s[2] ^= s[0]
        s[3] ^= s[1]
        s[1] ^= s[2]
        s[0] ^= s[3]
        s[2] ^= t
        s[3] = _rotl(s[3], 45)
        return result

    def below(self, k: int) -> int:
        """Integer in [0, k) — same plain-modulo draw as the kernel."""
        return self.next_u64() % k

    def random(self) -> float:
        """Double in [0, 1) from the top 53 bits of one draw."""
        return (self.next_u64() >> 11) * (1.0 / 9007199254740992.0)

    def shuffle(self, arr: List[int]) -> None:
        """Backward Fisher-Yates, one ``below`` draw per step."""
        for t in range(len(arr) - 1, 0, -1):
            q = self.below(t + 1)
            arr[t], arr[q] = arr[q], arr[t]


# --------------------------------------------------------------------- walk
class MirrorWalk:
    """One walk of the compiled engine, advanced in pure Python.

    ``pi``/``pd``/``wd``/``consts`` use the kernel's parameter layout (see
    :mod:`repro.core.cwalk`); ``seed`` feeds the embedded RNG; ``given``
    skips the initial permutation draw (mirroring ``use_given``).
    """

    def __init__(
        self,
        pi: Sequence[int],
        pd: Sequence[float],
        wd: Sequence[int],
        consts: Sequence[int],
        seed: int,
        given: Optional[Sequence[int]] = None,
    ) -> None:
        (
            self.n,
            self.family,
            self.target,
            self.max_iter,
            self.tenure,
            self.reset_limit,
            self.reset_k,
            self.restart_limit,
            self.max_restarts,
            self.clear_tabu,
            self.dedicated,
            self.D,
            _wx,
            self.off,
            _l,
            _nconsts,
        ) = [int(v) for v in pi[:16]]
        self.plateau_p = float(pd[0])
        self.localmin_p = float(pd[1])
        self.wd = [int(v) for v in wd]
        self.consts = [int(v) for v in consts][: _nconsts]
        self.rng = Xoshiro256(int(seed))
        if given is None:
            perm = list(range(self.n))
            self.rng.shuffle(perm)
        else:
            perm = [int(v) for v in given]
        self.perm = perm
        self.cost = self._cost(perm)
        self.tabu = [0] * self.n
        self.errs = [0] * self.n
        self.err_valid = False
        self.iteration = 0
        self.swaps = 0
        self.plateau_moves = 0
        self.local_minima = 0
        self.resets = 0
        self.restarts = 0
        self.marked_since_reset = 0
        self.iters_since_restart = 0
        self.best_cost = self.cost
        self.best = list(perm)
        self.status = 0  # 0 running, 1 solved, 2 max_iterations

    # ----------------------------------------------------- brute-force family
    def _cost(self, p: Sequence[int]) -> int:
        n = self.n
        if self.family == 0:  # costas: weighted duplicates per triangle row
            cost = 0
            for d in range(1, self.D + 1):
                w = self.wd[d - 1]
                seen = set()
                for k in range(n - d):
                    v = p[k + d] - p[k]
                    if v in seen:
                        cost += w
                    else:
                        seen.add(v)
            return cost
        if self.family == 1:  # queens: extra occupants per diagonal
            up = {}
            down = {}
            for i in range(n):
                up[i + p[i]] = up.get(i + p[i], 0) + 1
                down[i - p[i]] = down.get(i - p[i], 0) + 1
            return sum(c - 1 for c in up.values() if c > 1) + sum(
                c - 1 for c in down.values() if c > 1
            )
        counts = {}  # all-interval: extra occurrences per |difference|
        for k in range(n - 1):
            v = abs(p[k + 1] - p[k])
            counts[v] = counts.get(v, 0) + 1
        return sum(c - 1 for c in counts.values() if c > 1)

    def _errors(self, p: Sequence[int]) -> List[int]:
        n = self.n
        errs = [0] * n
        if self.family == 0:  # repeats (beyond the first) hit both columns
            for d in range(1, self.D + 1):
                w = self.wd[d - 1]
                seen = set()
                for k in range(n - d):
                    v = p[k + d] - p[k]
                    if v in seen:
                        errs[k] += w
                        errs[k + d] += w
                    else:
                        seen.add(v)
            return errs
        if self.family == 1:  # co-occupants on the two diagonals through i
            up = {}
            down = {}
            for i in range(n):
                up[i + p[i]] = up.get(i + p[i], 0) + 1
                down[i - p[i]] = down.get(i - p[i], 0) + 1
            return [up[i + p[i]] - 1 + down[i - p[i]] - 1 for i in range(n)]
        seen = set()  # repeated intervals blame both endpoints
        for k in range(n - 1):
            v = abs(p[k + 1] - p[k])
            if v in seen:
                errs[k] += 1
                errs[k + 1] += 1
            else:
                seen.add(v)
        return errs

    def _deltas(self, i: int) -> List[int]:
        p = self.perm
        base = self.cost
        deltas = [0] * self.n
        for j in range(self.n):
            if j == i:
                continue
            p[i], p[j] = p[j], p[i]
            deltas[j] = self._cost(p) - base
            p[i], p[j] = p[j], p[i]
        deltas[i] = _I64_MAX
        return deltas

    # --------------------------------------------------------------- resets
    def _generic_reset(self) -> None:
        rng, p, n, k = self.rng, self.perm, self.n, self.reset_k
        idx = list(range(n))
        for t in range(k):  # partial Fisher-Yates: k distinct positions
            q = t + rng.below(n - t)
            idx[t], idx[q] = idx[q], idx[t]
        vals = [p[idx[t]] for t in range(k)]
        rng.shuffle(vals)
        for t in range(k):
            p[idx[t]] = vals[t]
        self.cost = self._cost(p)

    def _dedicated_reset(self) -> None:
        rng, p, n = self.rng, self.perm, self.n
        errs, entry_cost = self.errs, self.cost
        worst = max(errs)
        worst_cols = [k for k in range(n) if errs[k] == worst]
        vm = worst_cols[rng.below(len(worst_cols))]

        cands: List[List[int]] = []
        for t in range(n - 1):  # family 1: sub-arrays through vm, both shifts
            lo, hi = (t, vm) if t < vm else (vm, t + 1)
            left = list(p)
            left[lo:hi] = p[lo + 1 : hi + 1]
            left[hi] = p[lo]
            right = list(p)
            right[lo + 1 : hi + 1] = p[lo:hi]
            right[lo] = p[hi]
            cands.append(left)
            cands.append(right)
        for c in self.consts:  # family 2: add a constant modulo n
            cands.append([(v + c) % n for v in p])
        erroneous = [k for k in range(n) if errs[k] > 0 and k != vm]
        if erroneous:  # family 3: prefix shift at up to 3 random error columns
            rng.shuffle(erroneous)
            for e in erroneous[:3]:
                if e < 1:
                    continue
                cand = list(p)
                cand[0:e] = p[1 : e + 1]
                cand[e] = p[0]
                cands.append(cand)

        costs = [self._cost(c) for c in cands]
        order = list(range(len(cands)))
        rng.shuffle(order)
        chosen = -1
        best = _I64_MAX
        for t in order:  # first strict improvement wins
            if costs[t] < entry_cost:
                chosen = t
                break
            best = min(best, costs[t])
        if chosen < 0:  # else uniform among minimum-cost candidates
            ties = [t for t in order if costs[t] == best]
            chosen = ties[rng.below(len(ties))]
        self.perm = cands[chosen]
        self.cost = costs[chosen]

    # ------------------------------------------------------------------ run
    def run(self, steps: int) -> bool:
        """Advance up to *steps* iterations; ``True`` while still running."""
        rng = self.rng
        executed = 0
        while True:
            if self.cost <= self.target:
                self.status = 1
                break
            if self.max_iter >= 0 and self.iteration >= self.max_iter:
                self.status = 2
                break
            if executed >= steps:
                break
            self.iteration += 1
            executed += 1
            self.iters_since_restart += 1
            n, p, it = self.n, self.perm, self.iteration

            if not self.err_valid:
                self.errs = self._errors(p)
                self.err_valid = True

            # Culprit: tabu-masked argmax with uniform tie-break; when every
            # variable is tabu the mask is dropped (the all-tabu edge case).
            active = [self.tabu[k] >= it for k in range(n)]
            masked = any(active) and not all(active)
            values = [
                -1 if (masked and active[k]) else self.errs[k] for k in range(n)
            ]
            top = max(values)
            ties = [k for k in range(n) if values[k] == top]
            culprit = ties[rng.below(len(ties))]

            deltas = self._deltas(culprit)
            best_delta = min(deltas)
            take = marked = False
            if best_delta < 0:
                take = True
            elif best_delta == 0:
                if rng.random() < self.plateau_p:
                    take = True
                    self.plateau_moves += 1
                else:
                    marked = True
            else:
                self.local_minima += 1
                if rng.random() < self.localmin_p:
                    take = True
                else:
                    marked = True
            if take:
                partners = [k for k in range(n) if deltas[k] == best_delta]
                partner = partners[rng.below(len(partners))]
                p[culprit], p[partner] = p[partner], p[culprit]
                self.cost += best_delta
                self.swaps += 1
                self.err_valid = False
            if marked:
                self.tabu[culprit] = it + self.tenure
                self.marked_since_reset += 1
                if self.marked_since_reset >= self.reset_limit:
                    self.resets += 1
                    if self.family == 0 and self.dedicated:
                        self._dedicated_reset()
                    else:
                        self._generic_reset()
                    self.err_valid = False
                    self.marked_since_reset = 0
                    if self.clear_tabu:
                        self.tabu = [0] * n
            if (
                self.restart_limit >= 0
                and self.iters_since_restart >= self.restart_limit
                and self.restarts < self.max_restarts
            ):
                self.restarts += 1
                fresh = list(range(n))
                rng.shuffle(fresh)
                self.perm = fresh
                self.cost = self._cost(fresh)
                self.err_valid = False
                self.tabu = [0] * n
                self.marked_since_reset = 0
                self.iters_since_restart = 0
            p = self.perm
            if self.cost < self.best_cost:
                self.best_cost = self.cost
                self.best = list(p)
        return self.status == 0
