"""Instrumentation hooks for the Adaptive Search engine.

The engine accepts an optional callback that is notified of every significant
event (move taken, plateau followed, variable marked tabu, reset, restart,
solution found).  Callbacks are how the examples plot cost traces and how the
ablation benchmarks count events without modifying the engine.

Callbacks must be cheap: they run inside the innermost loop.  Compose several
with :class:`CallbackList`.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Sequence

__all__ = [
    "IterationCallback",
    "CallbackList",
    "CostTraceRecorder",
    "EventCounter",
    "EVENT_NAMES",
]

#: Events emitted by the engine, in no particular order.
EVENT_NAMES: Sequence[str] = (
    "improving_move",
    "plateau_move",
    "tabu_mark",
    "local_minimum",
    "reset",
    "custom_reset",
    "restart",
    "solution",
)


class IterationCallback(Protocol):
    """Protocol for engine instrumentation.

    ``on_iteration`` runs once per engine iteration *after* the move decision;
    ``on_event`` runs for each discrete event (see :data:`EVENT_NAMES`).
    Implementations may define either or both; missing methods are tolerated.
    """

    def on_iteration(self, iteration: int, cost: int) -> None:  # pragma: no cover
        ...

    def on_event(self, event: str, iteration: int, cost: int) -> None:  # pragma: no cover
        ...


def _call_iteration(cb, iteration: int, cost: int) -> None:
    hook = getattr(cb, "on_iteration", None)
    if hook is not None:
        hook(iteration, cost)


def _call_event(cb, event: str, iteration: int, cost: int) -> None:
    hook = getattr(cb, "on_event", None)
    if hook is not None:
        hook(event, iteration, cost)


class CallbackList:
    """Broadcasts engine notifications to several callbacks."""

    def __init__(self, callbacks: Sequence[IterationCallback] = ()) -> None:
        self._callbacks: List[IterationCallback] = list(callbacks)

    def add(self, callback: IterationCallback) -> None:
        """Append another callback."""
        self._callbacks.append(callback)

    def __len__(self) -> int:
        return len(self._callbacks)

    def __bool__(self) -> bool:
        # An empty list is falsy so the engine can skip dispatch entirely on
        # its innermost loop; any registered callback makes it truthy.
        return bool(self._callbacks)

    def on_iteration(self, iteration: int, cost: int) -> None:
        for cb in self._callbacks:
            _call_iteration(cb, iteration, cost)

    def on_event(self, event: str, iteration: int, cost: int) -> None:
        for cb in self._callbacks:
            _call_event(cb, event, iteration, cost)

    def __len__(self) -> int:
        return len(self._callbacks)


class CostTraceRecorder:
    """Records the cost at every iteration (optionally subsampled).

    Parameters
    ----------
    every:
        Record one sample every ``every`` iterations (1 = every iteration).
    """

    def __init__(self, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"'every' must be >= 1, got {every}")
        self.every = every
        self.iterations: List[int] = []
        self.costs: List[int] = []

    def on_iteration(self, iteration: int, cost: int) -> None:
        if iteration % self.every == 0:
            self.iterations.append(iteration)
            self.costs.append(cost)

    def on_event(self, event: str, iteration: int, cost: int) -> None:
        # The trace only samples iterations; events are ignored.
        return

    def __len__(self) -> int:
        return len(self.costs)


class EventCounter:
    """Counts every engine event by name (used heavily by the ablation benches)."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {name: 0 for name in EVENT_NAMES}

    def on_iteration(self, iteration: int, cost: int) -> None:
        return

    def on_event(self, event: str, iteration: int, cost: int) -> None:
        self.counts[event] = self.counts.get(event, 0) + 1

    def __getitem__(self, event: str) -> int:
        return self.counts.get(event, 0)
