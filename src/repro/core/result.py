"""Result and statistics objects returned by solvers.

Every solver in this repository (Adaptive Search, the baselines and the
parallel drivers) returns a :class:`SolveResult`, so the analysis and
benchmark layers can treat them uniformly: Table I of the paper reports, for
each instance, the solving time, the number of iterations and the number of
local minima encountered — exactly the counters collected here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

__all__ = ["SolveResult", "RunLimits"]


@dataclass(frozen=True)
class RunLimits:
    """Why a run may be allowed to end without a solution.

    ``max_iterations`` and ``max_time`` mirror :class:`repro.core.params.ASParameters`
    and the wall-clock limit of the parallel drivers; ``external_stop`` records
    that another walk of a multi-walk run found a solution first.
    """

    max_iterations: Optional[int] = None
    max_time: Optional[float] = None
    external_stop: bool = False


@dataclass
class SolveResult:
    """Outcome of one solver run.

    Attributes
    ----------
    solved:
        ``True`` iff the returned configuration reaches the target cost.
    configuration:
        Final (best) configuration, 0-based permutation.
    cost:
        Cost of :attr:`configuration` (0 for a solution).
    iterations:
        Number of engine iterations executed.
    local_minima:
        Iterations at which no improving move existed (the quantity of
        Table I's "Local min" column).
    plateau_moves, resets, restarts, swaps:
        Additional engine counters.
    wall_time:
        Wall-clock seconds spent inside the solver.
    seed:
        Integer seed of the run when known (parallel workers always set it).
    stop_reason:
        One of ``"solved"``, ``"max_iterations"``, ``"max_restarts"``,
        ``"external_stop"``, ``"max_time"``.
    solver:
        Name of the solver that produced the result.
    problem:
        Description of the problem instance (``problem.describe()``).
    extra:
        Free-form, solver-specific metrics (e.g. CP node counts, DS
        synthesis-phase statistics, parallel-walk indices).
    """

    solved: bool
    configuration: np.ndarray
    cost: int
    iterations: int = 0
    local_minima: int = 0
    plateau_moves: int = 0
    resets: int = 0
    restarts: int = 0
    swaps: int = 0
    wall_time: float = 0.0
    seed: Optional[int] = None
    stop_reason: str = "solved"
    solver: str = "adaptive-search"
    problem: str = ""
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.configuration = np.asarray(self.configuration, dtype=np.int64)

    # ------------------------------------------------------------------ views
    @property
    def iterations_per_second(self) -> float:
        """Engine iteration rate; 0 when no time was recorded."""
        if self.wall_time <= 0:
            return 0.0
        return self.iterations / self.wall_time

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly dictionary (configuration as a plain list)."""
        return {
            "solved": self.solved,
            "configuration": [int(v) for v in self.configuration],
            "cost": int(self.cost),
            "iterations": int(self.iterations),
            "local_minima": int(self.local_minima),
            "plateau_moves": int(self.plateau_moves),
            "resets": int(self.resets),
            "restarts": int(self.restarts),
            "swaps": int(self.swaps),
            "wall_time": float(self.wall_time),
            "seed": self.seed,
            "stop_reason": self.stop_reason,
            "solver": self.solver,
            "problem": self.problem,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SolveResult":
        """Inverse of :meth:`as_dict` (used when results cross process boundaries)."""
        payload = dict(data)
        payload["configuration"] = np.asarray(payload["configuration"], dtype=np.int64)
        return cls(**payload)

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "solved" if self.solved else f"stopped ({self.stop_reason})"
        return (
            f"[{self.solver}] {self.problem or 'problem'}: {status} "
            f"cost={self.cost} iters={self.iterations} "
            f"local_min={self.local_minima} time={self.wall_time:.3f}s"
        )

    @staticmethod
    def best_of(results: Sequence["SolveResult"]) -> "SolveResult":
        """The best result of a collection: solved beats unsolved, then lowest
        cost, then fewest iterations (ties broken by earliest position)."""
        if not results:
            raise ValueError("best_of() needs at least one result")
        return min(
            results,
            key=lambda r: (not r.solved, r.cost, r.iterations),
        )
