"""Tuning parameters of the Adaptive Search engine.

The names follow the paper (Section III and Figure 1):

* ``tabu_tenure`` — number of iterations a "culprit" variable with no
  acceptable move stays frozen (``T`` in the base algorithm);
* ``reset_limit`` (``RL``) — number of simultaneously tabu variables that
  triggers a reset; the paper's Costas model uses ``RL = 1``;
* ``reset_percentage`` (``RP``) — fraction of the variables re-randomised by
  the *generic* reset; the paper's Costas model uses 5% (the dedicated Costas
  reset in :class:`repro.models.costas.CostasProblem` bypasses this);
* ``plateau_probability`` — probability of accepting an equal-cost move
  instead of marking the variable tabu (90–95% is reported to help a lot on
  Magic Square-like problems);
* ``restart_limit`` / ``max_restarts`` — iterations before a full restart and
  how many restarts are allowed;
* ``max_iterations`` — overall per-run budget (safety net; the paper's runs
  are unbounded);
* ``check_period`` — how many iterations between calls to the external stop
  check, which is how the parallel multi-walk termination message is polled
  ("every ``c`` iterations" in Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["ASParameters"]


@dataclass(frozen=True)
class ASParameters:
    """Immutable bundle of Adaptive Search tuning parameters.

    The defaults are the values the paper reports for the Costas Array
    Problem; :meth:`for_problem_size` derives the size-dependent ones.
    """

    #: Iterations a variable stays tabu once marked.
    tabu_tenure: int = 2
    #: Number of tabu variables that triggers a reset (``RL``).
    reset_limit: int = 1
    #: Fraction of variables re-randomised by the generic reset (``RP``).
    reset_percentage: float = 0.05
    #: Probability of following a plateau (accepting an equal-cost best move).
    plateau_probability: float = 0.9
    #: Probability of accepting the best *worsening* move when the culprit
    #: variable is at a local minimum, instead of marking it tabu (the
    #: ``prob_select_loc_min`` knob of the reference Adaptive Search library).
    local_min_accept_probability: float = 0.5
    #: Whether a reset clears the tabu marks of all variables.  Keeping the
    #: marks (``False``) forces the next iterations to work on different
    #: culprits after a reset, which helps break perturbation cycles.
    clear_tabu_on_reset: bool = True
    #: Iterations before a restart from a fresh random configuration
    #: (``None`` disables restarts).
    restart_limit: Optional[int] = None
    #: Maximum number of restarts (ignored when ``restart_limit`` is ``None``).
    max_restarts: int = 0
    #: Hard per-run iteration budget (``None`` = unbounded, as in the paper).
    max_iterations: Optional[int] = None
    #: Cost value at or below which the run is declared successful.
    target_cost: int = 0
    #: Iterations between external stop-checks (parallel termination polling).
    check_period: int = 64

    def __post_init__(self) -> None:
        if self.tabu_tenure < 1:
            raise ValueError(f"tabu_tenure must be >= 1, got {self.tabu_tenure}")
        if self.reset_limit < 1:
            raise ValueError(f"reset_limit must be >= 1, got {self.reset_limit}")
        if not 0.0 < self.reset_percentage <= 1.0:
            raise ValueError(
                f"reset_percentage must be in (0, 1], got {self.reset_percentage}"
            )
        if not 0.0 <= self.plateau_probability <= 1.0:
            raise ValueError(
                f"plateau_probability must be in [0, 1], got {self.plateau_probability}"
            )
        if not 0.0 <= self.local_min_accept_probability <= 1.0:
            raise ValueError(
                "local_min_accept_probability must be in [0, 1], got "
                f"{self.local_min_accept_probability}"
            )
        if self.restart_limit is not None and self.restart_limit < 1:
            raise ValueError(f"restart_limit must be >= 1, got {self.restart_limit}")
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {self.max_restarts}")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.check_period < 1:
            raise ValueError(f"check_period must be >= 1, got {self.check_period}")

    # ------------------------------------------------------------------ helpers
    def with_updates(self, **changes) -> "ASParameters":
        """Return a copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    @classmethod
    def for_costas(cls, order: int, **overrides) -> "ASParameters":
        """Parameters used by the paper's Costas model.

        ``RL = 1``, ``RP = 5%``, plateau probability 90%, a tabu tenure of
        ``order // 2`` kept across resets, a 50% probability of escaping a
        local minimum uphill instead of freezing the culprit, an iteration
        budget generous enough never to bind at the orders this repository
        benchmarks (but present so a pathological run cannot hang a
        test-suite), and a periodic restart whose period grows with the order
        (the paper notes that restarting from scratch is part of the method;
        here it also bounds the rare pathological walks a pure-Python engine
        cannot afford to ride out).
        """
        if order < 3:
            raise ValueError(f"Costas parameters need order >= 3, got {order}")
        defaults = dict(
            tabu_tenure=max(2, order // 2),
            reset_limit=1,
            reset_percentage=0.05,
            plateau_probability=0.9,
            local_min_accept_probability=0.5,
            clear_tabu_on_reset=False,
            restart_limit=1_000 * 2 ** max(0, order - 10),
            max_restarts=1_000_000_000,
            max_iterations=50_000_000,
            target_cost=0,
            check_period=64,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def for_problem_size(cls, n: int, **overrides) -> "ASParameters":
        """Generic defaults for an ``n``-variable permutation problem."""
        if n < 2:
            raise ValueError(f"problem size must be >= 2, got {n}")
        defaults = dict(
            tabu_tenure=max(2, n // 10),
            reset_limit=max(1, int(round(n * 0.1))),
            reset_percentage=0.1,
            plateau_probability=0.9,
            local_min_accept_probability=0.0,
            restart_limit=None,
            max_restarts=0,
            max_iterations=10_000_000,
        )
        defaults.update(overrides)
        return cls(**defaults)
