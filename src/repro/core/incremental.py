"""Incremental count-table evaluation primitives.

Every permutation model in this repository whose cost is "penalise repeated
values" — repeated differences in a triangle row (Costas), repeated queens on
a diagonal (N-Queens), repeated intervals (All-Interval) — reduces to the same
bookkeeping: an *occurrence count table* ``cnt`` per constraint family, with

    cost contribution of a family = sum_v max(cnt[v] - 1, 0)

(the number of "extra" occupants over all values ``v``).  A swap of two
variables touches only O(1) cells per family, so instead of re-scoring a
candidate configuration from scratch, its cost delta can be computed from the
count table and the small set of *events* the swap generates: each affected
cell removes its old value (sign ``-1``) and adds its new value (sign ``+1``).

The subtlety is that the events of one swap may collide — two affected cells
can hold the same value, an added value can equal a removed one — so the delta
is **not** the sum of independent per-event terms.  :func:`grouped_dup_delta`
resolves this exactly by grouping the events of each candidate by value: for a
value with current count ``c`` and net occurrence change ``m`` (adds minus
removes), the duplicate count changes by

    max(c + m - 1, 0) - max(c - 1, 0)

which is correct for any combination of simultaneous adds and removes.  The
whole computation is vectorised over an arbitrary batch of candidate moves
(the engine's hot path scores all ``n`` swaps of the culprit variable in one
call), which is what makes the O(n·d) scoring path faster in practice than
the O(n²·d·log n) full-rescoring path it replaces — see ``DESIGN.md`` for the
data-structure walk-through and measured numbers.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["dup_count", "grouped_dup_delta", "net_occurrence_change", "dup_delta_from_net"]

#: Cache of strictly-lower-triangular masks used by :func:`grouped_dup_delta`
#: to detect "is an earlier event slot holding the same value" (keyed by the
#: number of event slots, which is a per-model compile-time constant).
_LOWER_TRI: Dict[int, np.ndarray] = {}


def _lower_tri(m: int) -> np.ndarray:
    mask = _LOWER_TRI.get(m)
    if mask is None:
        mask = np.tril(np.ones((m, m), dtype=bool), -1)
        _LOWER_TRI[m] = mask
    return mask


def dup_count(counts: np.ndarray, axis=None):
    """Number of duplicate occupants of a count table: ``sum max(cnt - 1, 0)``.

    This is the quantity every count-table model's cost is built from (per
    family, before weighting).  ``axis`` is forwarded to the sum so per-row
    duplicate counts of a stacked table can be taken in one call.
    """
    return np.maximum(counts - 1, 0).sum(axis=axis)


def grouped_dup_delta(
    values: np.ndarray, signs: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Exact duplicate-count delta of a batch of event groups.

    Parameters
    ----------
    values:
        ``(..., m)`` integer array; ``values[..., k]`` is the count-table
        index touched by event ``k`` of a candidate move.  Events of one
        candidate (the last axis) are grouped by equal value; events with
        different leading indices never interact, so callers batch candidates
        (and independent constraint families) along the leading axes.
    signs:
        ``(..., m)`` array of ``-1`` (value removed), ``+1`` (value added) or
        ``0`` (padding for an event that does not apply to this candidate —
        e.g. an off-board cell).  Padded events must still carry an in-range
        ``values`` entry (any one will do): a zero sign makes them contribute
        nothing even when they collide with a real event.
    counts:
        ``(..., m)`` array with the *current* occurrence count of each event's
        value (``counts[..., k] = cnt[values[..., k]]``, gathered by the
        caller from its table — the caller knows which table row each event
        addresses).

    Returns
    -------
    ``(...)`` integer array: for each candidate, the change of
    ``sum_v max(cnt[v] - 1, 0)`` if all its events were applied at once.

    Notes
    -----
    For each group of events sharing a value ``v`` the net occurrence change
    is ``m_v = sum of signs``; the delta contribution is
    ``max(c_v + m_v - 1, 0) - max(c_v - 1, 0)`` counted once per distinct
    value.  The implementation anchors each group at its first event slot
    (pairwise equality against earlier slots) so no sorting is needed: with
    the small, fixed number of event slots per move (8 for the Costas model,
    4 per diagonal family for N-Queens) the pairwise mask is cheaper than an
    ``argsort`` and keeps everything a handful of vectorised operations.
    """
    m = values.shape[-1]
    eq = values[..., :, None] == values[..., None, :]  # (..., m, m)
    net = (eq * signs[..., None, :]).sum(axis=-1)  # net change of each event's value
    first = ~((eq & _lower_tri(m)).any(axis=-1))  # event is its group's anchor
    delta = np.maximum(counts + net - 1, 0) - np.maximum(counts - 1, 0)
    return np.where(first, delta, 0).sum(axis=-1)


def net_occurrence_change(
    added_keys: np.ndarray, removed_keys: np.ndarray, n_buckets: int
) -> np.ndarray:
    """Net occurrence change per bucket of a batch of add/remove events.

    ``added_keys`` / ``removed_keys`` are integer arrays (any shape) of bucket
    indices in ``[0, n_buckets)``; the result is the length-``n_buckets``
    vector ``(#adds − #removes)`` per bucket.  Callers encode *(candidate
    move, table row, value)* into a single flat key so one pair of
    ``bincount`` calls aggregates every event of every candidate at once —
    colliding events of one candidate simply land in the same bucket, which
    is exactly the net change :func:`dup_delta_from_net` needs.  Events that
    must not count (off-board cells, overlap duplicates) are steered to a
    per-candidate dump bucket the caller discards.

    This is the hot-path formulation: the per-event pairwise grouping of
    :func:`grouped_dup_delta` costs O(events²) comparisons per candidate and
    (worse, in NumPy) reductions over tiny trailing axes, while two
    ``bincount`` passes are one C loop each regardless of how the events
    collide.
    """
    return np.bincount(added_keys.ravel(), minlength=n_buckets) - np.bincount(
        removed_keys.ravel(), minlength=n_buckets
    )


def dup_delta_from_net(counts: np.ndarray, net: np.ndarray) -> np.ndarray:
    """Duplicate-count change per bucket given current counts and net changes.

    Elementwise ``max(c + m − 1, 0) − max(c − 1, 0)`` (the exact change of
    ``max(cnt − 1, 0)`` when a bucket with count ``c`` nets ``m`` more
    occurrences), computed as ``max(c + m, 1) − max(c, 1)`` to save two
    subtractions; buckets with ``m = 0`` contribute 0, so the caller may sum
    over a whole (mostly untouched) table slice.  Broadcasting applies:
    ``counts`` is typically the current ``(rows, values)`` table and ``net``
    a ``(candidates, rows, values)`` batch.
    """
    return np.maximum(counts + net, 1) - np.maximum(counts, 1)
