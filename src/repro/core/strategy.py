"""The shared strategy layer: one loop harness for every search solver.

Before this module existed, each solver (the Adaptive Search engine and the
four baselines) re-implemented the same run scaffolding: wall-clock and
iteration budgets, periodic ``stop_check`` polling, best-so-far tracking,
restart/reset accounting and the final :class:`~repro.core.result.SolveResult`
assembly.  Besides the duplication, the copies drifted — some solvers lacked
``stop_check``/``max_time``/``callbacks`` entirely, which meant they could not
be multi-walked, served or cancelled.

Two pieces live here:

* :class:`SearchStrategy` — the protocol every registry-addressable solver
  satisfies.  A strategy is a reusable object whose ``solve`` method takes a
  :class:`~repro.core.problem.PermutationProblem`, a seed and the uniform
  run-control keywords (``params``, ``stop_check``, ``max_time``,
  ``callbacks``) and returns a :class:`~repro.core.result.SolveResult`.
* :class:`StrategyRun` — the loop harness.  A solver creates one per run; the
  harness owns the clock, the iteration counter, the budget/stop checks (all
  performed by :meth:`StrategyRun.running`, polled every ``check_period``
  iterations exactly like the paper's parallel termination test), the shared
  statistics counters, best-configuration tracking and result assembly.  The
  solver keeps only its actual search logic.

The harness sits on the hot path of every solver, so its per-iteration work is
one method call doing a handful of integer comparisons; everything costly
(``time.perf_counter``, the external ``stop_check``) is amortised behind the
``check_period`` modulus, as before the refactor.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional, Protocol, runtime_checkable

import numpy as np

from repro.core.callbacks import CallbackList, IterationCallback
from repro.core.problem import PermutationProblem
from repro.core.result import SolveResult
from repro.core.rng import SeedLike

__all__ = ["SearchStrategy", "StrategyRun"]


@runtime_checkable
class SearchStrategy(Protocol):
    """Protocol of a registry-addressable solver.

    Implementations are reusable and stateless between calls to :meth:`solve`;
    per-run state lives in the :class:`StrategyRun` they create.  ``params``
    accepts the solver's own parameter dataclass (``None`` = the instance
    default), and every solver honours the three run-control hooks:
    ``stop_check`` (polled every ``check_period`` iterations), ``max_time``
    (wall-clock budget, polled on the same cadence) and ``callbacks``
    (instrumentation; solvers that have no events to report may ignore it).
    """

    def solve(
        self,
        problem: PermutationProblem,
        seed: SeedLike = None,
        *,
        params: Optional[Any] = None,
        stop_check: Optional[Callable[[], bool]] = None,
        callbacks: Optional[IterationCallback] = None,
        max_time: Optional[float] = None,
    ) -> SolveResult:  # pragma: no cover - protocol signature
        ...


class StrategyRun:
    """Per-run bookkeeping shared by every search strategy.

    The harness replicates the exact loop-head semantics the solvers used
    before the refactor, so seeded runs are bit-identical across the port:

    1. the run ends as soon as the controlling cost reaches ``target_cost``;
    2. then the iteration budget is checked (*before* the iteration counter
       advances, so ``max_iterations=k`` allows exactly ``k`` iterations);
    3. every ``check_period`` iterations (including iteration 0, i.e. before
       any work) the external ``stop_check`` and the wall clock are polled;
    4. only then does the iteration counter advance.

    Counters (``swaps``, ``local_minima``, ``plateau_moves``, ``resets``,
    ``restarts``) are plain attributes the solver increments; the harness
    folds them into the :class:`SolveResult` in :meth:`finish`.
    """

    __slots__ = (
        "problem",
        "solver_name",
        "seed",
        "target_cost",
        "max_iterations",
        "check_period",
        "stop_check",
        "max_time",
        "notifier",
        "observe",
        "start_time",
        "iteration",
        "swaps",
        "local_minima",
        "plateau_moves",
        "resets",
        "restarts",
        "stop_reason",
        "best_cost",
        "best_config",
    )

    def __init__(
        self,
        problem: PermutationProblem,
        solver_name: str,
        seed: SeedLike = None,
        *,
        target_cost: int = 0,
        max_iterations: Optional[int] = None,
        check_period: int = 64,
        stop_check: Optional[Callable[[], bool]] = None,
        max_time: Optional[float] = None,
        callbacks: Optional[IterationCallback] = None,
    ) -> None:
        self.problem = problem
        self.solver_name = solver_name
        self.seed = int(seed) if isinstance(seed, (int, np.integer)) else None
        self.target_cost = target_cost
        self.max_iterations = max_iterations
        self.check_period = check_period
        self.stop_check = stop_check
        self.max_time = max_time
        notifier = callbacks if callbacks is not None else CallbackList()
        self.notifier = notifier
        # With no instrumentation registered, skip dispatch on the hot loop.
        self.observe = bool(notifier)
        self.start_time = time.perf_counter()
        self.iteration = 0
        self.swaps = 0
        self.local_minima = 0
        self.plateau_moves = 0
        self.resets = 0
        self.restarts = 0
        self.stop_reason = "solved"
        self.best_cost: Optional[int] = None
        self.best_config: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ loop
    def running(self, cost: int) -> bool:
        """Loop-head check: ``while run.running(cost):`` drives the search.

        Returns ``False`` (recording ``stop_reason``) when the controlling
        *cost* reached the target, a budget is exhausted or the external stop
        fired; otherwise advances the iteration counter and returns ``True``.
        """
        if cost <= self.target_cost:
            return False
        if self.max_iterations is not None and self.iteration >= self.max_iterations:
            self.stop_reason = "max_iterations"
            return False
        if self.iteration % self.check_period == 0:
            if self.stop_check is not None and self.stop_check():
                self.stop_reason = "external_stop"
                return False
            if (
                self.max_time is not None
                and time.perf_counter() - self.start_time >= self.max_time
            ):
                self.stop_reason = "max_time"
                return False
        self.iteration += 1
        return True

    # ------------------------------------------------------------------ best
    def track_best(self, cost: int) -> None:
        """Record the problem's current configuration if *cost* improves on it.

        Must be called while the problem actually holds the configuration the
        cost belongs to (the harness copies it via ``problem.configuration()``).
        """
        if self.best_cost is None or cost < self.best_cost:
            self.best_cost = cost
            self.best_config = self.problem.configuration()

    def record_best(self, cost: int, config: np.ndarray) -> None:
        """Like :meth:`track_best` for solvers that already hold a copy."""
        if self.best_cost is None or cost < self.best_cost:
            self.best_cost = cost
            self.best_config = config.copy()

    # ------------------------------------------------------------- callbacks
    def event(self, name: str, cost: int) -> None:
        """Dispatch a discrete engine event to the callbacks (if any)."""
        self.observe and self.notifier.on_event(name, self.iteration, cost)

    def iteration_done(self, cost: int) -> None:
        """Dispatch the per-iteration instrumentation hook (if any)."""
        self.observe and self.notifier.on_iteration(self.iteration, cost)

    # ---------------------------------------------------------------- result
    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self.start_time

    def finish(self, extra: Optional[Dict[str, Any]] = None) -> SolveResult:
        """Assemble the :class:`SolveResult` for this run.

        ``solved`` is judged on the best cost seen; on success the harness
        emits the ``"solution"`` event, mirroring the engine's historical
        behaviour.
        """
        best_cost = self.best_cost if self.best_cost is not None else self.problem.cost()
        best_config = (
            self.best_config
            if self.best_config is not None
            else self.problem.configuration()
        )
        solved = best_cost <= self.target_cost
        if solved:
            self.event("solution", best_cost)
        return SolveResult(
            solved=solved,
            configuration=best_config,
            cost=int(best_cost),
            iterations=self.iteration,
            local_minima=self.local_minima,
            plateau_moves=self.plateau_moves,
            resets=self.resets,
            restarts=self.restarts,
            swaps=self.swaps,
            wall_time=self.elapsed,
            seed=self.seed,
            stop_reason="solved" if solved else self.stop_reason,
            solver=self.solver_name,
            problem=self.problem.describe(),
            extra=extra if extra is not None else {},
        )
