"""Problem interface consumed by the Adaptive Search engine.

Adaptive Search describes a CSP through *error functions*: a global cost that
is zero exactly on solutions, and a projection of that cost onto variables so
the engine can pick the "most erroneous" one.  For permutation problems (the
class this repository reproduces — CAP, N-Queens, All-Interval, Magic Square)
the move neighbourhood is the set of transpositions, so a problem additionally
exposes how its cost changes under a swap.

Two base classes are provided:

* :class:`PermutationProblem` — the abstract contract.  Concrete models that
  maintain incremental state (like the Costas difference-triangle model)
  subclass it directly and override the incremental hooks.
* :class:`FunctionalPermutationProblem` — an adapter that builds a model from
  a plain ``cost(perm)`` function with full recomputation.  It is slow but
  obviously correct, which makes it the reference implementation the
  test-suite uses to validate the incremental models, and a convenient way
  for downstream users to try the engine on a new problem in a few lines.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.rng import SeedLike, ensure_generator
from repro.exceptions import ModelError

__all__ = ["PermutationProblem", "FunctionalPermutationProblem"]


class PermutationProblem(abc.ABC):
    """A permutation-encoded CSP as seen by the Adaptive Search engine.

    The object is **stateful**: it holds the current configuration, and the
    engine mutates it through :meth:`apply_swap`, :meth:`set_configuration`
    and the reset hooks.  State is initialised by :meth:`initialise`.

    Subclasses must implement :meth:`cost`, :meth:`variable_errors`,
    :meth:`swap_delta` and :meth:`apply_swap`; everything else has sensible
    defaults.

    **Incremental API surface.**  Models that maintain incremental state
    (count tables, cached error vectors — see :mod:`repro.core.incremental`)
    advertise it with :attr:`incremental` and interact with the engine through
    two hooks:

    * :meth:`apply_swap` accepts an optional ``delta`` keyword — the exact
      cost change of the swap as previously reported by :meth:`swap_deltas` /
      :meth:`swap_delta`.  The engine always passes it, so an incremental
      model can update its cached cost with one addition instead of
      re-deriving the delta.  ``delta`` is a trusted exact value, not a hint:
      passing a wrong one corrupts the cached cost (which
      :meth:`check_consistency` will catch).
    * :meth:`invalidate_caches` is the dirty-state hook: it marks every
      derived quantity (cost, error vector, count tables) stale.  Models call
      it internally whenever their configuration changes; external callers
      that mutate state behind the model's back (tests, debugging tools) can
      call it directly.  :meth:`set_configuration` must always rebuild from
      scratch, so it subsumes this hook.
    """

    def __init__(self, size: int, name: str = "") -> None:
        if size < 2:
            raise ModelError(f"a permutation problem needs at least 2 variables, got {size}")
        self._size = int(size)
        self._name = name or type(self).__name__

    # ------------------------------------------------------------------ basics
    @property
    def size(self) -> int:
        """Number of variables (length of the permutation)."""
        return self._size

    @property
    def name(self) -> str:
        """Human-readable problem name (used in logs, results and tables)."""
        return self._name

    @property
    def incremental(self) -> bool:
        """Whether this model evaluates moves through incremental state.

        Purely informative (benchmarks and experiment manifests report it);
        the engine works identically either way.
        """
        return False

    # -------------------------------------------------------------- life cycle
    def initial_configuration(self, rng: np.random.Generator) -> np.ndarray:
        """Produce a fresh starting configuration (default: uniform random)."""
        return rng.permutation(self._size).astype(np.int64)

    def initialise(self, rng: SeedLike = None) -> np.ndarray:
        """Reset the problem to a fresh initial configuration and return it."""
        generator = ensure_generator(rng)
        config = self.initial_configuration(generator)
        self.set_configuration(config)
        return config

    @abc.abstractmethod
    def set_configuration(self, perm: Sequence[int] | np.ndarray) -> None:
        """Load an arbitrary configuration (rebuilding any incremental state)."""

    @abc.abstractmethod
    def configuration(self) -> np.ndarray:
        """Return a copy of the current configuration."""

    def load_trusted_configuration(self, perm: np.ndarray) -> None:
        """Install a configuration that is already known to be a permutation.

        The engine uses this for configurations it derived from the problem's
        own state (resets, restarts, reset-candidate perturbations), where
        re-validating "is this a permutation of 0..n-1" on every install is
        pure overhead on the hot path.  The default just delegates to
        :meth:`set_configuration`; incremental models may override it to skip
        validation (never the rebuild).  External callers with untrusted data
        must use :meth:`set_configuration`.
        """
        self.set_configuration(perm)

    # ------------------------------------------------------------------- errors
    @abc.abstractmethod
    def cost(self) -> int:
        """Global cost of the current configuration (0 iff solved)."""

    @abc.abstractmethod
    def variable_errors(self) -> np.ndarray:
        """Per-variable error vector of the current configuration."""

    @abc.abstractmethod
    def swap_delta(self, i: int, j: int) -> int:
        """Change in :meth:`cost` if variables *i* and *j* were swapped."""

    @abc.abstractmethod
    def apply_swap(self, i: int, j: int, delta: Optional[int] = None) -> int:
        """Swap variables *i* and *j*; return the new cost.

        ``delta``, when given, is the exact cost change of this swap (as
        previously computed by :meth:`swap_deltas` or :meth:`swap_delta`).
        Incremental implementations use it to skip re-deriving the delta;
        full-recompute implementations are free to ignore it.
        """

    def swap_deltas(self, i: int) -> np.ndarray:
        """Cost deltas of swapping *i* with every other variable.

        Returns an array ``deltas`` of length :attr:`size` where ``deltas[j]``
        is :meth:`swap_delta(i, j) <swap_delta>`; entry ``i`` itself is set to
        a large sentinel so the engine never "swaps a variable with itself".
        The default implementation simply loops; incremental models override
        it with a vectorised computation because this is the engine's hot path
        (one call per iteration, ``n - 1`` candidate moves).
        """
        deltas = np.empty(self._size, dtype=np.int64)
        for j in range(self._size):
            deltas[j] = 0 if j == i else self.swap_delta(i, j)
        deltas[i] = np.iinfo(np.int64).max
        return deltas

    def is_solution(self) -> bool:
        """Whether the current configuration satisfies every constraint."""
        return self.cost() == 0

    # ----------------------------------------------------------------- resets
    def custom_reset(self, rng: np.random.Generator) -> Optional[np.ndarray]:
        """Problem-specific escape from a local minimum.

        Return a complete replacement configuration, or ``None`` to let the
        engine apply its generic partial reset (re-randomise ``RP`` percent of
        the variables).  The default is ``None``; the Costas model overrides
        this with the paper's dedicated three-perturbation procedure.
        """
        return None

    # ------------------------------------------------------------- dirty state
    def invalidate_caches(self) -> None:
        """Mark every cached derived quantity (cost, errors, tables) stale.

        The default implementation does nothing — a full-recompute model has
        no caches.  Incremental models override it; they also call it
        internally from every mutating method, so ordinary engine use never
        needs to invoke this explicitly.
        """

    # ------------------------------------------------------------------ checks
    def check_consistency(self) -> None:
        """Verify internal incremental state against a recomputation.

        The default implementation does nothing; incremental models override
        it and the test-suite calls it after long runs.  It must raise
        ``AssertionError`` (or a subclass of :class:`ModelError`) on
        inconsistency.
        """

    def describe(self) -> str:
        """One-line description used in experiment manifests."""
        return f"{self.name}(n={self.size})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


class FunctionalPermutationProblem(PermutationProblem):
    """Adapter turning a plain cost function into a :class:`PermutationProblem`.

    Parameters
    ----------
    size:
        Number of variables.
    cost_fn:
        ``cost_fn(perm) -> int`` evaluating a full configuration; must return 0
        exactly on solutions.
    variable_errors_fn:
        Optional ``f(perm) -> np.ndarray``.  When omitted, the error of
        variable ``i`` is estimated as the cost decrease achievable by the best
        swap involving ``i`` (non-negative), which is expensive (O(n^2) cost
        evaluations) but requires no problem knowledge.
    name:
        Optional problem name.

    Every query recomputes from scratch; use this class for prototyping,
    reference checks and small instances only.
    """

    def __init__(
        self,
        size: int,
        cost_fn: Callable[[np.ndarray], int],
        variable_errors_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        name: str = "",
    ) -> None:
        super().__init__(size, name or "FunctionalProblem")
        self._cost_fn = cost_fn
        self._errors_fn = variable_errors_fn
        self._config = np.arange(size, dtype=np.int64)

    # ------------------------------------------------------------------ state
    def set_configuration(self, perm: Sequence[int] | np.ndarray) -> None:
        arr = np.asarray(perm, dtype=np.int64)
        if arr.shape != (self._size,):
            raise ModelError(
                f"expected a configuration of length {self._size}, got shape {arr.shape}"
            )
        if not np.array_equal(np.sort(arr), np.arange(self._size)):
            raise ModelError("configuration is not a permutation of 0..n-1")
        self._config = arr.copy()

    def configuration(self) -> np.ndarray:
        return self._config.copy()

    # ------------------------------------------------------------------ errors
    def cost(self) -> int:
        return int(self._cost_fn(self._config))

    def variable_errors(self) -> np.ndarray:
        if self._errors_fn is not None:
            errs = np.asarray(self._errors_fn(self._config), dtype=np.int64)
            if errs.shape != (self._size,):
                raise ModelError(
                    f"variable_errors_fn returned shape {errs.shape}, "
                    f"expected ({self._size},)"
                )
            return errs
        # Fallback: potential improvement of the best swap touching each variable.
        base = self.cost()
        errs = np.zeros(self._size, dtype=np.int64)
        for i in range(self._size):
            best = 0
            for j in range(self._size):
                if i == j:
                    continue
                best = min(best, self.swap_delta(i, j))
            errs[i] = -best
        return errs

    def swap_delta(self, i: int, j: int) -> int:
        before = self.cost()
        self._config[i], self._config[j] = self._config[j], self._config[i]
        after = int(self._cost_fn(self._config))
        self._config[i], self._config[j] = self._config[j], self._config[i]
        return after - before

    def apply_swap(self, i: int, j: int, delta: Optional[int] = None) -> int:
        # Reference adapter: always recompute; ``delta`` is deliberately ignored.
        self._config[i], self._config[j] = self._config[j], self._config[i]
        return self.cost()
