"""Optional C acceleration for the incremental evaluation subsystem.

``_kernels.c`` (same directory) holds dependency-free scalar kernels for the
Costas hot paths — swap scoring, swap application, error projection, table
rebuilds and reset-candidate scoring.  This module compiles it on first use
with the system C compiler (plain ``cc -O3 -shared -fPIC``; no Python headers
or build system involved) into a content-addressed cache under
``$XDG_CACHE_HOME/repro-ckernels`` and exposes it through :mod:`ctypes`.

The kernels are an *acceleration*, never a requirement: every entry point has
a bit-exact NumPy twin in :mod:`repro.models.costas`, and :func:`load`
degrades to ``None`` — silently selecting the NumPy path — when no compiler
is available, compilation fails, or ``REPRO_NO_CKERNELS`` is set (the
equivalence test-suite uses that switch to cover both paths).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

__all__ = ["load", "available"]

_SOURCE = Path(__file__).with_name("_kernels.c")

_i64 = ctypes.c_int64
_p64 = ctypes.c_void_p  # int64 array base addresses (numpy .ctypes.data)

#: argtypes/restype per exported kernel.
_SIGNATURES = {
    "costas_swap_deltas": (
        [_p64, _p64, _p64, _i64, _i64, _i64, _i64, _p64, _i64, _p64],
        None,
    ),
    "costas_swap_delta": (
        [_p64, _p64, _p64, _i64, _i64, _i64, _i64, _p64, _i64, _i64],
        _i64,
    ),
    "costas_apply": (
        [_p64, _p64, _p64, _i64, _i64, _i64, _i64, _p64, _i64, _i64],
        _i64,
    ),
    "costas_rebuild": (
        [_p64, _p64, _p64, _i64, _i64, _i64, _i64, _i64, _p64],
        _i64,
    ),
    "costas_errors": ([_p64, _i64, _i64, _p64, _p64, _i64, _p64], None),
    "costas_batch_costs": (
        [_p64, _i64, _i64, _i64, _i64, _p64, _p64, _i64, _p64],
        None,
    ),
}

_lib: Optional[ctypes.CDLL] = None
_loaded = False


def _build() -> Optional[ctypes.CDLL]:
    source = _SOURCE.read_bytes()
    tag = hashlib.sha256(source).hexdigest()[:16]
    cache_root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    cache_dir = Path(cache_root) / "repro-ckernels"
    cache_dir.mkdir(parents=True, exist_ok=True)
    shared_object = cache_dir / f"kernels-{tag}.so"
    if not shared_object.exists():
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache_dir)
        os.close(fd)
        try:
            compiler = os.environ.get("CC", "cc")
            subprocess.run(
                [compiler, "-O3", "-shared", "-fPIC", "-o", tmp, str(_SOURCE)],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp, shared_object)  # atomic: racing processes agree
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    lib = ctypes.CDLL(str(shared_object))
    for name, (argtypes, restype) in _SIGNATURES.items():
        fn = getattr(lib, name)
        fn.argtypes = argtypes
        fn.restype = restype
    return lib


def load() -> Optional[ctypes.CDLL]:
    """The compiled kernel library, or ``None`` when unavailable.

    The first call compiles (or reuses the cached build of) ``_kernels.c``;
    the outcome — library handle or ``None`` after any failure — is memoised
    for the life of the process.
    """
    global _lib, _loaded
    if _loaded:
        return _lib
    _loaded = True
    if os.environ.get("REPRO_NO_CKERNELS"):
        _lib = None
        return None
    try:
        _lib = _build()
    except Exception:  # no compiler, read-only FS, unexpected toolchain...
        _lib = None
    return _lib


def available() -> bool:
    """Whether the C kernels can be (or have been) loaded."""
    return load() is not None
