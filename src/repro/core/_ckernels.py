"""Optional C acceleration for the incremental evaluation subsystem.

``_kernels.c`` (same directory) holds dependency-free scalar kernels for the
Costas hot paths — swap scoring, swap application, error projection, table
rebuilds and reset-candidate scoring — plus the compiled walk engine
(``as_walk_init``/``as_walk_run``) that runs the whole Adaptive Search inner
loop in C for the Costas, queens and all-interval families.  This module
compiles the source on first use with the system C compiler (plain ``cc -O3
-shared -fPIC``; no Python headers or build system involved) into a
content-addressed cache under ``$XDG_CACHE_HOME/repro-ckernels`` and exposes
it through :mod:`ctypes`.

The kernels are an *acceleration*, never a requirement: every entry point has
a bit-exact NumPy twin (:mod:`repro.models.costas` for the delta kernels, the
RNG mirror in :mod:`repro.core.cwalk_mirror` for the walk engine), and
:func:`load` degrades to ``None`` — selecting the NumPy path — when no
compiler is available, compilation fails, or ``REPRO_NO_CKERNELS`` is set
(the equivalence test-suite uses that switch to cover both paths).  The
outcome of the first load is reported once through :mod:`logging` (including
the compiler's stderr on failure) so a silent fallback to NumPy is visible in
server logs; :func:`mode` exposes the same verdict programmatically for
``/stats``, ``/healthz`` and the CLI.

``REPRO_CKERNEL_CFLAGS`` appends extra compiler flags (whitespace-separated)
— the CI sanitiser job uses it to build the kernels with
``-fsanitize=address,undefined``.
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

__all__ = ["load", "available", "mode"]

_SOURCE = Path(__file__).with_name("_kernels.c")

_log = logging.getLogger("repro.ckernels")

_i64 = ctypes.c_int64
_p64 = ctypes.c_void_p  # int64 array base addresses (numpy .ctypes.data)
_pdbl = ctypes.c_void_p  # float64 array base addresses

#: argtypes/restype per exported kernel.
_SIGNATURES = {
    "costas_swap_deltas": (
        [_p64, _p64, _p64, _i64, _i64, _i64, _i64, _p64, _i64, _p64],
        None,
    ),
    "costas_swap_delta": (
        [_p64, _p64, _p64, _i64, _i64, _i64, _i64, _p64, _i64, _i64],
        _i64,
    ),
    "costas_apply": (
        [_p64, _p64, _p64, _i64, _i64, _i64, _i64, _p64, _i64, _i64],
        _i64,
    ),
    "costas_rebuild": (
        [_p64, _p64, _p64, _i64, _i64, _i64, _i64, _i64, _p64],
        _i64,
    ),
    "costas_errors": ([_p64, _i64, _i64, _p64, _p64, _i64, _p64], None),
    "costas_batch_costs": (
        [_p64, _i64, _i64, _i64, _i64, _p64, _p64, _i64, _p64],
        None,
    ),
    # --- compiled walk engine ---
    "walk_rng_stream": ([_i64, _i64, _p64], None),
    "walk_rng_draws": ([_i64, _i64, _i64, _p64, _pdbl], None),
    "as_walk_init": (
        [_p64, _p64, _i64, _p64, _i64, _p64, _p64, _p64, _p64, _p64, _p64],
        None,
    ),
    "as_walk_run": (
        [
            _p64,  # pi: int parameter block
            _pdbl,  # pd: double parameter block
            _p64,  # wd: costas distance weights
            _p64,  # consts: costas reset constants
            _i64,  # W
            _i64,  # steps
            _p64,  # state (W, WS_NSLOTS)
            _p64,  # perm (W, n)
            _p64,  # tabu (W, n)
            _p64,  # errs (W, n)
            _p64,  # best (W, n)
            _p64,  # tbl1
            _p64,  # tbl2
            _p64,  # scratch
        ],
        _i64,
    ),
}

_lib: Optional[ctypes.CDLL] = None
_loaded = False


def _build() -> ctypes.CDLL:
    source = _SOURCE.read_bytes()
    extra_flags = os.environ.get("REPRO_CKERNEL_CFLAGS", "").split()
    tag_input = source + b"\0" + " ".join(extra_flags).encode()
    tag = hashlib.sha256(tag_input).hexdigest()[:16]
    cache_root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    cache_dir = Path(cache_root) / "repro-ckernels"
    cache_dir.mkdir(parents=True, exist_ok=True)
    shared_object = cache_dir / f"kernels-{tag}.so"
    if not shared_object.exists():
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=cache_dir)
        os.close(fd)
        try:
            compiler = os.environ.get("CC", "cc")
            subprocess.run(
                [compiler, "-O3", "-shared", "-fPIC"]
                + extra_flags
                + ["-o", tmp, str(_SOURCE)],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp, shared_object)  # atomic: racing processes agree
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    lib = ctypes.CDLL(str(shared_object))
    for name, (argtypes, restype) in _SIGNATURES.items():
        fn = getattr(lib, name)
        fn.argtypes = argtypes
        fn.restype = restype
    return lib


def load() -> Optional[ctypes.CDLL]:
    """The compiled kernel library, or ``None`` when unavailable.

    The first call compiles (or reuses the cached build of) ``_kernels.c``;
    the outcome — library handle or ``None`` after any failure — is memoised
    for the life of the process and logged once.
    """
    global _lib, _loaded
    if _loaded:
        return _lib
    _loaded = True
    if os.environ.get("REPRO_NO_CKERNELS"):
        _lib = None
        _log.info("C kernels disabled by REPRO_NO_CKERNELS; using NumPy path")
        return None
    try:
        _lib = _build()
        _log.info("C kernels loaded (compiled walk engine available)")
    except subprocess.CalledProcessError as exc:
        _lib = None
        stderr = (exc.stderr or b"").decode(errors="replace").strip()
        _log.warning(
            "C kernel compilation failed; falling back to NumPy path.\n%s",
            stderr or "(no compiler output)",
        )
    except Exception as exc:  # no compiler, read-only FS, odd toolchain...
        _lib = None
        _log.warning("C kernels unavailable (%s); falling back to NumPy path", exc)
    return _lib


def available() -> bool:
    """Whether the C kernels can be (or have been) loaded."""
    return load() is not None


def mode() -> str:
    """The kernel path this process resolved to: ``"c"`` or ``"numpy"``."""
    return "c" if available() else "numpy"
