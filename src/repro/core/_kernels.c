/* Scalar hot-path kernels for the incremental Costas evaluation engine.
 *
 * Compiled on demand by repro/core/_ckernels.py (plain `cc -O3 -shared
 * -fPIC`, no Python headers) and driven through ctypes; every function
 * mirrors, bit for bit, a NumPy implementation in repro/models/costas.py
 * that remains the fallback when no C toolchain is available.  The
 * equivalence test-suite exercises both paths against the full-recompute
 * reference model.
 *
 * Shared data layout (all arrays are C-contiguous int64, see DESIGN.md):
 *   p[n]            current permutation
 *   rows[(D+1)*n]   difference triangle, rows[d*n + k] = p[k+d] - p[k] + off
 *                   for k < n-d; off-triangle cells hold a sentinel
 *   cnt[(D+1)*Wx]   occurrence counts per distance d and shifted value v
 *   wd[D]           ERR(d) weights for d = 1..D
 */

#include <stdint.h>

typedef int64_t i64;

/* Exact cost delta of swapping columns i and j, read from the count tables.
 *
 * Per distance d the swap rewrites at most four triangle cells (i-d, i,
 * j-d, j; when |i-j| == d one cell spans both columns and is visited once).
 * Cells are processed sequentially — remove the old value, add the new one —
 * with a local adjustment list so colliding values within one swap see each
 * other's changes without touching the shared tables. */
static i64 delta_one(const i64 *p, const i64 *rows, const i64 *cnt,
                     i64 n, i64 D, i64 Wx, i64 off, const i64 *wd,
                     i64 i, i64 j)
{
    i64 delta = 0;
    i64 a = p[i], b = p[j];
    for (i64 d = 1; d <= D; d++) {
        const i64 *cn = cnt + d * Wx;
        const i64 *rw = rows + d * n;
        i64 w = wd[d - 1];
        i64 cells[4];
        int nc = 0;
        i64 k = i - d;
        if (k >= 0 && k != j) cells[nc++] = k;
        k = j - d;
        if (k >= 0 && k != i) cells[nc++] = k;
        if (i + d < n) cells[nc++] = i;
        if (j + d < n) cells[nc++] = j;

        i64 lv[8], la[8]; /* local value adjustments within this distance */
        int nl = 0;
        for (int c = 0; c < nc; c++) {
            i64 kk = cells[c];
            i64 u = rw[kk]; /* current value */
            i64 x0 = p[kk], x1 = p[kk + d];
            if (kk == i) x0 = b; else if (kk == j) x0 = a;
            if (kk + d == i) x1 = b; else if (kk + d == j) x1 = a;
            i64 v = x1 - x0 + off; /* value after the swap */
            if (u == v) continue;

            i64 adj = 0;
            int t, found = 0;
            for (t = 0; t < nl; t++)
                if (lv[t] == u) { adj = la[t]; break; }
            if (cn[u] + adj >= 2) delta -= w;
            for (t = 0; t < nl; t++)
                if (lv[t] == u) { la[t] -= 1; found = 1; break; }
            if (!found) { lv[nl] = u; la[nl] = -1; nl++; }

            adj = 0;
            found = 0;
            for (t = 0; t < nl; t++)
                if (lv[t] == v) { adj = la[t]; break; }
            if (cn[v] + adj >= 1) delta += w;
            for (t = 0; t < nl; t++)
                if (lv[t] == v) { la[t] += 1; found = 1; break; }
            if (!found) { lv[nl] = v; la[nl] = 1; nl++; }
        }
    }
    return delta;
}

/* deltas[j] = cost delta of swapping i with j (deltas[i] is left 0; the
 * caller installs its sentinel). */
void costas_swap_deltas(const i64 *p, const i64 *rows, const i64 *cnt,
                        i64 n, i64 D, i64 Wx, i64 off, const i64 *wd,
                        i64 i, i64 *deltas)
{
    for (i64 j = 0; j < n; j++)
        deltas[j] = (j == i) ? 0 : delta_one(p, rows, cnt, n, D, Wx, off, wd, i, j);
}

i64 costas_swap_delta(const i64 *p, const i64 *rows, const i64 *cnt,
                      i64 n, i64 D, i64 Wx, i64 off, const i64 *wd,
                      i64 i, i64 j)
{
    if (i == j) return 0;
    return delta_one(p, rows, cnt, n, D, Wx, off, wd, i, j);
}

/* Apply the swap: update p, rows and cnt in place, return the cost delta. */
i64 costas_apply(i64 *p, i64 *rows, i64 *cnt,
                 i64 n, i64 D, i64 Wx, i64 off, const i64 *wd,
                 i64 i, i64 j)
{
    i64 delta = 0;
    i64 a = p[i], b = p[j];
    for (i64 d = 1; d <= D; d++) {
        i64 *cn = cnt + d * Wx;
        i64 *rw = rows + d * n;
        i64 w = wd[d - 1];
        i64 cells[4];
        int nc = 0;
        i64 k = i - d;
        if (k >= 0 && k != j) cells[nc++] = k;
        k = j - d;
        if (k >= 0 && k != i) cells[nc++] = k;
        if (i + d < n) cells[nc++] = i;
        if (j + d < n) cells[nc++] = j;
        for (int c = 0; c < nc; c++) {
            i64 kk = cells[c];
            i64 u = rw[kk];
            i64 x0 = p[kk], x1 = p[kk + d];
            if (kk == i) x0 = b; else if (kk == j) x0 = a;
            if (kk + d == i) x1 = b; else if (kk + d == j) x1 = a;
            i64 v = x1 - x0 + off;
            if (u == v) continue;
            if (cn[u] >= 2) delta -= w;
            cn[u] -= 1;
            if (cn[v] >= 1) delta += w;
            cn[v] += 1;
            rw[kk] = v;
        }
    }
    p[i] = b;
    p[j] = a;
    return delta;
}

/* Rebuild rows/cnt from the permutation; returns the full cost.  cnt rows
 * 0..D are zeroed, rows cells are filled (sentinel L off-triangle). */
i64 costas_rebuild(const i64 *p, i64 *rows, i64 *cnt,
                   i64 n, i64 D, i64 Wx, i64 off, i64 L, const i64 *wd)
{
    for (i64 t = 0; t < (D + 1) * Wx; t++) cnt[t] = 0;
    for (i64 t = 0; t < (D + 1) * n; t++) rows[t] = L;
    i64 cost = 0;
    for (i64 d = 1; d <= D; d++) {
        i64 *rw = rows + d * n;
        i64 *cn = cnt + d * Wx;
        i64 w = wd[d - 1];
        for (i64 k = 0; k + d < n; k++) {
            i64 v = p[k + d] - p[k] + off;
            rw[k] = v;
            if (cn[v] >= 1) cost += w; /* every extra occupant costs ERR(d) */
            cn[v] += 1;
        }
    }
    return cost;
}

/* Per-column errors: scanning each row left to right, every cell whose value
 * was already seen adds ERR(d) to both its columns.  `stamp` is a caller-owned
 * scratch of W entries; `base` is a strictly increasing epoch so the scratch
 * never needs clearing (stamp values from earlier calls can never equal
 * base + d). */
void costas_errors(const i64 *rows, i64 n, i64 D, const i64 *wd,
                   i64 *stamp, i64 base, i64 *errs)
{
    for (i64 c = 0; c < n; c++) errs[c] = 0;
    for (i64 d = 1; d <= D; d++) {
        const i64 *rw = rows + d * n;
        i64 w = wd[d - 1];
        i64 tag = base + d;
        for (i64 k = 0; k + d < n; k++) {
            i64 v = rw[k];
            if (stamp[v] == tag) {
                errs[k] += w;
                errs[k + d] += w;
            } else {
                stamp[v] = tag;
            }
        }
    }
}

/* Exact cost of m candidate permutations (the dedicated-reset scoring):
 * per (candidate, distance), duplicates = occurrences beyond the first of
 * each value.  Same epoch-stamped scratch as costas_errors. */
void costas_batch_costs(const i64 *cands, i64 m, i64 n, i64 D, i64 off,
                        const i64 *wd, i64 *stamp, i64 base, i64 *out)
{
    for (i64 r = 0; r < m; r++) {
        const i64 *c = cands + r * n;
        i64 cost = 0;
        for (i64 d = 1; d <= D; d++) {
            i64 w = wd[d - 1];
            i64 tag = base + r * D + d;
            i64 dups = 0;
            for (i64 k = 0; k + d < n; k++) {
                i64 v = c[k + d] - c[k] + off;
                if (stamp[v] == tag) dups++;
                else stamp[v] = tag;
            }
            cost += w * dups;
        }
        out[r] = cost;
    }
}

/* ====================================================================== *
 * Compiled walk engine: the full Adaptive Search inner loop.
 *
 * One `as_walk_run` call advances up to `steps` iterations of W independent
 * walks (culprit selection with tabu masking and the all-tabu edge case,
 * min-conflict swap scoring, plateau/local-minimum/escape decisions, tabu
 * marking, generic and dedicated resets, restarts) and returns to Python
 * only at check-period boundaries.  All randomness comes from an embedded
 * xoshiro256** stream seeded through splitmix64; repro/core/cwalk.py holds
 * a line-for-line Python mirror, and the trajectory test-suite asserts
 * bit-exact equality between the two.
 *
 * Families (pi[WK_FAMILY]): 0 = Costas (tbl1 = difference-triangle rows,
 * tbl2 = occurrence counts, reusing the kernels above), 1 = N-Queens
 * (tbl1/tbl2 = up/down diagonal counts), 2 = All-Interval (tbl1 = interval
 * counts).  Per-walk arrays are batched (W, .) and C-contiguous; per-walk
 * scalar state lives in WS_NSLOTS int64 slots (the RNG words are the u64
 * bit patterns reinterpreted).
 * ====================================================================== */

typedef uint64_t u64;

#define WK_I64_MAX ((i64)0x7FFFFFFFFFFFFFFFLL)

/* ------------------------------------------------------------------ RNG */
static u64 wk_splitmix64(u64 *x)
{
    u64 z = (*x += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

typedef struct { u64 s[4]; } wk_rng;

static void wk_seed(wk_rng *r, u64 seed)
{
    u64 x = seed;
    for (int t = 0; t < 4; t++) r->s[t] = wk_splitmix64(&x);
}

static u64 wk_rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

static u64 wk_next(wk_rng *r)
{
    u64 *s = r->s;
    u64 result = wk_rotl(s[1] * 5, 7) * 9;
    u64 t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = wk_rotl(s[3], 45);
    return result;
}

/* Uniform integer in [0, k); k >= 1.  Plain modulo on purpose: the mirror
 * reproduces it exactly, and the modulo bias (< 2^-50 for any k here) is
 * irrelevant to a local search. */
static i64 wk_below(wk_rng *r, i64 k) { return (i64)(wk_next(r) % (u64)k); }

/* Uniform double in [0, 1): the top 53 bits of one draw. */
static double wk_double(wk_rng *r)
{
    return (double)(wk_next(r) >> 11) * (1.0 / 9007199254740992.0);
}

/* Backward Fisher-Yates shuffle of arr[0..m-1] (the permutation primitive:
 * fill with identity first). */
static void wk_shuffle(wk_rng *r, i64 *arr, i64 m)
{
    for (i64 t = m - 1; t >= 1; t--) {
        i64 q = wk_below(r, t + 1);
        i64 tmp = arr[t];
        arr[t] = arr[q];
        arr[q] = tmp;
    }
}

/* Test probe: the raw u64 stream (as int64 bit patterns) for a seed. */
void walk_rng_stream(i64 seed, i64 count, i64 *out)
{
    wk_rng r;
    wk_seed(&r, (u64)seed);
    for (i64 t = 0; t < count; t++) out[t] = (i64)wk_next(&r);
}

/* Test probe: interleaved randbelow(k) and double draws, mirroring the
 * derived-draw arithmetic. */
void walk_rng_draws(i64 seed, i64 k, i64 count, i64 *out_below, double *out_double)
{
    wk_rng r;
    wk_seed(&r, (u64)seed);
    for (i64 t = 0; t < count; t++) {
        out_below[t] = wk_below(&r, k);
        out_double[t] = wk_double(&r);
    }
}

/* ------------------------------------------------- parameter/state slots */
enum {
    WK_N = 0,          /* problem size */
    WK_FAMILY,         /* 0 costas, 1 queens, 2 all-interval */
    WK_TARGET,         /* target cost */
    WK_MAXITER,        /* iteration budget, -1 = unbounded */
    WK_TENURE,         /* tabu tenure */
    WK_RESET_LIMIT,    /* marks since reset that trigger a reset (RL) */
    WK_RESET_K,        /* variables the generic reset re-randomises */
    WK_RESTART_LIMIT,  /* iterations before restart, -1 = disabled */
    WK_MAX_RESTARTS,
    WK_CLEAR_TABU,     /* clear tabu marks on reset (0/1) */
    WK_DEDICATED,      /* costas dedicated reset enabled (0/1) */
    WK_D,              /* costas max distance */
    WK_WX,             /* costas count-table row width */
    WK_OFF,            /* costas value shift */
    WK_L,              /* costas rows sentinel */
    WK_NCONSTS,        /* costas reset constants count */
    WK_NPARAMS
};

enum { WD_PLATEAU = 0, WD_LOCALMIN, WD_NPARAMS };

enum {
    WS_RNG0 = 0, WS_RNG1, WS_RNG2, WS_RNG3, /* xoshiro words (u64 bits) */
    WS_COST,      /* current cost */
    WS_ITER,      /* StrategyRun iteration counter */
    WS_SWAPS, WS_PLATEAU, WS_LOCALMIN, WS_RESETS, WS_RESTARTS,
    WS_MARKED,    /* marks since last reset */
    WS_ISR,       /* iterations since last restart */
    WS_ERRVALID,  /* cached error vector valid (0/1) */
    WS_BEST,      /* best cost seen */
    WS_STATUS,    /* 0 running, 1 solved, 2 max_iterations */
    WS_NSLOTS
};

/* ------------------------------------------------------- queens family */
static i64 queens_rebuild(const i64 *p, i64 n, i64 *up, i64 *down)
{
    i64 m = 2 * n - 1;
    for (i64 t = 0; t < m; t++) { up[t] = 0; down[t] = 0; }
    for (i64 t = 0; t < n; t++) {
        up[t + p[t]]++;
        down[t - p[t] + n - 1]++;
    }
    i64 cost = 0;
    for (i64 t = 0; t < m; t++) {
        if (up[t] > 1) cost += up[t] - 1;
        if (down[t] > 1) cost += down[t] - 1;
    }
    return cost;
}

static void queens_errs(const i64 *p, i64 n, const i64 *up, const i64 *down,
                        i64 *errs)
{
    for (i64 t = 0; t < n; t++)
        errs[t] = up[t + p[t]] - 1 + down[t - p[t] + n - 1] - 1;
}

/* Duplicate-count delta of two removals then two additions on one count
 * table, with a local adjustment list so colliding keys within the swap see
 * each other (the scalar twin of grouped_dup_delta's 4-event case). */
static i64 wk_dup4(const i64 *cnt, i64 r0, i64 r1, i64 a0, i64 a1)
{
    i64 keys[4], lv[4], la[4];
    i64 delta = 0;
    int nl = 0;
    keys[0] = r0; keys[1] = r1; keys[2] = a0; keys[3] = a1;
    for (int e = 0; e < 4; e++) {
        i64 u = keys[e];
        i64 sign = (e < 2) ? -1 : 1;
        i64 adj = 0;
        int found = -1;
        for (int t = 0; t < nl; t++)
            if (lv[t] == u) { adj = la[t]; found = t; break; }
        if (sign < 0) { if (cnt[u] + adj >= 2) delta--; }
        else          { if (cnt[u] + adj >= 1) delta++; }
        if (found >= 0) la[found] += sign;
        else { lv[nl] = u; la[nl] = sign; nl++; }
    }
    return delta;
}

static i64 queens_delta(const i64 *p, const i64 *up, const i64 *down,
                        i64 n, i64 i, i64 j)
{
    i64 a = p[i], b = p[j], off = n - 1;
    return wk_dup4(up, i + a, j + b, i + b, j + a)
         + wk_dup4(down, i - a + off, j - b + off, i - b + off, j - a + off);
}

static i64 queens_apply(i64 *p, i64 *up, i64 *down, i64 n, i64 cost,
                        i64 i, i64 j)
{
    i64 off = n - 1;
    i64 cols[2];
    cols[0] = i; cols[1] = j;
    for (int t = 0; t < 2; t++) { /* remove both queens */
        i64 c = cols[t];
        i64 u = c + p[c], d = c - p[c] + off;
        if (up[u] >= 2) cost--;
        up[u]--;
        if (down[d] >= 2) cost--;
        down[d]--;
    }
    i64 tmp = p[i]; p[i] = p[j]; p[j] = tmp;
    for (int t = 0; t < 2; t++) { /* re-add on the crossed diagonals */
        i64 c = cols[t];
        i64 u = c + p[c], d = c - p[c] + off;
        if (up[u] >= 1) cost++;
        up[u]++;
        if (down[d] >= 1) cost++;
        down[d]++;
    }
    return cost;
}

/* -------------------------------------------------- all-interval family */
static i64 ai_rebuild(const i64 *p, i64 n, i64 *counts)
{
    for (i64 t = 0; t < n; t++) counts[t] = 0;
    i64 cost = 0;
    for (i64 k = 0; k + 1 < n; k++) {
        i64 d = p[k + 1] - p[k];
        i64 v = d < 0 ? -d : d;
        if (counts[v] >= 1) cost++;
        counts[v]++;
    }
    return cost;
}

static void ai_errs(const i64 *p, i64 n, i64 *stamp, i64 tag, i64 *errs)
{
    for (i64 t = 0; t < n; t++) errs[t] = 0;
    for (i64 k = 0; k + 1 < n; k++) {
        i64 d = p[k + 1] - p[k];
        i64 v = d < 0 ? -d : d;
        if (stamp[v] == tag) { /* repeated interval: both endpoints err */
            errs[k]++;
            errs[k + 1]++;
        } else {
            stamp[v] = tag;
        }
    }
}

/* The (sorted, deduplicated) difference slots a swap of i and j touches. */
static int ai_slots(i64 n, i64 i, i64 j, i64 *slots)
{
    i64 cand[4];
    int ns = 0;
    cand[0] = i - 1; cand[1] = i; cand[2] = j - 1; cand[3] = j;
    for (int t = 0; t < 4; t++) {
        i64 k = cand[t];
        if (k < 0 || k > n - 2) continue;
        int dup = 0;
        for (int u = 0; u < ns; u++)
            if (slots[u] == k) dup = 1;
        if (!dup) slots[ns++] = k;
    }
    for (int t = 1; t < ns; t++) { /* insertion sort, ns <= 4 */
        i64 v = slots[t];
        int u = t - 1;
        while (u >= 0 && slots[u] > v) { slots[u + 1] = slots[u]; u--; }
        slots[u + 1] = v;
    }
    return ns;
}

static i64 ai_delta(const i64 *p, const i64 *counts, i64 n, i64 i, i64 j)
{
    i64 slots[4], lv[8], la[8];
    int ns = ai_slots(n, i, j, slots);
    i64 delta = 0;
    int nl = 0;
    for (int pass = 0; pass < 2; pass++) { /* removals, then additions */
        for (int t = 0; t < ns; t++) {
            i64 k = slots[t];
            i64 x0 = p[k], x1 = p[k + 1];
            if (pass == 1) { /* values after the swap */
                if (k == i) x0 = p[j]; else if (k == j) x0 = p[i];
                if (k + 1 == i) x1 = p[j]; else if (k + 1 == j) x1 = p[i];
            }
            i64 d = x1 - x0;
            i64 v = d < 0 ? -d : d;
            i64 adj = 0;
            int found = -1;
            for (int u = 0; u < nl; u++)
                if (lv[u] == v) { adj = la[u]; found = u; break; }
            if (pass == 0) { if (counts[v] + adj >= 2) delta--; }
            else           { if (counts[v] + adj >= 1) delta++; }
            i64 sign = pass == 0 ? -1 : 1;
            if (found >= 0) la[found] += sign;
            else { lv[nl] = v; la[nl] = sign; nl++; }
        }
    }
    return delta;
}

static i64 ai_apply(i64 *p, i64 *counts, i64 n, i64 cost, i64 i, i64 j)
{
    i64 slots[4];
    int ns = ai_slots(n, i, j, slots);
    for (int t = 0; t < ns; t++) {
        i64 k = slots[t];
        i64 d = p[k + 1] - p[k];
        i64 v = d < 0 ? -d : d;
        if (counts[v] >= 2) cost--;
        counts[v]--;
    }
    i64 tmp = p[i]; p[i] = p[j]; p[j] = tmp;
    for (int t = 0; t < ns; t++) {
        i64 k = slots[t];
        i64 d = p[k + 1] - p[k];
        i64 v = d < 0 ? -d : d;
        if (counts[v] >= 1) cost++;
        counts[v]++;
    }
    return cost;
}

/* ------------------------------------------------------ family dispatch */
static void wk_strides(const i64 *pi, i64 *s1, i64 *s2)
{
    i64 n = pi[WK_N];
    switch (pi[WK_FAMILY]) {
    case 0:
        *s1 = (pi[WK_D] + 1) * n;
        *s2 = (pi[WK_D] + 1) * pi[WK_WX];
        break;
    case 1:
        *s1 = 2 * n - 1;
        *s2 = 2 * n - 1;
        break;
    default:
        *s1 = n;
        *s2 = 0;
        break;
    }
}

static i64 wk_rebuild(const i64 *pi, const i64 *wd, i64 *p, i64 *t1, i64 *t2)
{
    i64 n = pi[WK_N];
    switch (pi[WK_FAMILY]) {
    case 0:
        return costas_rebuild(p, t1, t2, n, pi[WK_D], pi[WK_WX], pi[WK_OFF],
                              pi[WK_L], wd);
    case 1:
        return queens_rebuild(p, n, t1, t2);
    default:
        return ai_rebuild(p, n, t1);
    }
}

static void wk_errors(const i64 *pi, const i64 *wd, const i64 *p,
                      const i64 *t1, const i64 *t2, i64 *stamp, i64 *epoch,
                      i64 *errs)
{
    i64 n = pi[WK_N];
    switch (pi[WK_FAMILY]) {
    case 0:
        costas_errors(t1, n, pi[WK_D], wd, stamp, *epoch, errs);
        *epoch += pi[WK_D];
        break;
    case 1:
        queens_errs(p, n, t1, t2, errs);
        break;
    default:
        *epoch += 1;
        ai_errs(p, n, stamp, *epoch, errs);
        break;
    }
}

static void wk_deltas(const i64 *pi, const i64 *wd, const i64 *p,
                      const i64 *t1, const i64 *t2, i64 i, i64 *deltas)
{
    i64 n = pi[WK_N];
    switch (pi[WK_FAMILY]) {
    case 0:
        costas_swap_deltas(p, t1, t2, n, pi[WK_D], pi[WK_WX], pi[WK_OFF],
                           wd, i, deltas);
        break;
    case 1:
        for (i64 j = 0; j < n; j++)
            deltas[j] = (j == i) ? 0 : queens_delta(p, t1, t2, n, i, j);
        break;
    default:
        for (i64 j = 0; j < n; j++)
            deltas[j] = (j == i) ? 0 : ai_delta(p, t1, n, i, j);
        break;
    }
    deltas[i] = WK_I64_MAX;
}

static i64 wk_apply(const i64 *pi, const i64 *wd, i64 *p, i64 *t1, i64 *t2,
                    i64 cost, i64 i, i64 j)
{
    i64 n = pi[WK_N];
    switch (pi[WK_FAMILY]) {
    case 0:
        return cost + costas_apply(p, t1, t2, n, pi[WK_D], pi[WK_WX],
                                   pi[WK_OFF], wd, i, j);
    case 1:
        return queens_apply(p, t1, t2, n, cost, i, j);
    default:
        return ai_apply(p, t1, n, cost, i, j);
    }
}

/* ------------------------------------------------------------- resets */
/* Re-randomise k variables: a partial Fisher-Yates picks the positions,
 * a full shuffle redistributes their values (caller rebuilds tables). */
static void wk_generic_reset(wk_rng *r, i64 *p, i64 n, i64 k,
                             i64 *idx, i64 *vals)
{
    for (i64 t = 0; t < n; t++) idx[t] = t;
    for (i64 t = 0; t < k; t++) {
        i64 q = t + wk_below(r, n - t);
        i64 tmp = idx[t];
        idx[t] = idx[q];
        idx[q] = tmp;
    }
    for (i64 t = 0; t < k; t++) vals[t] = p[idx[t]];
    wk_shuffle(r, vals, k);
    for (i64 t = 0; t < k; t++) p[idx[t]] = vals[t];
}

static i64 costas_cand_cost(const i64 *c, i64 n, i64 D, i64 off,
                            const i64 *wd, i64 *stamp, i64 *epoch)
{
    i64 cost = 0;
    for (i64 d = 1; d <= D; d++) {
        i64 w = wd[d - 1];
        i64 tag = ++(*epoch);
        for (i64 k = 0; k + d < n; k++) {
            i64 v = c[k + d] - c[k] + off;
            if (stamp[v] == tag) cost += w;
            else stamp[v] = tag;
        }
    }
    return cost;
}

/* The paper's dedicated Costas reset (Section IV-B): three candidate
 * families anchored on the most erroneous column, examined in random order;
 * the first strict improvement wins, else a uniformly random minimum-cost
 * candidate.  Same candidates and selection policy as
 * CostasProblem.custom_reset, driven by the walk's own RNG stream. */
static i64 costas_dedicated_reset(wk_rng *r, i64 *p, i64 *rows, i64 *cnt,
                                  const i64 *pi, const i64 *wd,
                                  const i64 *consts, const i64 *errs,
                                  i64 entry_cost, i64 *stamp, i64 *epoch,
                                  i64 *errk, i64 *cand, i64 *ccost,
                                  i64 *corder)
{
    i64 n = pi[WK_N], D = pi[WK_D], off = pi[WK_OFF];
    i64 n_consts = pi[WK_NCONSTS];

    /* Anchor: uniformly among the most erroneous columns. */
    i64 worst = errs[0];
    for (i64 k = 1; k < n; k++)
        if (errs[k] > worst) worst = errs[k];
    i64 wcnt = 0;
    for (i64 k = 0; k < n; k++)
        if (errs[k] == worst) wcnt++;
    i64 rp = wk_below(r, wcnt);
    i64 vm = 0;
    for (i64 k = 0; k < n; k++)
        if (errs[k] == worst && rp-- == 0) { vm = k; break; }

    i64 m = 0;
    /* Family 1: each sub-array ending or starting at vm, shifted circularly
     * left then right. */
    for (i64 t = 0; t < n - 1; t++) {
        i64 lo = (t < vm) ? t : vm;
        i64 hi = (t < vm) ? vm : t + 1;
        i64 *cl = cand + (m++) * n;
        i64 *cr = cand + (m++) * n;
        for (i64 k = 0; k < n; k++) { cl[k] = p[k]; cr[k] = p[k]; }
        for (i64 k = lo; k < hi; k++) cl[k] = p[k + 1];
        cl[hi] = p[lo];
        for (i64 k = lo + 1; k <= hi; k++) cr[k] = p[k - 1];
        cr[lo] = p[hi];
    }
    /* Family 2: add a constant modulo n. */
    for (i64 t = 0; t < n_consts; t++) {
        i64 *c = cand + (m++) * n;
        for (i64 k = 0; k < n; k++) c[k] = (p[k] + consts[t]) % n;
    }
    /* Family 3: left-shift the prefix ending at up to three random
     * erroneous columns != vm. */
    i64 ne = 0;
    for (i64 k = 0; k < n; k++)
        if (errs[k] > 0 && k != vm) errk[ne++] = k;
    if (ne > 0) {
        wk_shuffle(r, errk, ne);
        i64 take = ne < 3 ? ne : 3;
        for (i64 t = 0; t < take; t++) {
            i64 e = errk[t];
            if (e < 1) continue;
            i64 *c = cand + (m++) * n;
            for (i64 k = 0; k < n; k++) c[k] = p[k];
            for (i64 k = 0; k < e; k++) c[k] = p[k + 1];
            c[e] = p[0];
        }
    }

    for (i64 t = 0; t < m; t++)
        ccost[t] = costas_cand_cost(cand + t * n, n, D, off, wd, stamp, epoch);

    /* Random examination order; first strict improvement wins. */
    for (i64 t = 0; t < m; t++) corder[t] = t;
    wk_shuffle(r, corder, m);
    i64 chosen = -1;
    i64 bestc = WK_I64_MAX;
    for (i64 t = 0; t < m; t++) {
        i64 c = ccost[corder[t]];
        if (c < entry_cost) { chosen = corder[t]; break; }
        if (c < bestc) bestc = c;
    }
    if (chosen < 0) { /* none improves: uniform among the minimum-cost ones */
        i64 tcnt = 0;
        for (i64 t = 0; t < m; t++)
            if (ccost[corder[t]] == bestc) tcnt++;
        i64 tp = wk_below(r, tcnt);
        for (i64 t = 0; t < m; t++)
            if (ccost[corder[t]] == bestc && tp-- == 0) { chosen = corder[t]; break; }
    }
    const i64 *sel = cand + chosen * n;
    for (i64 k = 0; k < n; k++) p[k] = sel[k];
    return costas_rebuild(p, rows, cnt, n, D, pi[WK_WX], off, pi[WK_L], wd);
}

/* ------------------------------------------------------------ walk API */
/* Initialise W walks: seed each RNG, draw (or keep) the start permutation,
 * rebuild the family tables, zero counters and tabu marks. */
void as_walk_init(const i64 *pi, const i64 *wd, i64 W, const i64 *seeds,
                  i64 use_given, i64 *state, i64 *perm, i64 *tabu,
                  i64 *best, i64 *tbl1, i64 *tbl2)
{
    i64 n = pi[WK_N];
    i64 s1, s2;
    wk_strides(pi, &s1, &s2);
    for (i64 w = 0; w < W; w++) {
        i64 *st = state + w * WS_NSLOTS;
        i64 *p = perm + w * n;
        wk_rng r;
        wk_seed(&r, (u64)seeds[w]);
        if (!use_given) {
            for (i64 t = 0; t < n; t++) p[t] = t;
            wk_shuffle(&r, p, n);
        }
        i64 cost = wk_rebuild(pi, wd, p, tbl1 + w * s1, tbl2 + w * s2);
        for (i64 t = 0; t < n; t++) {
            tabu[w * n + t] = 0;
            best[w * n + t] = p[t];
        }
        for (i64 t = 0; t < 4; t++) st[WS_RNG0 + t] = (i64)r.s[t];
        st[WS_COST] = cost;
        st[WS_ITER] = 0;
        st[WS_SWAPS] = 0;
        st[WS_PLATEAU] = 0;
        st[WS_LOCALMIN] = 0;
        st[WS_RESETS] = 0;
        st[WS_RESTARTS] = 0;
        st[WS_MARKED] = 0;
        st[WS_ISR] = 0;
        st[WS_ERRVALID] = 0;
        st[WS_BEST] = cost;
        st[WS_STATUS] = 0;
    }
}

/* Advance every still-running walk by up to `steps` iterations; returns the
 * number of walks still running afterwards.  `scratch` is the shared
 * workspace laid out as deltas[n] idx[n] vals[n] stamp[2n-1] errk[n]
 * cand[M*n] ccost[M] corder[M] with M = 2(n-1) + n_consts + 3. */
i64 as_walk_run(const i64 *pi, const double *pd, const i64 *wd,
                const i64 *consts, i64 W, i64 steps, i64 *state, i64 *perm,
                i64 *tabu, i64 *errs, i64 *best, i64 *tbl1, i64 *tbl2,
                i64 *scratch)
{
    i64 n = pi[WK_N];
    i64 target = pi[WK_TARGET], max_iter = pi[WK_MAXITER];
    i64 tenure = pi[WK_TENURE], reset_limit = pi[WK_RESET_LIMIT];
    i64 reset_k = pi[WK_RESET_K], restart_limit = pi[WK_RESTART_LIMIT];
    i64 max_restarts = pi[WK_MAX_RESTARTS];
    i64 clear_tabu = pi[WK_CLEAR_TABU];
    i64 dedicated = (pi[WK_FAMILY] == 0) && pi[WK_DEDICATED];
    double plateau_p = pd[WD_PLATEAU], localmin_p = pd[WD_LOCALMIN];
    i64 s1, s2;
    wk_strides(pi, &s1, &s2);

    i64 M = 2 * (n - 1) + pi[WK_NCONSTS] + 3;
    i64 *deltas = scratch;
    i64 *idx = deltas + n;
    i64 *vals = idx + n;
    i64 *stamp = vals + n;
    i64 stampn = 2 * n - 1;
    i64 *errk = stamp + stampn;
    i64 *cand = errk + n;
    i64 *ccost = cand + M * n;
    i64 *corder = ccost + M;
    for (i64 t = 0; t < stampn; t++) stamp[t] = 0;
    i64 epoch = 0;

    i64 running = 0;
    for (i64 w = 0; w < W; w++) {
        i64 *st = state + w * WS_NSLOTS;
        if (st[WS_STATUS] != 0) continue;
        i64 *p = perm + w * n;
        i64 *tb = tabu + w * n;
        i64 *er = errs + w * n;
        i64 *bc = best + w * n;
        i64 *t1 = tbl1 + w * s1;
        i64 *t2 = tbl2 + w * s2;
        wk_rng r;
        for (i64 t = 0; t < 4; t++) r.s[t] = (u64)st[WS_RNG0 + t];
        i64 cost = st[WS_COST], iter = st[WS_ITER];
        i64 swaps = st[WS_SWAPS], plateau = st[WS_PLATEAU];
        i64 localmin = st[WS_LOCALMIN], resets = st[WS_RESETS];
        i64 restarts = st[WS_RESTARTS], markedc = st[WS_MARKED];
        i64 isr = st[WS_ISR], errvalid = st[WS_ERRVALID];
        i64 bestcost = st[WS_BEST];
        i64 status = 0, executed = 0;

        while (1) {
            /* Loop head, exactly StrategyRun.running(): target first, then
             * the iteration budget, then the check-period boundary (handled
             * by the Python driver between calls). */
            if (cost <= target) { status = 1; break; }
            if (max_iter >= 0 && iter >= max_iter) { status = 2; break; }
            if (executed >= steps) break;
            iter++;
            executed++;
            isr++;

            if (!errvalid) {
                wk_errors(pi, wd, p, t1, t2, stamp, &epoch, er);
                errvalid = 1;
            }

            /* Culprit: most erroneous variable, tabu masked unless every
             * variable is tabu (the all-tabu edge case), uniform tie-break. */
            i64 any = 0, all = 1;
            for (i64 k = 0; k < n; k++) {
                if (tb[k] >= iter) any = 1;
                else all = 0;
            }
            int masked = any && !all;
            i64 maxv = (i64)(-WK_I64_MAX - 1);
            i64 cnt = 0;
            for (i64 k = 0; k < n; k++) {
                i64 e = (masked && tb[k] >= iter) ? -1 : er[k];
                if (e > maxv) { maxv = e; cnt = 1; }
                else if (e == maxv) cnt++;
            }
            i64 rp = wk_below(&r, cnt);
            i64 culprit = 0;
            for (i64 k = 0; k < n; k++) {
                i64 e = (masked && tb[k] >= iter) ? -1 : er[k];
                if (e == maxv && rp-- == 0) { culprit = k; break; }
            }

            /* Min-conflict: score every swap of the culprit. */
            wk_deltas(pi, wd, p, t1, t2, culprit, deltas);
            i64 bd = deltas[0];
            for (i64 k = 1; k < n; k++)
                if (deltas[k] < bd) bd = deltas[k];
            int take = 0, marked = 0;
            if (bd < 0) {
                take = 1;
            } else if (bd == 0) {
                if (wk_double(&r) < plateau_p) { take = 1; plateau++; }
                else marked = 1;
            } else {
                localmin++;
                if (wk_double(&r) < localmin_p) take = 1; /* uphill escape */
                else marked = 1;
            }
            if (take) {
                i64 tc = 0;
                for (i64 k = 0; k < n; k++)
                    if (deltas[k] == bd) tc++;
                i64 tp = wk_below(&r, tc);
                i64 partner = 0;
                for (i64 k = 0; k < n; k++)
                    if (deltas[k] == bd && tp-- == 0) { partner = k; break; }
                cost = wk_apply(pi, wd, p, t1, t2, cost, culprit, partner);
                swaps++;
                errvalid = 0;
            }
            if (marked) {
                tb[culprit] = iter + tenure;
                markedc++;
                if (markedc >= reset_limit) {
                    resets++;
                    if (dedicated) {
                        /* er is valid here: a marking iteration never
                         * changed the configuration. */
                        cost = costas_dedicated_reset(
                            &r, p, t1, t2, pi, wd, consts, er, cost, stamp,
                            &epoch, errk, cand, ccost, corder);
                    } else {
                        wk_generic_reset(&r, p, n, reset_k, idx, vals);
                        cost = wk_rebuild(pi, wd, p, t1, t2);
                    }
                    errvalid = 0;
                    markedc = 0;
                    if (clear_tabu)
                        for (i64 k = 0; k < n; k++) tb[k] = 0;
                }
            }
            if (restart_limit >= 0 && isr >= restart_limit
                && restarts < max_restarts) {
                restarts++;
                for (i64 k = 0; k < n; k++) p[k] = k;
                wk_shuffle(&r, p, n);
                cost = wk_rebuild(pi, wd, p, t1, t2);
                errvalid = 0;
                for (i64 k = 0; k < n; k++) tb[k] = 0;
                markedc = 0;
                isr = 0;
            }
            if (cost < bestcost) {
                bestcost = cost;
                for (i64 k = 0; k < n; k++) bc[k] = p[k];
            }
        }

        for (i64 t = 0; t < 4; t++) st[WS_RNG0 + t] = (i64)r.s[t];
        st[WS_COST] = cost;
        st[WS_ITER] = iter;
        st[WS_SWAPS] = swaps;
        st[WS_PLATEAU] = plateau;
        st[WS_LOCALMIN] = localmin;
        st[WS_RESETS] = resets;
        st[WS_RESTARTS] = restarts;
        st[WS_MARKED] = markedc;
        st[WS_ISR] = isr;
        st[WS_ERRVALID] = errvalid;
        st[WS_BEST] = bestcost;
        st[WS_STATUS] = status;
        if (status == 0) running++;
    }
    return running;
}
