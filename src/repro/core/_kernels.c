/* Scalar hot-path kernels for the incremental Costas evaluation engine.
 *
 * Compiled on demand by repro/core/_ckernels.py (plain `cc -O3 -shared
 * -fPIC`, no Python headers) and driven through ctypes; every function
 * mirrors, bit for bit, a NumPy implementation in repro/models/costas.py
 * that remains the fallback when no C toolchain is available.  The
 * equivalence test-suite exercises both paths against the full-recompute
 * reference model.
 *
 * Shared data layout (all arrays are C-contiguous int64, see DESIGN.md):
 *   p[n]            current permutation
 *   rows[(D+1)*n]   difference triangle, rows[d*n + k] = p[k+d] - p[k] + off
 *                   for k < n-d; off-triangle cells hold a sentinel
 *   cnt[(D+1)*Wx]   occurrence counts per distance d and shifted value v
 *   wd[D]           ERR(d) weights for d = 1..D
 */

#include <stdint.h>

typedef int64_t i64;

/* Exact cost delta of swapping columns i and j, read from the count tables.
 *
 * Per distance d the swap rewrites at most four triangle cells (i-d, i,
 * j-d, j; when |i-j| == d one cell spans both columns and is visited once).
 * Cells are processed sequentially — remove the old value, add the new one —
 * with a local adjustment list so colliding values within one swap see each
 * other's changes without touching the shared tables. */
static i64 delta_one(const i64 *p, const i64 *rows, const i64 *cnt,
                     i64 n, i64 D, i64 Wx, i64 off, const i64 *wd,
                     i64 i, i64 j)
{
    i64 delta = 0;
    i64 a = p[i], b = p[j];
    for (i64 d = 1; d <= D; d++) {
        const i64 *cn = cnt + d * Wx;
        const i64 *rw = rows + d * n;
        i64 w = wd[d - 1];
        i64 cells[4];
        int nc = 0;
        i64 k = i - d;
        if (k >= 0 && k != j) cells[nc++] = k;
        k = j - d;
        if (k >= 0 && k != i) cells[nc++] = k;
        if (i + d < n) cells[nc++] = i;
        if (j + d < n) cells[nc++] = j;

        i64 lv[8], la[8]; /* local value adjustments within this distance */
        int nl = 0;
        for (int c = 0; c < nc; c++) {
            i64 kk = cells[c];
            i64 u = rw[kk]; /* current value */
            i64 x0 = p[kk], x1 = p[kk + d];
            if (kk == i) x0 = b; else if (kk == j) x0 = a;
            if (kk + d == i) x1 = b; else if (kk + d == j) x1 = a;
            i64 v = x1 - x0 + off; /* value after the swap */
            if (u == v) continue;

            i64 adj = 0;
            int t, found = 0;
            for (t = 0; t < nl; t++)
                if (lv[t] == u) { adj = la[t]; break; }
            if (cn[u] + adj >= 2) delta -= w;
            for (t = 0; t < nl; t++)
                if (lv[t] == u) { la[t] -= 1; found = 1; break; }
            if (!found) { lv[nl] = u; la[nl] = -1; nl++; }

            adj = 0;
            found = 0;
            for (t = 0; t < nl; t++)
                if (lv[t] == v) { adj = la[t]; break; }
            if (cn[v] + adj >= 1) delta += w;
            for (t = 0; t < nl; t++)
                if (lv[t] == v) { la[t] += 1; found = 1; break; }
            if (!found) { lv[nl] = v; la[nl] = 1; nl++; }
        }
    }
    return delta;
}

/* deltas[j] = cost delta of swapping i with j (deltas[i] is left 0; the
 * caller installs its sentinel). */
void costas_swap_deltas(const i64 *p, const i64 *rows, const i64 *cnt,
                        i64 n, i64 D, i64 Wx, i64 off, const i64 *wd,
                        i64 i, i64 *deltas)
{
    for (i64 j = 0; j < n; j++)
        deltas[j] = (j == i) ? 0 : delta_one(p, rows, cnt, n, D, Wx, off, wd, i, j);
}

i64 costas_swap_delta(const i64 *p, const i64 *rows, const i64 *cnt,
                      i64 n, i64 D, i64 Wx, i64 off, const i64 *wd,
                      i64 i, i64 j)
{
    if (i == j) return 0;
    return delta_one(p, rows, cnt, n, D, Wx, off, wd, i, j);
}

/* Apply the swap: update p, rows and cnt in place, return the cost delta. */
i64 costas_apply(i64 *p, i64 *rows, i64 *cnt,
                 i64 n, i64 D, i64 Wx, i64 off, const i64 *wd,
                 i64 i, i64 j)
{
    i64 delta = 0;
    i64 a = p[i], b = p[j];
    for (i64 d = 1; d <= D; d++) {
        i64 *cn = cnt + d * Wx;
        i64 *rw = rows + d * n;
        i64 w = wd[d - 1];
        i64 cells[4];
        int nc = 0;
        i64 k = i - d;
        if (k >= 0 && k != j) cells[nc++] = k;
        k = j - d;
        if (k >= 0 && k != i) cells[nc++] = k;
        if (i + d < n) cells[nc++] = i;
        if (j + d < n) cells[nc++] = j;
        for (int c = 0; c < nc; c++) {
            i64 kk = cells[c];
            i64 u = rw[kk];
            i64 x0 = p[kk], x1 = p[kk + d];
            if (kk == i) x0 = b; else if (kk == j) x0 = a;
            if (kk + d == i) x1 = b; else if (kk + d == j) x1 = a;
            i64 v = x1 - x0 + off;
            if (u == v) continue;
            if (cn[u] >= 2) delta -= w;
            cn[u] -= 1;
            if (cn[v] >= 1) delta += w;
            cn[v] += 1;
            rw[kk] = v;
        }
    }
    p[i] = b;
    p[j] = a;
    return delta;
}

/* Rebuild rows/cnt from the permutation; returns the full cost.  cnt rows
 * 0..D are zeroed, rows cells are filled (sentinel L off-triangle). */
i64 costas_rebuild(const i64 *p, i64 *rows, i64 *cnt,
                   i64 n, i64 D, i64 Wx, i64 off, i64 L, const i64 *wd)
{
    for (i64 t = 0; t < (D + 1) * Wx; t++) cnt[t] = 0;
    for (i64 t = 0; t < (D + 1) * n; t++) rows[t] = L;
    i64 cost = 0;
    for (i64 d = 1; d <= D; d++) {
        i64 *rw = rows + d * n;
        i64 *cn = cnt + d * Wx;
        i64 w = wd[d - 1];
        for (i64 k = 0; k + d < n; k++) {
            i64 v = p[k + d] - p[k] + off;
            rw[k] = v;
            if (cn[v] >= 1) cost += w; /* every extra occupant costs ERR(d) */
            cn[v] += 1;
        }
    }
    return cost;
}

/* Per-column errors: scanning each row left to right, every cell whose value
 * was already seen adds ERR(d) to both its columns.  `stamp` is a caller-owned
 * scratch of W entries; `base` is a strictly increasing epoch so the scratch
 * never needs clearing (stamp values from earlier calls can never equal
 * base + d). */
void costas_errors(const i64 *rows, i64 n, i64 D, const i64 *wd,
                   i64 *stamp, i64 base, i64 *errs)
{
    for (i64 c = 0; c < n; c++) errs[c] = 0;
    for (i64 d = 1; d <= D; d++) {
        const i64 *rw = rows + d * n;
        i64 w = wd[d - 1];
        i64 tag = base + d;
        for (i64 k = 0; k + d < n; k++) {
            i64 v = rw[k];
            if (stamp[v] == tag) {
                errs[k] += w;
                errs[k + d] += w;
            } else {
                stamp[v] = tag;
            }
        }
    }
}

/* Exact cost of m candidate permutations (the dedicated-reset scoring):
 * per (candidate, distance), duplicates = occurrences beyond the first of
 * each value.  Same epoch-stamped scratch as costas_errors. */
void costas_batch_costs(const i64 *cands, i64 m, i64 n, i64 D, i64 off,
                        const i64 *wd, i64 *stamp, i64 base, i64 *out)
{
    for (i64 r = 0; r < m; r++) {
        const i64 *c = cands + r * n;
        i64 cost = 0;
        for (i64 d = 1; d <= D; d++) {
            i64 w = wd[d - 1];
            i64 tag = base + r * D + d;
            i64 dups = 0;
            for (i64 k = 0; k + d < n; k++) {
                i64 v = c[k + d] - c[k] + off;
                if (stamp[v] == tag) dups++;
                else stamp[v] = tag;
            }
            cost += w * dups;
        }
        out[r] = cost;
    }
}
