"""Driver for the compiled walk engine (the ``as_walk_*`` kernels).

PR 1 moved the *evaluation* of moves into C but kept the per-iteration
control flow — culprit selection, tabu bookkeeping, plateau/local-minimum
policy, resets, restarts — in Python, crossing the ctypes boundary every
iteration.  This module moves the whole inner loop across: one
``as_walk_run`` call advances up to ``check_period`` iterations of W
independent walks over batched ``(W, …)`` tables, and Python only runs at
check-period boundaries to poll ``stop_check``/``max_time`` and dispatch
callbacks — exactly the cadence :class:`~repro.core.strategy.StrategyRun`
polls at, so the external-stop contract ("a stop is honoured within one
``check_period``") is preserved.

Randomness comes from a per-walk xoshiro256** stream embedded in the kernel
(seeded through splitmix64), with a line-for-line Python mirror in
:mod:`repro.core.cwalk_mirror`; compiled and mirror trajectories are
bit-exact, which is how the kernel is tested.  Because the stream differs
from NumPy's PCG64, compiled runs are *different random walks* than the
NumPy engine's — equally valid, same semantics and counters, not the same
trajectory.

Three families compile (Costas, N-Queens, All-Interval).  Everything else —
and every environment without a C toolchain or with ``REPRO_NO_CKERNELS``
set — transparently falls back to the NumPy engine, reporting
``extra["engine"] = "numpy-fallback"``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core import _ckernels
from repro.core.callbacks import IterationCallback, _call_event, _call_iteration
from repro.core.params import ASParameters
from repro.core.problem import PermutationProblem
from repro.core.result import SolveResult
from repro.core.rng import SeedLike

__all__ = [
    "CompiledAdaptiveSearch",
    "WalkPopulation",
    "WalkSpec",
    "walk_spec",
    "supports",
    "population_seeds",
]

# ------------------------------------------------------------------- layout
# Slot indices mirroring the enums in _kernels.c — keep in lockstep.
(
    WK_N, WK_FAMILY, WK_TARGET, WK_MAXITER, WK_TENURE, WK_RESET_LIMIT,
    WK_RESET_K, WK_RESTART_LIMIT, WK_MAX_RESTARTS, WK_CLEAR_TABU,
    WK_DEDICATED, WK_D, WK_WX, WK_OFF, WK_L, WK_NCONSTS,
) = range(16)
WK_NPARAMS = 16

WD_PLATEAU, WD_LOCALMIN = 0, 1

(
    WS_RNG0, WS_RNG1, WS_RNG2, WS_RNG3, WS_COST, WS_ITER, WS_SWAPS,
    WS_PLATEAU, WS_LOCALMIN, WS_RESETS, WS_RESTARTS, WS_MARKED, WS_ISR,
    WS_ERRVALID, WS_BEST, WS_STATUS,
) = range(16)
WS_NSLOTS = 16

#: WS_STATUS values.
STATUS_RUNNING, STATUS_SOLVED, STATUS_MAX_ITERATIONS = 0, 1, 2

FAMILY_COSTAS, FAMILY_QUEENS, FAMILY_ALL_INTERVAL = 0, 1, 2

_MASK64 = (1 << 64) - 1


@dataclass
class WalkSpec:
    """Kernel-ready description of one problem + parameter combination."""

    family: int
    n: int
    pi: np.ndarray  # int64[WK_NPARAMS]
    pd: np.ndarray  # float64[2]
    wd: np.ndarray  # int64 costas distance weights (dummy for other families)
    consts: np.ndarray  # int64 costas reset constants (dummy when none)


def _family_of(problem: PermutationProblem) -> Optional[int]:
    # Imported lazily: repro.models modules import repro.core submodules.
    from repro.models.all_interval import AllIntervalProblem
    from repro.models.costas import _CostasBase
    from repro.models.queens import NQueensProblem

    if isinstance(problem, _CostasBase):
        return FAMILY_COSTAS
    if isinstance(problem, NQueensProblem):
        return FAMILY_QUEENS
    if isinstance(problem, AllIntervalProblem):
        return FAMILY_ALL_INTERVAL
    return None


def supports(problem: PermutationProblem) -> bool:
    """Whether *problem* belongs to a family the walk kernel compiles."""
    return _family_of(problem) is not None


def walk_spec(
    problem: PermutationProblem, params: ASParameters
) -> Optional[WalkSpec]:
    """Build the kernel parameter blocks, or ``None`` for unsupported models."""
    family = _family_of(problem)
    if family is None:
        return None
    n = problem.size
    pi = np.zeros(WK_NPARAMS, dtype=np.int64)
    wd = np.ones(1, dtype=np.int64)
    consts = np.zeros(1, dtype=np.int64)
    n_consts = 0
    if family == FAMILY_COSTAS:
        D = int(problem._max_d)
        wd = np.ascontiguousarray(problem._weights[1 : D + 1])
        clist = [int(c) for c in problem._reset_constants]
        if clist:
            consts = np.asarray(clist, dtype=np.int64)
        n_consts = len(clist)
        pi[WK_D] = D
        pi[WK_WX] = 2 * n
        pi[WK_OFF] = n - 1
        pi[WK_L] = 3 * n
        pi[WK_DEDICATED] = 1 if problem._dedicated_reset else 0
    # The generic reset re-randomises k variables; k is computed here so the
    # kernel, the mirror and the NumPy engine share Python's round().
    reset_k = max(2, int(round(params.reset_percentage * n)))
    reset_k = min(reset_k, n)
    pi[WK_N] = n
    pi[WK_FAMILY] = family
    pi[WK_TARGET] = int(params.target_cost)
    pi[WK_MAXITER] = (
        -1 if params.max_iterations is None else int(params.max_iterations)
    )
    pi[WK_TENURE] = int(params.tabu_tenure)
    pi[WK_RESET_LIMIT] = int(params.reset_limit)
    pi[WK_RESET_K] = reset_k
    pi[WK_RESTART_LIMIT] = (
        -1 if params.restart_limit is None else int(params.restart_limit)
    )
    pi[WK_MAX_RESTARTS] = int(params.max_restarts)
    pi[WK_CLEAR_TABU] = 1 if params.clear_tabu_on_reset else 0
    pi[WK_NCONSTS] = n_consts
    pd = np.array(
        [params.plateau_probability, params.local_min_accept_probability],
        dtype=np.float64,
    )
    return WalkSpec(family=family, n=n, pi=pi, pd=pd, wd=wd, consts=consts)


def population_seeds(seed: SeedLike, population: int) -> List[int]:
    """The per-walk kernel seeds a population run derives from *seed*.

    Deterministic for integer seeds (``SeedSequence.spawn``), fresh entropy
    otherwise.  Exposed so tests and workers can reproduce population walks
    individually.
    """
    ss = np.random.SeedSequence(seed if seed is not None else None)
    return [
        int(child.generate_state(1, dtype=np.uint64)[0])
        for child in ss.spawn(population)
    ]


# --------------------------------------------------------------- population
class WalkPopulation:
    """W compiled walks over batched tables, advanced by one kernel call.

    This is the low-level handle: it owns the ``(W, …)`` arrays, feeds them
    to ``as_walk_init``/``as_walk_run`` and exposes the raw state matrix.
    :class:`CompiledAdaptiveSearch` wraps it with the solver protocol; the
    trajectory tests drive it directly with ``steps=1``.
    """

    def __init__(self, spec: WalkSpec, lib: Optional[Any] = None) -> None:
        self.spec = spec
        self.lib = lib if lib is not None else _ckernels.load()
        if self.lib is None:
            raise RuntimeError("compiled walk engine requires the C kernels")
        n, family = spec.n, spec.family
        if family == FAMILY_COSTAS:
            D = int(spec.pi[WK_D])
            self._s1, self._s2 = (D + 1) * n, (D + 1) * int(spec.pi[WK_WX])
        elif family == FAMILY_QUEENS:
            self._s1, self._s2 = 2 * n - 1, 2 * n - 1
        else:
            self._s1, self._s2 = n, 1  # tbl2 unused by all-interval
        m = 2 * (n - 1) + int(spec.pi[WK_NCONSTS]) + 3
        self._scratch_len = 6 * n - 1 + m * (n + 2)
        self.W = 0

    def init(
        self,
        seeds: Sequence[int],
        given: Optional[np.ndarray] = None,
    ) -> None:
        """Allocate the batch for ``len(seeds)`` walks and initialise them.

        ``given`` (shape ``(W, n)``) starts every walk from a fixed
        permutation instead of drawing one from its RNG stream.
        """
        spec = self.spec
        W, n = len(seeds), spec.n
        self.W = W
        self.seeds = [int(s) & _MASK64 for s in seeds]
        self._cseeds = np.array(self.seeds, dtype=np.uint64).view(np.int64)
        self.state = np.zeros((W, WS_NSLOTS), dtype=np.int64)
        self.perm = np.zeros((W, n), dtype=np.int64)
        self.tabu = np.zeros((W, n), dtype=np.int64)
        self.errs = np.zeros((W, n), dtype=np.int64)
        self.best = np.zeros((W, n), dtype=np.int64)
        self.tbl1 = np.zeros((W, self._s1), dtype=np.int64)
        self.tbl2 = np.zeros((W, self._s2), dtype=np.int64)
        self.scratch = np.zeros(self._scratch_len, dtype=np.int64)
        use_given = 0
        if given is not None:
            self.perm[:] = np.asarray(given, dtype=np.int64).reshape(W, n)
            use_given = 1
        self.lib.as_walk_init(
            spec.pi.ctypes.data,
            spec.wd.ctypes.data,
            W,
            self._cseeds.ctypes.data,
            use_given,
            self.state.ctypes.data,
            self.perm.ctypes.data,
            self.tabu.ctypes.data,
            self.best.ctypes.data,
            self.tbl1.ctypes.data,
            self.tbl2.ctypes.data,
        )

    def run(self, steps: int) -> int:
        """Advance every running walk by up to *steps* iterations.

        Returns the number of walks still running.  ``steps=0`` only settles
        statuses (target / iteration-budget checks) without consuming RNG
        draws — the driver uses it for the iteration-0 boundary.
        """
        spec = self.spec
        return int(
            self.lib.as_walk_run(
                spec.pi.ctypes.data,
                spec.pd.ctypes.data,
                spec.wd.ctypes.data,
                spec.consts.ctypes.data,
                self.W,
                int(steps),
                self.state.ctypes.data,
                self.perm.ctypes.data,
                self.tabu.ctypes.data,
                self.errs.ctypes.data,
                self.best.ctypes.data,
                self.tbl1.ctypes.data,
                self.tbl2.ctypes.data,
                self.scratch.ctypes.data,
            )
        )


# ------------------------------------------------------------------- solver
class CompiledAdaptiveSearch:
    """Adaptive Search with the entire inner loop compiled to C.

    Satisfies :class:`~repro.core.strategy.SearchStrategy`.  Per-iteration
    semantics (culprit/tabu/plateau/local-minimum/reset/restart decisions and
    every counter) match the NumPy engine; trajectories are driven by the
    kernel's own RNG stream instead of NumPy's, so results for a given seed
    differ from ``AdaptiveSearch`` while remaining deterministic per seed.

    ``stop_check``/``max_time`` are polled and ``callbacks.on_iteration`` is
    dispatched only at ``check_period`` boundaries — same contract as the
    NumPy engine, but the callback granularity is one call per period rather
    than per iteration.

    Unsupported problem families (and environments without the C kernels)
    fall back to the NumPy engine transparently; the result keeps this
    solver's name and reports ``extra["engine"] = "numpy-fallback"``.
    """

    name = "compiled-adaptive-search"

    def __init__(self, params: Optional[ASParameters] = None) -> None:
        self.params = params if params is not None else ASParameters()

    # ----------------------------------------------------------------- public
    def solve(
        self,
        problem: PermutationProblem,
        seed: SeedLike = None,
        *,
        params: Optional[ASParameters] = None,
        stop_check: Optional[Callable[[], bool]] = None,
        callbacks: Optional[IterationCallback] = None,
        initial_configuration: Optional[np.ndarray] = None,
        max_time: Optional[float] = None,
    ) -> SolveResult:
        """Run one compiled walk; the walk's RNG is seeded with *seed* itself."""
        p = params if params is not None else self.params
        spec = None if _ckernels.load() is None else walk_spec(problem, p)
        if spec is None:
            return self._fallback(
                problem,
                seed,
                params=p,
                stop_check=stop_check,
                callbacks=callbacks,
                initial_configuration=initial_configuration,
                max_time=max_time,
            )
        if isinstance(seed, (int, np.integer)):
            walk_seed = int(seed)
        else:
            walk_seed = int.from_bytes(os.urandom(8), "little")
        given = (
            None
            if initial_configuration is None
            else np.asarray(initial_configuration, dtype=np.int64).reshape(
                1, spec.n
            )
        )
        return self._run(
            problem,
            spec,
            p,
            [walk_seed],
            stop_check=stop_check,
            callbacks=callbacks,
            max_time=max_time,
            given=given,
            first_solution_stops=False,
        )[0]

    def solve_population(
        self,
        problem: PermutationProblem,
        seed: SeedLike = None,
        *,
        population: int,
        params: Optional[ASParameters] = None,
        stop_check: Optional[Callable[[], bool]] = None,
        callbacks: Optional[IterationCallback] = None,
        max_time: Optional[float] = None,
    ) -> List[SolveResult]:
        """Run *population* walks in one kernel batch; first solution stops.

        Per-walk seeds come from :func:`population_seeds`; every walk gets
        its own :class:`SolveResult` (walks outrun by a sibling's solution
        report ``stop_reason="external_stop"``).  Falls back to sequential
        NumPy-engine walks when the kernels or the family are unavailable.
        """
        if population < 1:
            raise ValueError(f"population must be >= 1, got {population}")
        p = params if params is not None else self.params
        seeds = population_seeds(seed, population)
        spec = None if _ckernels.load() is None else walk_spec(problem, p)
        if spec is None:
            results = []
            stop = [False]
            check = stop_check
            if population > 1:
                def check() -> bool:  # first solution stops the siblings
                    return stop[0] or (stop_check() if stop_check else False)
            for w, walk_seed in enumerate(seeds):
                result = self._fallback(
                    problem,
                    walk_seed,
                    params=p,
                    stop_check=check,
                    callbacks=callbacks,
                    initial_configuration=None,
                    max_time=max_time,
                )
                result.extra["population"] = population
                result.extra["walk"] = w
                if result.solved:
                    stop[0] = True
                results.append(result)
            return results
        return self._run(
            problem,
            spec,
            p,
            seeds,
            stop_check=stop_check,
            callbacks=callbacks,
            max_time=max_time,
            given=None,
            first_solution_stops=True,
        )

    # --------------------------------------------------------------- internals
    def _run(
        self,
        problem: PermutationProblem,
        spec: WalkSpec,
        p: ASParameters,
        seeds: List[int],
        *,
        stop_check: Optional[Callable[[], bool]],
        callbacks: Optional[IterationCallback],
        max_time: Optional[float],
        given: Optional[np.ndarray],
        first_solution_stops: bool,
    ) -> List[SolveResult]:
        start = time.perf_counter()
        W = len(seeds)
        pop = WalkPopulation(spec)
        pop.init(seeds, given=given)
        state = pop.state
        period = int(p.check_period)
        external_reason: Optional[str] = None

        # Settle iteration-0 statuses (target / budget) before the first
        # boundary poll, mirroring StrategyRun.running()'s check order.
        running = pop.run(0)
        while running > 0:
            if first_solution_stops and (
                state[:, WS_STATUS] == STATUS_SOLVED
            ).any():
                break
            if stop_check is not None and stop_check():
                external_reason = "external_stop"
                break
            if (
                max_time is not None
                and time.perf_counter() - start >= max_time
            ):
                external_reason = "max_time"
                break
            running = pop.run(period)
            if callbacks is not None:
                _call_iteration(
                    callbacks,
                    int(state[:, WS_ITER].max()),
                    int(state[:, WS_COST].min()),
                )

        elapsed = time.perf_counter() - start
        target = int(spec.pi[WK_TARGET])
        results = []
        for w in range(W):
            st = state[w]
            best_cost = int(st[WS_BEST])
            solved = best_cost <= target
            if solved:
                reason = "solved"
            elif int(st[WS_STATUS]) == STATUS_MAX_ITERATIONS:
                reason = "max_iterations"
            elif external_reason is not None:
                reason = external_reason
            else:
                reason = "external_stop"  # outrun by a sibling walk
            extra: Dict[str, Any] = {"engine": "compiled", "population": W}
            if W > 1:
                extra["walk"] = w
            results.append(
                SolveResult(
                    solved=solved,
                    configuration=pop.best[w].copy(),
                    cost=best_cost,
                    iterations=int(st[WS_ITER]),
                    local_minima=int(st[WS_LOCALMIN]),
                    plateau_moves=int(st[WS_PLATEAU]),
                    resets=int(st[WS_RESETS]),
                    restarts=int(st[WS_RESTARTS]),
                    swaps=int(st[WS_SWAPS]),
                    wall_time=elapsed,
                    seed=seeds[w],
                    stop_reason=reason,
                    solver=self.name,
                    problem=problem.describe(),
                    extra=extra,
                )
            )
        best_walk = min(range(W), key=lambda w: int(state[w, WS_BEST]))
        problem.load_trusted_configuration(pop.best[best_walk].copy())
        if callbacks is not None and results[best_walk].solved:
            _call_event(
                callbacks,
                "solution",
                results[best_walk].iterations,
                results[best_walk].cost,
            )
        return results

    def _fallback(
        self,
        problem: PermutationProblem,
        seed: SeedLike,
        *,
        params: ASParameters,
        stop_check: Optional[Callable[[], bool]],
        callbacks: Optional[IterationCallback],
        initial_configuration: Optional[np.ndarray],
        max_time: Optional[float],
    ) -> SolveResult:
        from repro.core.engine import AdaptiveSearch

        result = AdaptiveSearch(params).solve(
            problem,
            seed,
            stop_check=stop_check,
            callbacks=callbacks,
            initial_configuration=initial_configuration,
            max_time=max_time,
        )
        result.solver = self.name
        result.extra = dict(result.extra)
        result.extra["engine"] = "numpy-fallback"
        return result
