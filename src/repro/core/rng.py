"""Random number generation helpers.

Local search is extremely sensitive to the quality and independence of its
random streams — the paper devotes a subsection (III-B.3) to seeding the
parallel walks through a chaotic map rather than naively.  Inside a single
process we standardise on :class:`numpy.random.Generator` (PCG64), created
through the helpers below so that

* every entry point accepts "a seed, a generator, or nothing" uniformly;
* independent sub-streams are spawned through :class:`numpy.random.SeedSequence`
  (never by reusing or incrementing a seed);
* the multi-walk code can obtain an arbitrary number of decorrelated
  generators from one master seed (see also
  :mod:`repro.parallel.seeds` for the chaotic-map variant used to mirror the
  paper's setup).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

__all__ = ["SeedLike", "ensure_generator", "spawn_generators", "derive_seed"]

#: Anything acceptable as a source of randomness.
SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def ensure_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Passing an existing generator returns it unchanged (no copy), so state is
    shared with the caller; pass an integer when reproducibility across calls
    is required.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(n: int, seed: SeedLike = None) -> List[np.random.Generator]:
    """Create *n* statistically independent generators from one seed.

    Uses ``SeedSequence.spawn`` so the streams are guaranteed independent
    regardless of the value of *seed*.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators ({n})")
    if isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's own stream.
        seed = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif not isinstance(seed, np.random.SeedSequence):
        seed = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seed.spawn(n)]


def derive_seed(seed: SeedLike, index: int) -> int:
    """Deterministically derive the *index*-th 63-bit integer seed from *seed*.

    Used when a plain integer must cross a process boundary (the
    ``multiprocessing`` workers receive integer seeds, not generator objects).
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    if isinstance(seed, np.random.Generator):
        base = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif isinstance(seed, np.random.SeedSequence):
        base = seed
    else:
        base = np.random.SeedSequence(seed)
    child = base.spawn(index + 1)[index]
    return int(child.generate_state(1, dtype=np.uint64)[0] & 0x7FFF_FFFF_FFFF_FFFF)
