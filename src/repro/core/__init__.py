"""Adaptive Search: a generic constraint-based local search engine for permutation problems.

This package is the reproduction of the paper's primary algorithmic vehicle,
the *Adaptive Search* (AS) method of Codognet & Diaz:

* a problem is described through **error functions** — a global cost plus a
  projection of constraint errors onto variables
  (:class:`~repro.core.problem.PermutationProblem`);
* each iteration selects the **most erroneous** variable (subject to a tabu
  list) and applies the **min-conflict** move: the swap that minimises the
  next configuration's cost (:class:`~repro.core.engine.AdaptiveSearch`);
* equal-cost moves are taken with a configurable **plateau probability**;
* variables with no acceptable move are **marked tabu** for a fixed tenure,
  and when too many are tabu a **(partial or custom) reset** diversifies the
  configuration (parameters ``RL``/``RP`` of the paper);
* an optional **restart** bounds the length of any one walk.

The engine is deliberately problem-agnostic: the Costas model and the other
classic CSPs live in :mod:`repro.models`, and the parallel multi-walk drivers
in :mod:`repro.parallel` treat the engine as a black box.
"""

from repro.core.params import ASParameters
from repro.core.problem import (
    FunctionalPermutationProblem,
    PermutationProblem,
)
from repro.core.result import RunLimits, SolveResult
from repro.core.engine import AdaptiveSearch, solve
from repro.core.cwalk import CompiledAdaptiveSearch
from repro.core.strategy import SearchStrategy, StrategyRun
from repro.core.callbacks import (
    CallbackList,
    CostTraceRecorder,
    EventCounter,
    IterationCallback,
)
from repro.core.incremental import (
    dup_count,
    dup_delta_from_net,
    grouped_dup_delta,
    net_occurrence_change,
)
from repro.core.rng import ensure_generator, spawn_generators

__all__ = [
    "ASParameters",
    "PermutationProblem",
    "FunctionalPermutationProblem",
    "SolveResult",
    "RunLimits",
    "AdaptiveSearch",
    "CompiledAdaptiveSearch",
    "solve",
    "SearchStrategy",
    "StrategyRun",
    "IterationCallback",
    "CallbackList",
    "CostTraceRecorder",
    "EventCounter",
    "ensure_generator",
    "spawn_generators",
    "dup_count",
    "dup_delta_from_net",
    "grouped_dup_delta",
    "net_occurrence_change",
]
