"""The Adaptive Search engine (Figure 1 of the paper).

One iteration of the engine:

1. compute the per-variable errors of the current configuration and select the
   **most erroneous non-tabu variable** (ties broken uniformly at random);
   the error vector is reused across iterations until a move, reset or
   restart actually changes the configuration (a tabu-marking iteration
   leaves it untouched), and the tabu mask is skipped entirely when *every*
   variable is tabu — in that degenerate state tabu variables become
   selectable again rather than leaving the engine with an empty candidate
   set (see the note on :meth:`AdaptiveSearch.solve`);
2. evaluate every swap involving that variable (**min-conflict** value
   selection) and

   * apply the best swap if it strictly improves the cost,
   * if the best swap only equals the current cost, follow the **plateau**
     with probability ``plateau_probability``, otherwise mark the variable
     tabu,
   * if every swap worsens the cost (a **local minimum**), mark the variable
     tabu for ``tabu_tenure`` iterations;
3. if the number of currently tabu variables reaches ``reset_limit``, perform
   a **reset**: ask the problem for a custom perturbation
   (:meth:`~repro.core.problem.PermutationProblem.custom_reset`) and fall back
   to re-randomising ``reset_percentage`` of the variables;
4. optionally **restart** from scratch after ``restart_limit`` iterations.

The run ends when the cost reaches ``target_cost``, when the iteration budget
is exhausted, or when an external stop check (polled every ``check_period``
iterations — this is the parallel termination test of Section V-A) fires.
"""

from __future__ import annotations

import inspect
from typing import Callable, Optional

import numpy as np

from repro.core.callbacks import IterationCallback
from repro.core.params import ASParameters
from repro.core.problem import PermutationProblem
from repro.core.result import SolveResult
from repro.core.rng import SeedLike, ensure_generator
from repro.core.strategy import StrategyRun

__all__ = ["AdaptiveSearch", "solve"]

_INT64_MAX = np.iinfo(np.int64).max

#: Per-class cache of the ``apply_swap(..., delta=...)`` capability probe.
_DELTA_CAPABLE: dict = {}


def _accepts_delta(problem: PermutationProblem) -> bool:
    """Whether *problem*'s ``apply_swap`` accepts the scored ``delta`` keyword.

    Out-of-tree models written against the pre-incremental contract may still
    define ``apply_swap(self, i, j)``.  The ``inspect.signature`` probe is
    cached per problem class: every walk of every portfolio run re-enters
    :meth:`AdaptiveSearch.solve`, and re-parsing the signature there is pure
    hot-path overhead.
    """
    cls = type(problem)
    cached = _DELTA_CAPABLE.get(cls)
    if cached is None:
        try:
            cached = "delta" in inspect.signature(problem.apply_swap).parameters
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            cached = True
        _DELTA_CAPABLE[cls] = cached
    return cached


class AdaptiveSearch:
    """Reusable Adaptive Search solver.

    The object itself is stateless between calls to :meth:`solve`; parameters
    and callbacks given at construction time act as defaults that individual
    calls may override.
    """

    def __init__(
        self,
        params: Optional[ASParameters] = None,
        callbacks: Optional[IterationCallback] = None,
    ) -> None:
        self.params = params if params is not None else ASParameters()
        self.callbacks = callbacks

    # ------------------------------------------------------------------ public
    def solve(
        self,
        problem: PermutationProblem,
        seed: SeedLike = None,
        *,
        params: Optional[ASParameters] = None,
        stop_check: Optional[Callable[[], bool]] = None,
        callbacks: Optional[IterationCallback] = None,
        initial_configuration: Optional[np.ndarray] = None,
        max_time: Optional[float] = None,
    ) -> SolveResult:
        """Run Adaptive Search on *problem* and return a :class:`SolveResult`.

        Parameters
        ----------
        problem:
            The problem instance; its current configuration is overwritten.
        seed:
            Seed / generator for all stochastic decisions of this run.
        params:
            Override the engine parameters for this run only.
        stop_check:
            Zero-argument callable polled every ``check_period`` iterations;
            returning ``True`` aborts the run with ``stop_reason
            = "external_stop"`` (used for multi-walk termination).
        callbacks:
            Instrumentation for this run (overrides the constructor default).
        initial_configuration:
            Start from this configuration instead of a random one (restarts
            still draw fresh random configurations).
        max_time:
            Wall-clock limit in seconds (checked every ``check_period``
            iterations).

        Notes
        -----
        **All-tabu edge case.**  Culprit selection masks tabu variables out
        with an error of ``-1`` — but only while at least one variable is
        non-tabu.  When every variable is simultaneously tabu (possible with
        a large ``tabu_tenure`` and a ``reset_limit`` that has not yet
        triggered) the mask is skipped, so tabu variables become selectable
        again and the search keeps moving instead of picking uniformly among
        all-``-1`` errors.  This is intended behaviour and is pinned by a
        unit test.
        """
        p = params if params is not None else self.params
        cb = callbacks if callbacks is not None else self.callbacks
        rng = ensure_generator(seed)

        # Only pass the scored delta through when the implementation can
        # accept it (probe cached per problem class, see _accepts_delta).
        if _accepts_delta(problem):
            apply_swap = problem.apply_swap
        else:
            apply_swap = lambda i, j, delta=None: problem.apply_swap(i, j)  # noqa: E731

        run = StrategyRun(
            problem,
            "adaptive-search",
            seed,
            target_cost=p.target_cost,
            max_iterations=p.max_iterations,
            check_period=p.check_period,
            stop_check=stop_check,
            max_time=max_time,
            callbacks=cb,
        )
        observe = run.observe
        notifier = run.notifier
        if initial_configuration is not None:
            problem.set_configuration(np.asarray(initial_configuration, dtype=np.int64))
        else:
            problem.initialise(rng)
        n = problem.size
        cost = problem.cost()

        tabu_until = np.zeros(n, dtype=np.int64)
        marked_since_reset = 0
        iterations_since_restart = 0
        run.track_best(cost)
        # Per-iteration error vector, reused until the configuration changes
        # (an iteration that only marks a variable tabu leaves it valid).
        raw_errors: Optional[np.ndarray] = None

        while run.running(cost):
            iteration = run.iteration
            iterations_since_restart += 1

            # ------------------------------------------------------- select culprit
            if raw_errors is None:
                raw_errors = problem.variable_errors()
            errors = raw_errors
            active_tabu = tabu_until >= iteration
            # When *every* variable is tabu the mask is skipped on purpose:
            # tabu variables become selectable again (see the solve() note).
            if active_tabu.any() and not active_tabu.all():
                errors = np.where(active_tabu, -1, errors)
            max_err = errors.max()
            candidates = np.flatnonzero(errors == max_err)
            culprit = int(candidates[rng.integers(candidates.size)])

            # --------------------------------------------------- min-conflict move
            deltas = problem.swap_deltas(culprit)
            deltas[culprit] = _INT64_MAX
            best_delta = int(deltas.min())
            marked = False

            if best_delta < 0:
                partner = _random_argmin(deltas, best_delta, rng)
                cost = apply_swap(culprit, partner, delta=best_delta)
                raw_errors = None
                run.swaps += 1
                observe and notifier.on_event("improving_move", iteration, cost)
            elif best_delta == 0:
                if rng.random() < p.plateau_probability:
                    partner = _random_argmin(deltas, best_delta, rng)
                    cost = apply_swap(culprit, partner, delta=best_delta)
                    raw_errors = None
                    run.swaps += 1
                    run.plateau_moves += 1
                    observe and notifier.on_event("plateau_move", iteration, cost)
                else:
                    marked = True
            else:
                run.local_minima += 1
                observe and notifier.on_event("local_minimum", iteration, cost)
                if rng.random() < p.local_min_accept_probability:
                    # Escape uphill: accept the least-bad swap instead of
                    # freezing the variable (prob_select_loc_min of the
                    # reference library).
                    partner = _random_argmin(deltas, best_delta, rng)
                    cost = apply_swap(culprit, partner, delta=best_delta)
                    raw_errors = None
                    run.swaps += 1
                else:
                    marked = True

            if marked:
                tabu_until[culprit] = iteration + p.tabu_tenure
                marked_since_reset += 1
                observe and notifier.on_event("tabu_mark", iteration, cost)

                # ------------------------------------------------------------ reset
                if marked_since_reset >= p.reset_limit:
                    run.resets += 1
                    replacement = problem.custom_reset(rng)
                    if replacement is not None:
                        problem.load_trusted_configuration(
                            np.asarray(replacement, dtype=np.int64)
                        )
                        observe and notifier.on_event("custom_reset", iteration, cost)
                    else:
                        self._generic_reset(problem, rng, p.reset_percentage)
                        observe and notifier.on_event("reset", iteration, cost)
                    cost = problem.cost()
                    raw_errors = None
                    marked_since_reset = 0
                    if p.clear_tabu_on_reset:
                        tabu_until[:] = 0

            # -------------------------------------------------------------- restart
            if (
                p.restart_limit is not None
                and iterations_since_restart >= p.restart_limit
                and run.restarts < p.max_restarts
            ):
                run.restarts += 1
                problem.initialise(rng)
                cost = problem.cost()
                raw_errors = None
                tabu_until[:] = 0
                marked_since_reset = 0
                iterations_since_restart = 0
                observe and notifier.on_event("restart", iteration, cost)

            run.track_best(cost)
            observe and notifier.on_iteration(iteration, cost)

        return run.finish()

    # ---------------------------------------------------------------- internals
    @staticmethod
    def _generic_reset(
        problem: PermutationProblem, rng: np.random.Generator, fraction: float
    ) -> None:
        """Re-randomise a fraction of the variables while staying a permutation.

        A random subset of positions (at least two) is selected and the values
        they hold are randomly re-distributed among them — the permutation-safe
        analogue of the paper's "assign fresh values to RP% of the variables".
        """
        n = problem.size
        k = max(2, int(round(fraction * n)))
        k = min(k, n)
        positions = rng.choice(n, size=k, replace=False)
        config = problem.configuration()
        values = config[positions]
        rng.shuffle(values)
        config[positions] = values
        problem.load_trusted_configuration(config)


def _random_argmin(deltas: np.ndarray, best: int, rng: np.random.Generator) -> int:
    """Uniformly random index among the entries of *deltas* equal to *best*."""
    ties = np.flatnonzero(deltas == best)
    return int(ties[rng.integers(ties.size)])


def solve(
    problem: PermutationProblem,
    seed: SeedLike = None,
    *,
    params: Optional[ASParameters] = None,
    **kwargs,
) -> SolveResult:
    """Convenience wrapper: ``AdaptiveSearch(params).solve(problem, seed, **kwargs)``."""
    return AdaptiveSearch(params=params).solve(problem, seed, **kwargs)
