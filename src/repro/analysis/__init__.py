"""Statistical analysis of solver runs: aggregation, speed-ups, time-to-target.

The paper's evaluation reports three kinds of quantities, each covered by one
module here:

* :mod:`repro.analysis.stats` — per-instance aggregation of repeated runs
  (average / median / minimum / maximum, and the best-vs-average ratio that
  motivates parallelisation) — Tables I, III, IV, V;
* :mod:`repro.analysis.speedup` — speed-up tables and ideal-speed-up
  references — Figures 2 and 3;
* :mod:`repro.analysis.ttt` — time-to-target plots: empirical runtime CDFs,
  shifted-exponential fits, and the predicted behaviour of the minimum of
  ``k`` independent runs — Figure 4 and the theoretical justification of the
  linear speed-ups (Verhoeven & Aarts);
* :mod:`repro.analysis.tables` — plain-text rendering of paper-style tables
  used by the benchmark harness and the CLI.
"""

from repro.analysis.stats import RunSummary, summarize, summarize_results, best_to_average_ratio
from repro.analysis.speedup import SpeedupPoint, speedup_series, ideal_speedup, efficiency
from repro.analysis.ttt import (
    ExponentialFit,
    empirical_cdf,
    fit_shifted_exponential,
    min_of_k_expectation,
    predicted_speedup,
    time_to_target_curve,
)
from repro.analysis.tables import format_table, format_paper_table

__all__ = [
    "RunSummary",
    "summarize",
    "summarize_results",
    "best_to_average_ratio",
    "SpeedupPoint",
    "speedup_series",
    "ideal_speedup",
    "efficiency",
    "ExponentialFit",
    "empirical_cdf",
    "fit_shifted_exponential",
    "min_of_k_expectation",
    "predicted_speedup",
    "time_to_target_curve",
    "format_table",
    "format_paper_table",
]
