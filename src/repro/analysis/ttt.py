"""Time-to-target analysis (Figure 4) and the theory behind multi-walk speed-ups.

A *time-to-target* (TTT) plot shows, for a stochastic solver and a fixed
target (here: cost 0, i.e. a solution), the empirical cumulative distribution
of the solving time over many runs.  Aiex, Resende & Ribeiro popularised the
methodology; the paper uses it to show that the CAP runtime distribution is
very close to a **shifted exponential** ``F(x) = 1 - exp(-(x - mu) / lambda)``,
which by Verhoeven & Aarts' classical argument implies that independent
multi-walk parallelism achieves (nearly) linear speed-up: the minimum of ``k``
i.i.d. shifted-exponential runtimes is again shifted exponential with scale
``lambda / k``, so the expected parallel time is ``mu + lambda / k`` — linear
in ``1/k`` as long as the shift ``mu`` is small compared to ``lambda``.

This module provides the empirical CDF, a simple and robust fit of the shifted
exponential (method of moments / quantiles), the induced predictions for the
minimum of ``k`` runs, and a Kolmogorov–Smirnov-style distance so tests can
assert "the runtime distribution really is approximately exponential" on the
reproduction's own data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import AnalysisError

__all__ = [
    "ExponentialFit",
    "empirical_cdf",
    "time_to_target_curve",
    "fit_shifted_exponential",
    "ks_distance",
    "min_of_k_expectation",
    "predicted_speedup",
    "sample_min_of_k",
]


@dataclass(frozen=True)
class ExponentialFit:
    """Parameters of a shifted exponential ``1 - exp(-(x - shift) / scale)``."""

    shift: float
    scale: float

    def cdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """CDF value(s) at *x* (0 below the shift)."""
        arr = np.asarray(x, dtype=np.float64)
        out = 1.0 - np.exp(-np.maximum(arr - self.shift, 0.0) / self.scale)
        return float(out) if np.isscalar(x) else out

    def quantile(self, q: float) -> float:
        """Inverse CDF at probability *q*."""
        if not 0.0 <= q < 1.0:
            raise AnalysisError(f"quantile probability must be in [0, 1), got {q}")
        return self.shift - self.scale * float(np.log1p(-q))

    @property
    def mean(self) -> float:
        """Expected value ``shift + scale``."""
        return self.shift + self.scale

    def min_of_k(self, k: int) -> "ExponentialFit":
        """Distribution of the minimum of *k* i.i.d. copies (scale divided by k)."""
        if k < 1:
            raise AnalysisError(f"k must be >= 1, got {k}")
        return ExponentialFit(self.shift, self.scale / k)


def empirical_cdf(values: Sequence[float] | np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, probabilities)`` of the empirical CDF.

    Probabilities use the conventional plotting positions ``(i - 0.5) / n`` so
    the curve never touches 0 or 1 exactly (the same convention as the TTT
    plot tooling the paper cites).
    """
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    if arr.size == 0:
        raise AnalysisError("cannot build a CDF from an empty sample")
    probs = (np.arange(1, arr.size + 1) - 0.5) / arr.size
    return arr, probs


def time_to_target_curve(
    values: Sequence[float] | np.ndarray, *, targets: int = 200
) -> Tuple[np.ndarray, np.ndarray]:
    """Probability of having reached the target within ``t`` for a grid of ``t``.

    Convenience resampling of the empirical CDF onto an evenly spaced time
    grid from 0 to the sample maximum, handy for plotting several core counts
    on a common axis as in Figure 4.
    """
    xs, ps = empirical_cdf(values)
    if targets < 2:
        raise AnalysisError(f"targets must be >= 2, got {targets}")
    grid = np.linspace(0.0, float(xs[-1]), targets)
    probs = np.searchsorted(xs, grid, side="right") / xs.size
    return grid, probs


def fit_shifted_exponential(values: Sequence[float] | np.ndarray) -> ExponentialFit:
    """Fit ``1 - exp(-(x - mu)/lambda)`` to a runtime sample.

    The shift is estimated from the sample minimum (slightly deflated so the
    smallest observation has positive density) and the scale by the method of
    moments on the remainder.  This mirrors the standard TTT-plot methodology,
    is robust for the heavy right tails local search produces, and requires no
    optimisation libraries.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size < 2:
        raise AnalysisError("need at least two observations to fit a distribution")
    if np.any(arr < 0):
        raise AnalysisError("runtimes must be non-negative")
    minimum = float(arr.min())
    mean = float(arr.mean())
    # Deflate the shift a little so the smallest observation is not exactly at
    # probability zero; the 'n+1' correction keeps the estimator consistent.
    shift = max(0.0, minimum - (mean - minimum) / max(arr.size - 1, 1))
    scale = mean - shift
    if scale <= 0:
        # Degenerate sample (all values equal): fall back to a tiny scale.
        scale = max(abs(mean), 1.0) * 1e-9
    return ExponentialFit(shift=shift, scale=scale)


def ks_distance(values: Sequence[float] | np.ndarray, fit: ExponentialFit) -> float:
    """Kolmogorov–Smirnov distance between the sample and a fitted distribution."""
    xs, ps = empirical_cdf(values)
    model = np.asarray(fit.cdf(xs), dtype=np.float64)
    step = 1.0 / xs.size
    upper = np.abs(ps + 0.5 * step - model)
    lower = np.abs(ps - 0.5 * step - model)
    return float(np.max(np.maximum(upper, lower)))


def min_of_k_expectation(fit: ExponentialFit, k: int) -> float:
    """Expected value of the minimum of *k* i.i.d. runs: ``shift + scale / k``."""
    return fit.min_of_k(k).mean


def predicted_speedup(fit: ExponentialFit, k: int) -> float:
    """Predicted multi-walk speed-up on *k* cores under the exponential model.

    ``(shift + scale) / (shift + scale / k)`` — exactly ``k`` when the shift is
    zero, and saturating at ``(shift + scale) / shift`` as ``k`` grows, which
    is the theoretical ceiling the paper's discussion alludes to.
    """
    if k < 1:
        raise AnalysisError(f"k must be >= 1, got {k}")
    return fit.mean / min_of_k_expectation(fit, k)


def sample_min_of_k(
    values: Sequence[float] | np.ndarray,
    k: int,
    repetitions: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Bootstrap sample of the minimum of *k* runtimes drawn from the pool.

    This is the non-parametric counterpart of :func:`min_of_k_expectation`,
    used by the virtual cluster to cross-check the exponential model.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise AnalysisError("cannot resample from an empty pool")
    if k < 1 or repetitions < 1:
        raise AnalysisError("k and repetitions must be >= 1")
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    draws = generator.choice(arr, size=(repetitions, k), replace=True)
    return draws.min(axis=1)
