"""Aggregation of repeated stochastic-solver runs.

Every evaluation table of the paper reports, for a set of repeated runs of the
same instance, the average, the median (parallel tables), the minimum and the
maximum, and — for the sequential Table I — the ratio between the average and
the best run, which is the observation that motivates the whole multi-walk
approach ("the best case is much faster than the average case").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.result import SolveResult
from repro.exceptions import AnalysisError

__all__ = ["RunSummary", "summarize", "summarize_results", "best_to_average_ratio"]


@dataclass(frozen=True)
class RunSummary:
    """Five-number-style summary of a collection of scalar measurements."""

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    std: float
    total: float

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly view."""
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "min": self.minimum,
            "max": self.maximum,
            "std": self.std,
            "total": self.total,
        }

    @property
    def best_to_average_ratio(self) -> float:
        """``mean / min`` — the "ratio" column of Table I (∞ when the best is 0)."""
        if self.minimum <= 0:
            return float("inf")
        return self.mean / self.minimum

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} avg={self.mean:.3g} med={self.median:.3g} "
            f"min={self.minimum:.3g} max={self.maximum:.3g}"
        )


def summarize(values: Sequence[float] | np.ndarray) -> RunSummary:
    """Summarise a sequence of scalar measurements (times, iteration counts, …)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise AnalysisError("cannot summarise an empty collection of measurements")
    if not np.all(np.isfinite(arr)):
        raise AnalysisError("measurements contain non-finite values")
    return RunSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        total=float(arr.sum()),
    )


def summarize_results(
    results: Iterable[SolveResult],
    *,
    metric: str = "wall_time",
    solved_only: bool = True,
) -> RunSummary:
    """Summarise one numeric attribute of a collection of :class:`SolveResult`.

    ``metric`` may be any numeric ``SolveResult`` attribute
    (``"wall_time"``, ``"iterations"``, ``"local_minima"``, …).  By default
    only solved runs are aggregated, which is how the paper's tables treat
    runs (every reported run solved its instance).
    """
    values: List[float] = []
    for result in results:
        if solved_only and not result.solved:
            continue
        if not hasattr(result, metric):
            raise AnalysisError(f"SolveResult has no attribute {metric!r}")
        values.append(float(getattr(result, metric)))
    if not values:
        raise AnalysisError(
            f"no {'solved ' if solved_only else ''}runs to summarise for metric {metric!r}"
        )
    return summarize(values)


def best_to_average_ratio(
    values: Sequence[float] | np.ndarray, *, fallback: Optional[Sequence[float]] = None
) -> float:
    """``mean(values) / min(values)``, optionally falling back to another metric.

    Table I computes the ratio on times but falls back to iteration counts when
    the minimum time rounds to zero; pass the iteration counts as *fallback*
    to reproduce that rule.
    """
    summary = summarize(values)
    if summary.minimum > 0:
        return summary.best_to_average_ratio
    if fallback is not None:
        return best_to_average_ratio(fallback)
    return float("inf")
