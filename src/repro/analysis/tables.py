"""Plain-text table rendering in the style of the paper's tables.

The benchmark harness prints, for every reproduced table, rows with the same
structure as the original (instance size, then avg/med/min/max per core count,
etc.).  Keeping the formatting in one place makes the benchmark output easy to
diff against EXPERIMENTS.md and keeps the experiment drivers free of string
fiddling.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_paper_table"]


def _format_cell(value, float_format: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_format: str = "{:.2f}",
    title: Optional[str] = None,
) -> str:
    """Render a list of rows as an aligned plain-text table.

    ``None`` cells render as ``-`` (the paper's convention for configurations
    that were not run, e.g. sequential times of the largest instances).
    """
    rendered_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered_rows.append([_format_cell(cell, float_format) for cell in row])
    widths = [
        max(len(rendered_rows[r][c]) for r in range(len(rendered_rows)))
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(rendered_rows[0], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows[1:]:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_paper_table(
    sizes: Sequence[int],
    statistics: Mapping[int, Mapping[str, Mapping[str, float]]],
    columns: Sequence[str],
    *,
    stat_rows: Sequence[str] = ("avg", "med", "min", "max"),
    float_format: str = "{:.2f}",
    title: Optional[str] = None,
) -> str:
    """Render the paper's nested layout: one block of stat rows per instance size.

    Parameters
    ----------
    sizes:
        Instance sizes (the left-most column of the paper's tables).
    statistics:
        ``statistics[size][column][stat]`` — e.g.
        ``statistics[21]["256"]["avg"] = 16.01``.  Missing entries render as
        ``-``.
    columns:
        Column keys, in display order (e.g. core counts as strings).
    stat_rows:
        Which statistics to print per size, in order.
    """
    headers = ["Size", "stat", *columns]
    rows: List[List[object]] = []
    for size in sizes:
        per_size = statistics.get(size, {})
        for stat in stat_rows:
            row: List[object] = [size if stat == stat_rows[0] else "", stat]
            for column in columns:
                value = per_size.get(column, {}).get(stat)
                row.append(value)
            rows.append(row)
    return format_table(headers, rows, float_format=float_format, title=title)
