"""Speed-up and parallel-efficiency computations (Figures 2 and 3).

The paper plots, on a log-log scale, the average (and median) solving time
against the number of cores, together with the ideal linear-speed-up line.
Figure 2 normalises by the 32-core time (sequential runs being impractical for
the largest instances), Figure 3 by the 512- or 2,048-core time on JUGENE —
so the reference core count is a parameter here, not an assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.exceptions import AnalysisError

__all__ = ["SpeedupPoint", "speedup_series", "ideal_speedup", "efficiency"]


@dataclass(frozen=True)
class SpeedupPoint:
    """Speed-up of one core count relative to the reference core count."""

    cores: int
    time: float
    speedup: float
    ideal: float

    @property
    def efficiency(self) -> float:
        """Fraction of the ideal speed-up achieved (1.0 = perfectly linear)."""
        if self.ideal == 0:
            return 0.0
        return self.speedup / self.ideal


def speedup_series(
    times_by_cores: Mapping[int, float],
    *,
    reference_cores: int | None = None,
) -> List[SpeedupPoint]:
    """Turn a ``{cores: time}`` mapping into a speed-up series.

    ``reference_cores`` defaults to the smallest core count present (the
    paper's Figure 2 uses 32, Figure 3 uses 512/2048 — always the smallest
    measured configuration).  Speed-up of ``k`` cores is
    ``time(reference) / time(k)``; the ideal value is ``k / reference``.
    """
    if not times_by_cores:
        raise AnalysisError("times_by_cores is empty")
    for cores, t in times_by_cores.items():
        if cores < 1:
            raise AnalysisError(f"core counts must be >= 1, got {cores}")
        if t <= 0:
            raise AnalysisError(f"times must be positive, got {t} for {cores} cores")
    if reference_cores is None:
        reference_cores = min(times_by_cores)
    if reference_cores not in times_by_cores:
        raise AnalysisError(
            f"reference core count {reference_cores} missing from the measurements"
        )
    ref_time = times_by_cores[reference_cores]
    series = []
    for cores in sorted(times_by_cores):
        t = times_by_cores[cores]
        series.append(
            SpeedupPoint(
                cores=cores,
                time=t,
                speedup=ref_time / t,
                ideal=cores / reference_cores,
            )
        )
    return series


def ideal_speedup(core_counts: Sequence[int], *, reference_cores: int | None = None) -> Dict[int, float]:
    """The ideal (linear) speed-up line for the given core counts."""
    if not core_counts:
        raise AnalysisError("core_counts is empty")
    reference = reference_cores if reference_cores is not None else min(core_counts)
    if reference < 1:
        raise AnalysisError(f"reference core count must be >= 1, got {reference}")
    return {int(c): c / reference for c in core_counts}


def efficiency(points: Sequence[SpeedupPoint]) -> Dict[int, float]:
    """Parallel efficiency (achieved / ideal speed-up) per core count."""
    if not points:
        raise AnalysisError("no speed-up points given")
    return {p.cores: p.efficiency for p in points}
