"""Command-line interface: ``repro <command>``.

Commands
--------
``repro solve N``
    Solve one Costas Array Problem instance with sequential Adaptive Search.
``repro parallel N``
    Solve one instance with the multi-process independent multi-walk solver.
``repro construct N``
    Build a Costas array algebraically (Welch / Lempel / Golomb) when possible.
``repro enumerate N``
    Exhaustively count (and optionally print) all Costas arrays of order N.
``repro experiment ID``
    Run one of the paper's experiments (``table1`` … ``figure4``,
    ``ablation-*``) at a chosen scale preset and print its table.
``repro list-experiments``
    Show the identifiers accepted by ``repro experiment``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed separately for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Parallel Local Search for the Costas Array Problem' "
            "(Diaz et al., IPPS 2012)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve one CAP instance sequentially")
    p_solve.add_argument("order", type=int, help="Costas array order (n >= 3)")
    p_solve.add_argument("--seed", type=int, default=None, help="random seed")
    p_solve.add_argument("--basic", action="store_true", help="use the basic (untuned) model")
    p_solve.add_argument("--quiet", action="store_true", help="only print the permutation")

    p_par = sub.add_parser("parallel", help="solve one CAP instance with multi-walk processes")
    p_par.add_argument("order", type=int)
    p_par.add_argument("--workers", type=int, default=None, help="number of worker processes")
    p_par.add_argument("--seed", type=int, default=None, help="root seed")
    p_par.add_argument("--max-time", type=float, default=None, help="wall-clock limit (s)")

    p_cons = sub.add_parser("construct", help="build a Costas array algebraically")
    p_cons.add_argument("order", type=int)
    p_cons.add_argument(
        "--method",
        choices=["welch", "lempel", "golomb"],
        default=None,
        help="force a specific construction",
    )

    p_enum = sub.add_parser("enumerate", help="count all Costas arrays of an order")
    p_enum.add_argument("order", type=int)
    p_enum.add_argument("--print", dest="print_arrays", action="store_true",
                        help="print every array (1-based)")
    p_enum.add_argument("--classes", action="store_true",
                        help="also count symmetry equivalence classes")

    p_exp = sub.add_parser("experiment", help="run one of the paper's experiments")
    p_exp.add_argument("identifier", help="experiment id (see list-experiments)")
    p_exp.add_argument("--scale", default="default", choices=["smoke", "default", "paper"],
                       help="scale preset")
    p_exp.add_argument("--json", action="store_true", help="print the raw rows as JSON")

    sub.add_parser("list-experiments", help="list experiment identifiers")
    return parser


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro import ASParameters, solve_costas

    options = {}
    if args.basic:
        options = dict(err_weight="constant", use_chang=False, dedicated_reset=False)
    result = solve_costas(args.order, seed=args.seed, **options)
    if args.quiet:
        print(list(result.as_costas_array().to_one_based()))
        return 0
    print(result.result.summary())
    if result.solved:
        array = result.as_costas_array()
        print("permutation (1-based):", list(array.to_one_based()))
        print(array.render())
    return 0 if result.solved else 1


def _cmd_parallel(args: argparse.Namespace) -> int:
    from repro import parallel_solve_costas
    from repro.costas import CostasArray

    outcome = parallel_solve_costas(
        args.order,
        n_workers=args.workers,
        seed_root=args.seed,
        max_time=args.max_time,
    )
    print(
        f"{outcome.n_workers} walks, wall time {outcome.wall_time:.3f}s, "
        f"total iterations {outcome.total_iterations}"
    )
    print(outcome.best.summary())
    if outcome.solved:
        array = CostasArray.from_permutation(outcome.best.configuration)
        print("permutation (1-based):", list(array.to_one_based()))
    return 0 if outcome.solved else 1


def _cmd_construct(args: argparse.Namespace) -> int:
    from repro.costas import construct
    from repro.exceptions import ConstructionError

    try:
        array = construct(args.order, method=args.method)
    except ConstructionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print("permutation (1-based):", list(array.to_one_based()))
    print(array.render())
    return 0


def _cmd_enumerate(args: argparse.Namespace) -> int:
    from repro.costas import enumerate_costas_arrays, equivalence_classes, known_count

    arrays = list(enumerate_costas_arrays(args.order))
    print(f"order {args.order}: {len(arrays)} Costas arrays")
    published = known_count(args.order)
    if published is not None:
        status = "matches" if published == len(arrays) else "DIFFERS FROM"
        print(f"published count: {published} ({status} enumeration)")
    if args.classes:
        classes = equivalence_classes(arrays)
        print(f"equivalence classes (up to rotation/reflection): {len(classes)}")
    if args.print_arrays:
        for array in arrays:
            print(list(array.to_one_based()))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentScale
    from repro.experiments.registry import run_experiment

    scale = ExperimentScale.by_name(args.scale)
    result = run_experiment(args.identifier, scale)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, default=float))
    else:
        print(result.format())
    return 0


def _cmd_list_experiments(_: argparse.Namespace) -> int:
    from repro.experiments.registry import list_experiments

    for identifier in list_experiments():
        print(identifier)
    return 0


_DISPATCH = {
    "solve": _cmd_solve,
    "parallel": _cmd_parallel,
    "construct": _cmd_construct,
    "enumerate": _cmd_enumerate,
    "experiment": _cmd_experiment,
    "list-experiments": _cmd_list_experiments,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _DISPATCH[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
