"""Command-line interface: ``repro <command>``.

Commands
--------
``repro solve N``
    Solve one Costas Array Problem instance with sequential Adaptive Search.
``repro parallel N``
    Solve one instance with the multi-process independent multi-walk solver.
``repro construct N``
    Build a Costas array algebraically (Welch / Lempel / Golomb) when possible.
``repro enumerate N``
    Exhaustively count (and optionally print) all Costas arrays of order N.
``repro experiment ID``
    Run one of the paper's experiments (``table1`` … ``figure4``,
    ``ablation-*``) at a chosen scale preset and print its table.
``repro list-experiments``
    Show the identifiers accepted by ``repro experiment``.
``repro solvers``
    List the registered search strategies, their parameter dataclasses and
    defaults (``--json`` for machine-readable output).
``repro problems``
    List the registered problem families: symmetry groups, construction
    shortcuts, minimum orders (``--json`` for machine-readable output).
``repro serve``
    Run the solver-as-a-service HTTP server (persistent solution store,
    request coalescing, long-lived worker pool).  The default front-end is
    the asyncio server (``POST /solve-batch``, ``GET /events/<id>`` progress
    streaming, thousands of concurrent waiting clients); ``--sync`` selects
    the legacy thread-per-connection server.
``repro lint``
    Project-invariant static analysis: lock ordering / blocking-while-locked
    in the service layer, seeded determinism in the solver core, async
    safety in the event-loop front-end, C-kernel vs ctypes vs Python-mirror
    drift, and the 429/503/504 retry contract.  Checks the whole tree
    against the committed ``lint-baseline.txt`` (only *new* findings fail);
    ``--json`` and ``--rule`` narrow the output.
``repro request N [N ...]``
    Submit solve requests to a running ``repro serve`` instance; with
    ``--batch`` all orders travel in one ``POST /solve-batch`` body (one
    scheduler pass server-side).

``parallel``, ``serve`` and ``request`` accept ``--solver`` with a registry
name (``tabu``), an inline portfolio (``adaptive+tabu``, raced
first-past-the-post across walks) or a named portfolio (``mixed``);
``solve`` runs a single walk, so it accepts a single solver name only.

``solve``, ``parallel`` and ``request`` accept ``--kind`` with any family of
the :mod:`repro.problems` registry (``costas``, ``queens``, ``all-interval``,
``magic-square``); the default is the paper's Costas Array Problem.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed separately for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Parallel Local Search for the Costas Array Problem' "
            "(Diaz et al., IPPS 2012)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve one problem instance sequentially")
    p_solve.add_argument("order", type=int, help="instance order (e.g. Costas n >= 3)")
    p_solve.add_argument(
        "--kind",
        default="costas",
        help="problem family to solve (see 'repro problems'); default: costas",
    )
    p_solve.add_argument("--seed", type=int, default=None, help="random seed")
    p_solve.add_argument("--basic", action="store_true", help="use the basic (untuned) model")
    p_solve.add_argument("--quiet", action="store_true", help="only print the permutation")
    p_solve.add_argument(
        "--construct-first",
        action="store_true",
        help="try the Welch/Lempel/Golomb constructions before searching",
    )
    p_solve.add_argument(
        "--solver",
        default=None,
        help="registered solver to run (see 'repro solvers'); default: adaptive",
    )
    p_solve.add_argument(
        "--max-time", type=float, default=None, help="wall-clock limit (s)"
    )
    p_solve.add_argument(
        "--population",
        type=int,
        default=1,
        help=(
            "vectorised walks in one compiled-kernel batch (compiled walk "
            "engine; first solution wins); default: 1"
        ),
    )

    p_par = sub.add_parser(
        "parallel", help="solve one instance with multi-walk processes"
    )
    p_par.add_argument("order", type=int)
    p_par.add_argument(
        "--kind",
        default="costas",
        help="problem family to solve (see 'repro problems'); default: costas",
    )
    p_par.add_argument("--workers", type=int, default=None, help="number of worker processes")
    p_par.add_argument("--seed", type=int, default=None, help="root seed")
    p_par.add_argument("--max-time", type=float, default=None, help="wall-clock limit (s)")
    p_par.add_argument(
        "--solver",
        default=None,
        help="solver or portfolio for the walks (e.g. tabu, adaptive+tabu, mixed)",
    )
    p_par.add_argument(
        "--population",
        type=int,
        default=1,
        help=(
            "vectorised walks per worker process (compiled walk engine), "
            "racing workers x population walks on workers cores; default: 1"
        ),
    )

    p_cons = sub.add_parser("construct", help="build a Costas array algebraically")
    p_cons.add_argument("order", type=int)
    p_cons.add_argument(
        "--method",
        choices=["welch", "lempel", "golomb"],
        default=None,
        help="force a specific construction",
    )

    p_enum = sub.add_parser("enumerate", help="count all Costas arrays of an order")
    p_enum.add_argument("order", type=int)
    p_enum.add_argument("--print", dest="print_arrays", action="store_true",
                        help="print every array (1-based)")
    p_enum.add_argument("--classes", action="store_true",
                        help="also count symmetry equivalence classes")

    p_exp = sub.add_parser("experiment", help="run one of the paper's experiments")
    p_exp.add_argument("identifier", help="experiment id (see list-experiments)")
    p_exp.add_argument("--scale", default="default", choices=["smoke", "default", "paper"],
                       help="scale preset")
    p_exp.add_argument("--json", action="store_true", help="print the raw rows as JSON")

    sub.add_parser("list-experiments", help="list experiment identifiers")

    p_solvers = sub.add_parser(
        "solvers", help="list registered search strategies and their parameters"
    )
    p_solvers.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    p_problems = sub.add_parser(
        "problems", help="list registered problem families and their properties"
    )
    p_problems.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    p_serve = sub.add_parser("serve", help="run the solver-as-a-service HTTP server")
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument("--port", type=int, default=8000, help="TCP port")
    frontend = p_serve.add_mutually_exclusive_group()
    frontend.add_argument(
        "--async",
        dest="frontend_async",
        action="store_true",
        default=True,
        help="asyncio front-end: batch + SSE endpoints, thousands of "
        "concurrent waiting clients (the default)",
    )
    frontend.add_argument(
        "--sync",
        dest="frontend_async",
        action="store_false",
        help="legacy thread-per-connection front-end (no /solve-batch, "
        "no /events/<id>)",
    )
    p_serve.add_argument(
        "--db", default="solutions.db", help="solution store path (':memory:' for ephemeral)"
    )
    p_serve.add_argument("--workers", type=int, default=None, help="worker process count")
    p_serve.add_argument("--walks", type=int, default=1, help="independent walks per search job")
    p_serve.add_argument(
        "--population",
        type=int,
        default=1,
        help=(
            "vectorised walks per worker slot (compiled walk engine); each "
            "search walk batches this many kernel walks and reports the best"
        ),
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=256, help="max queued jobs before 503 backpressure"
    )
    p_serve.add_argument(
        "--lanes",
        nargs="?",
        const="default",
        default=None,
        metavar="SPEC",
        help="enable QoS lanes: bare --lanes uses the stock "
        "interactive/batch/background split; or pass "
        "'name[=depth[:weight]],...' for custom lanes",
    )
    p_serve.add_argument(
        "--quota",
        default=None,
        metavar="SPEC",
        help="per-tenant admission quotas as 'tenant=rate[:burst],...' "
        "(rate in new jobs/s; '*' sets the default for unlisted tenants)",
    )
    p_serve.add_argument(
        "--max-time", type=float, default=300.0, help="default per-walk time budget (s)"
    )
    p_serve.add_argument(
        "--solver",
        default=None,
        help="default solver/portfolio for requests that do not name one",
    )
    p_serve.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection for chaos testing: "
        "'point=rate[,point=rate...][,seed=N]' or a JSON plan "
        "(points: worker.crash, worker.hang, worker.slow, "
        "store.read.error, store.write.locked, http.drop)",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to drain in-flight solves on SIGTERM/SIGINT before "
        "aborting what remains",
    )
    p_serve.add_argument("--quiet", action="store_true", help="suppress per-request logging")

    p_lint = sub.add_parser(
        "lint",
        help="static-analysis suite for the project's concurrency, "
        "determinism, async, kernel-drift and HTTP-contract invariants",
        description=(
            "Run the project-invariant static-analysis suite.  Rules: "
            "lock-order (lock-acquisition cycles), lock-blocking (blocking "
            "work while a lock is held), unseeded-random (entropy outside "
            "core.rng seeded generators), async-blocking (blocking calls on "
            "the event loop), kernel-drift (C prototypes vs ctypes "
            "signatures), rng-drift (C vs Python-mirror RNG constants), "
            "http-retry-contract (429/503/504 without Retry-After + retry "
            "body), bad-suppression (ignore comment missing its "
            "justification).  Findings print as 'file:line rule-id "
            "message'.  Suppress a finding only with an inline "
            "'# repro-lint: ignore[rule-id] -- <justification>' comment; "
            "the justification is mandatory.  Without paths the whole tree "
            "is checked against the committed lint-baseline.txt, so only "
            "NEW findings fail the run."
        ),
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        metavar="path",
        help="specific .py files to check (default: the whole repo tree "
        "against the committed baseline)",
    )
    p_lint.add_argument(
        "--rule",
        action="append",
        metavar="RULE",
        help="only run/report the given rule id (repeatable, or "
        "comma-separated)",
    )
    p_lint.add_argument(
        "--json", action="store_true", help="machine-readable findings output"
    )
    p_lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file to compare against (default: lint-baseline.txt "
        "at the repo root)",
    )
    p_lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the committed baseline",
    )
    p_lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file",
    )
    p_lint.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="repository root to lint (default: auto-detected)",
    )

    p_req = sub.add_parser("request", help="submit one request to a running server")
    p_req.add_argument(
        "orders",
        type=int,
        nargs="+",
        metavar="order",
        help="instance order(s); several orders go as one batch with --batch",
    )
    p_req.add_argument(
        "--batch",
        action="store_true",
        help="submit all orders in one POST /solve-batch call "
        "(one scheduler pass; requires the async front-end)",
    )
    p_req.add_argument(
        "--kind",
        default="costas",
        help="problem family to request (see 'repro problems'); default: costas",
    )
    p_req.add_argument("--url", default="http://127.0.0.1:8000", help="server base URL")
    p_req.add_argument("--priority", type=int, default=0, help="scheduling priority")
    p_req.add_argument("--max-time", type=float, default=None, help="per-walk budget (s)")
    p_req.add_argument(
        "--solver",
        default=None,
        help="solver or portfolio to request (e.g. tabu, adaptive+tabu, mixed)",
    )
    p_req.add_argument(
        "--timeout", type=float, default=600.0, help="client-side wait limit (s)"
    )
    p_req.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="server-side deadline (s): the request fails with 504 instead "
        "of queueing past this budget",
    )
    p_req.add_argument(
        "--retries",
        type=int,
        default=3,
        help="client-side retries for 503 responses (honouring Retry-After) "
        "and dropped connections, with jittered exponential backoff",
    )
    p_req.add_argument(
        "--no-retry",
        action="store_true",
        help="fail immediately on 503 or a dropped connection",
    )
    p_req.add_argument(
        "--tenant",
        default=None,
        help="tenant identity, sent as the X-Repro-Tenant header "
        "(counted against per-tenant quotas when the server runs --quota)",
    )
    p_req.add_argument(
        "--lane",
        default=None,
        help="QoS lane to request (interactive/batch/background when the "
        "server runs --lanes); omit to let the server classify by deadline",
    )
    return parser


def _solve_family(args: argparse.Namespace, family) -> int:
    """Sequential solve of a non-Costas family through the two registries."""
    from repro.exceptions import SolverError
    from repro.solvers import resolve_portfolio, run_spec

    if args.construct_first:
        solution = family.try_construct(args.order)
        if solution is not None:
            values = [int(v) + 1 for v in solution]
            if args.quiet:
                print(values)
            else:
                print(f"constructed algebraically ({family.name}, order {args.order})")
                print("solution (1-based):", values)
            return 0
        if not args.quiet:
            print(
                f"no algebraic construction for {family.name} order {args.order}; "
                "falling back to search"
            )

    if args.basic:
        # The basic/optimised model split is a Costas-specific ablation.
        print(
            f"error: --basic only applies to the costas family, not {family.name}",
            file=sys.stderr,
        )
        return 1
    try:
        specs = resolve_portfolio(args.solver)
        if len(specs) > 1:
            print(
                f"error: {args.solver!r} is a portfolio; sequential solve "
                "runs one walk — use 'repro parallel --solver' to race it",
                file=sys.stderr,
            )
            return 1
        result = run_spec(
            specs[0],
            family.make(args.order),
            seed=args.seed,
            problem_kind=family.name,
            max_time=args.max_time,
            population=args.population,
        )
    except SolverError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.quiet:
        if not result.solved:
            print(f"unsolved: {result.summary()}", file=sys.stderr)
            return 1
        print([int(v) + 1 for v in result.configuration])
        return 0
    print(result.summary())
    _print_engine_line(result)
    if result.solved:
        print("solution (1-based):", [int(v) + 1 for v in result.configuration])
    return 0 if result.solved else 1


def _print_engine_line(result) -> None:
    """One observability line: kernel path, engine that ran, population width."""
    from repro.core import _ckernels

    parts = [f"kernel mode: {_ckernels.mode()}"]
    engine = result.extra.get("engine")
    if engine is not None:
        parts.append(f"engine: {engine}")
    population = int(result.extra.get("population", 1))
    if population > 1:
        parts.append(f"population: {population}")
    print(", ".join(parts))


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro import ASParameters, solve_costas
    from repro.exceptions import SolverError
    from repro.problems import get_family

    try:
        family = get_family(args.kind)
    except SolverError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if family.name != "costas":
        return _solve_family(args, family)

    if args.construct_first:
        from repro.costas import construct
        from repro.exceptions import ConstructionError

        try:
            array = construct(args.order)
        except ConstructionError:
            if not args.quiet:
                print(
                    f"no algebraic construction for order {args.order}; "
                    "falling back to search"
                )
        else:
            if args.quiet:
                print(list(array.to_one_based()))
            else:
                print(f"constructed algebraically (order {args.order})")
                print("permutation (1-based):", list(array.to_one_based()))
                print(array.render())
            return 0

    options = {}
    if args.basic:
        options = dict(err_weight="constant", use_chang=False, dedicated_reset=False)

    if args.solver is not None or args.max_time is not None or args.population > 1:
        # Any registered strategy, through the registry's uniform interface
        # (also the path for --max-time, which the registry harness provides
        # to every solver uniformly).
        from repro.costas import CostasArray
        from repro.exceptions import SolverError
        from repro.models import CostasProblem
        from repro.solvers import resolve_portfolio, run_spec

        try:
            specs = resolve_portfolio(args.solver)
            if len(specs) > 1:
                print(
                    f"error: {args.solver!r} is a portfolio; sequential solve "
                    "runs one walk — use 'repro parallel --solver' to race it",
                    file=sys.stderr,
                )
                return 1
            result = run_spec(
                specs[0],
                CostasProblem(args.order, **options),
                seed=args.seed,
                problem_kind="costas",
                max_time=args.max_time,
                population=args.population,
            )
        except SolverError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if args.quiet:
            if not result.solved:
                print(f"unsolved: {result.summary()}", file=sys.stderr)
                return 1
            print([int(v) + 1 for v in result.configuration])
            return 0
        print(result.summary())
        _print_engine_line(result)
        if result.solved:
            array = CostasArray.from_permutation(result.configuration)
            print("permutation (1-based):", list(array.to_one_based()))
            print(array.render())
        return 0 if result.solved else 1

    result = solve_costas(args.order, seed=args.seed, **options)
    if args.quiet:
        print(list(result.as_costas_array().to_one_based()))
        return 0
    print(result.result.summary())
    _print_engine_line(result.result)
    if result.solved:
        array = result.as_costas_array()
        print("permutation (1-based):", list(array.to_one_based()))
        print(array.render())
    return 0 if result.solved else 1


def _cmd_parallel(args: argparse.Namespace) -> int:
    from repro import parallel_solve_costas
    from repro.costas import CostasArray
    from repro.exceptions import SolverError

    from repro.problems import get_family

    try:
        family = get_family(args.kind)
        if args.order < family.min_order:
            # Validate in the parent: otherwise every worker child dies on
            # the same SolverError and the CLI shows a worker-crash traceback.
            raise SolverError(
                f"{family.name} order must be >= {family.min_order}, got {args.order}"
            )
        if family.name == "costas":
            outcome = parallel_solve_costas(
                args.order,
                n_workers=args.workers,
                solver=args.solver,
                seed_root=args.seed,
                max_time=args.max_time,
                population=args.population,
            )
        else:
            from repro.core.params import ASParameters
            from repro.parallel.multiwalk import MultiWalkSolver
            from repro.problems import problem_factory

            multiwalk = MultiWalkSolver(
                problem_factory(family.name, args.order),
                ASParameters.for_problem_size(family.instance_size(args.order)),
                solver=args.solver,
                n_workers=args.workers,
                seed_root=args.seed,
                population=args.population,
            )
            outcome = multiwalk.solve(max_time=args.max_time)
    except SolverError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    population_note = (
        f" x {args.population} population walks each" if args.population > 1 else ""
    )
    print(
        f"{outcome.n_workers} walks{population_note} "
        f"({'+'.join(outcome.solvers)}), "
        f"wall time {outcome.wall_time:.3f}s, "
        f"total iterations {outcome.total_iterations}"
    )
    print(outcome.best.summary())
    if outcome.solved:
        if family.name == "costas":
            array = CostasArray.from_permutation(outcome.best.configuration)
            print("permutation (1-based):", list(array.to_one_based()))
        else:
            print(
                "solution (1-based):",
                [int(v) + 1 for v in outcome.best.configuration],
            )
    return 0 if outcome.solved else 1


def _cmd_construct(args: argparse.Namespace) -> int:
    from repro.costas import construct
    from repro.exceptions import ConstructionError

    try:
        array = construct(args.order, method=args.method)
    except ConstructionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print("permutation (1-based):", list(array.to_one_based()))
    print(array.render())
    return 0


def _cmd_enumerate(args: argparse.Namespace) -> int:
    from repro.costas import enumerate_costas_arrays, equivalence_classes, known_count

    arrays = list(enumerate_costas_arrays(args.order))
    print(f"order {args.order}: {len(arrays)} Costas arrays")
    mismatch = False
    published = known_count(args.order)
    if published is not None:
        # Cross-check against the published table (OEIS A008404): a mismatch
        # means the enumeration (or the table) is wrong, so make it loud and
        # fail the command — this turns the table into a live validation.
        mismatch = published != len(arrays)
        status = "matches" if not mismatch else "DIFFERS FROM"
        print(f"published count: {published} ({status} enumeration)")
    if args.classes:
        classes = equivalence_classes(arrays)
        print(f"equivalence classes (up to rotation/reflection): {len(classes)}")
    if args.print_arrays:
        for array in arrays:
            print(list(array.to_one_based()))
    if mismatch:
        print(
            f"error: enumeration found {len(arrays)} arrays but the published "
            f"count for order {args.order} is {published}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ExperimentScale
    from repro.experiments.registry import run_experiment

    scale = ExperimentScale.by_name(args.scale)
    result = run_experiment(args.identifier, scale)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, default=float))
    else:
        print(result.format())
    return 0


def _cmd_list_experiments(_: argparse.Namespace) -> int:
    from repro.experiments.registry import list_experiments

    for identifier in list_experiments():
        print(identifier)
    return 0


def _cmd_solvers(args: argparse.Namespace) -> int:
    from repro.solvers import list_portfolios, list_solvers

    if args.json:
        payload = {
            "solvers": [
                {
                    "name": info.name,
                    "aliases": list(info.aliases),
                    "result_name": info.result_name or info.name,
                    "problem_kinds": list(info.problem_kinds),
                    "summary": info.summary,
                    "params_class": info.params_cls.__name__,
                    "param_defaults": info.param_defaults(),
                }
                for info in list_solvers()
            ],
            "portfolios": {
                name: list(members) for name, members in list_portfolios().items()
            },
        }
        print(json.dumps(payload, indent=2, default=str))
        return 0

    for info in list_solvers():
        aliases = f" (aliases: {', '.join(info.aliases)})" if info.aliases else ""
        print(f"{info.name}{aliases}")
        print(f"    {info.summary}")
        print(f"    problems: {', '.join(info.problem_kinds)}")
        defaults = ", ".join(
            f"{k}={v!r}" for k, v in info.param_defaults().items()
        )
        print(f"    {info.params_cls.__name__}({defaults})")
    portfolios = list_portfolios()
    if portfolios:
        print("portfolios:")
        for name, members in sorted(portfolios.items()):
            print(f"    {name} = {'+'.join(members)}")
    return 0


def _cmd_problems(args: argparse.Namespace) -> int:
    from repro.problems import list_families

    if args.json:
        payload = {"problems": [family.describe() for family in list_families()]}
        print(json.dumps(payload, indent=2))
        return 0

    for family in list_families():
        aliases = f" (aliases: {', '.join(family.aliases)})" if family.aliases else ""
        print(f"{family.name}{aliases}")
        print(f"    {family.summary}")
        print(
            f"    symmetry: {family.symmetry.name} "
            f"(order {family.symmetry.order}); min order: {family.min_order}"
        )
        shortcut = "yes" if family.construct is not None else "no"
        print(f"    algebraic construction: {shortcut}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service.api import ServiceConfig
    from repro.service.faults import FaultPlan

    fault_plan = None
    if args.faults is not None:
        # Parse in the CLI so a typo'd spec is a one-line error, not a
        # traceback out of the service constructor.
        try:
            fault_plan = FaultPlan.parse(args.faults)
        except ValueError as exc:
            print(f"error: --faults: {exc}", file=sys.stderr)
            return 1
    if args.lanes is not None or args.quota is not None:
        # Validate in the CLI so a typo'd spec is a one-line error, not a
        # traceback out of the service constructor.
        from repro.service.qos import TenantQuotas, parse_lanes

        try:
            if args.lanes is not None:
                parse_lanes(args.lanes, args.queue_depth)
            if args.quota is not None:
                TenantQuotas.from_spec(args.quota)
        except ValueError as exc:
            print(f"error: --lanes/--quota: {exc}", file=sys.stderr)
            return 1
    config = ServiceConfig(
        store_path=args.db,
        n_workers=args.workers,
        walks_per_job=args.walks,
        population=args.population,
        max_queue_depth=args.queue_depth,
        default_max_time=args.max_time,
        default_solver=args.solver,
        fault_plan=fault_plan,
        drain_timeout=args.drain_timeout,
        lanes=args.lanes,
        quotas=args.quota,
    )
    if args.frontend_async:
        from repro.service.http_async import AsyncServiceHTTPServer

        server = AsyncServiceHTTPServer(
            (args.host, args.port), config=config, verbose=not args.quiet
        )
        frontend = "async"
    else:
        from repro.service.http import ServiceHTTPServer

        server = ServiceHTTPServer(
            (args.host, args.port), config=config, verbose=not args.quiet
        )
        frontend = "sync"
    # Resolving the kernel mode here also warms the compile cache in the
    # parent, so forked workers inherit the loaded library for free.
    from repro.core import _ckernels

    population_note = f", population={args.population}" if args.population > 1 else ""
    print(
        f"repro service on http://{args.host}:{server.port} "
        f"(frontend={frontend}, store={args.db}, "
        f"workers={server.service.pool.n_workers}, "
        f"queue_depth={args.queue_depth}, "
        f"kernel_mode={_ckernels.mode()}{population_note})"
    )
    if args.lanes is not None:
        print(
            "QoS lanes ACTIVE: "
            + ", ".join(server.service.scheduler.lane_order)
            + (f" (quota: {args.quota})" if args.quota else "")
        )
    if fault_plan is not None and fault_plan.enabled:
        print(f"fault injection ACTIVE: {fault_plan.to_json()}")
    # SIGTERM (the default `kill`, and what container runtimes send) drains
    # exactly like Ctrl-C instead of killing mid-solve.  The async front-end
    # re-registers both signals on its event loop, where they resolve the
    # shutdown future instead of raising — either way serve_forever returns
    # and the bounded drain below runs.
    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous_term = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        print("\ndraining workers ...")
        signal.signal(signal.SIGTERM, previous_term)
        server.stop(drain=True)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.runner import run_cli

    return run_cli(args)


def _cmd_request(args: argparse.Namespace) -> int:
    import http.client
    import random
    import time as time_module
    import urllib.error
    import urllib.request

    from repro.service.faults import RetryPolicy

    base = args.url.rstrip("/")
    # HTTPError never reaches these handlers (it carries a parsed status and
    # is absorbed by _call_once); ValueError covers truncated/garbled JSON
    # from a connection dropped mid-response.
    _NETWORK_ERRORS = (
        http.client.HTTPException,
        urllib.error.URLError,
        OSError,
        ValueError,
    )
    retries = 0 if args.no_retry else max(0, args.retries)
    backoff = RetryPolicy(
        attempts=retries + 1, base_delay=0.2, factor=2.0, max_delay=5.0
    )
    rng = random.Random()

    def _call_once(method: str, path: str, body=None, timeout: float = 30.0):
        data = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if args.tenant is not None:
            headers["X-Repro-Tenant"] = args.tenant
        req = urllib.request.Request(
            base + path,
            data=data,
            method=method,
            headers=headers,
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as resp:
                return (
                    resp.status,
                    json.loads(resp.read().decode("utf-8")),
                    resp.headers,
                )
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read().decode("utf-8") or "{}"), exc.headers

    def _call(method: str, path: str, body=None, timeout: float = 30.0):
        """One logical request: 503s (honouring ``Retry-After``) and dropped
        connections are retried with jittered exponential backoff."""
        attempt = 0
        while True:
            try:
                status, payload, headers = _call_once(method, path, body, timeout)
            except _NETWORK_ERRORS as exc:
                if attempt >= retries:
                    raise
                delay = backoff.delay(attempt + 1, rng)
                print(
                    f"connection dropped ({exc}); retry "
                    f"{attempt + 1}/{retries} in {delay:.1f}s",
                    file=sys.stderr,
                )
            else:
                # 503 = server saturated, 429 = over tenant quota; both carry
                # Retry-After and both deserve the same backoff treatment.
                if status not in (503, 429) or attempt >= retries:
                    return status, payload
                delay = backoff.delay(attempt + 1, rng)
                retry_after = headers.get("Retry-After")
                if retry_after is not None:
                    try:
                        delay = max(delay, float(retry_after))
                    except ValueError:
                        pass
                print(
                    f"server busy ({payload.get('error', 'unavailable')}); "
                    f"retry {attempt + 1}/{retries} in {delay:.1f}s",
                    file=sys.stderr,
                )
            attempt += 1
            time_module.sleep(delay)

    def _item_body(order: int) -> dict:
        body = {"order": order, "kind": args.kind, "priority": args.priority}
        if args.max_time is not None:
            body["max_time"] = args.max_time
        if args.deadline is not None:
            body["deadline"] = args.deadline
        if args.solver is not None:
            body["solver"] = args.solver
        if args.lane is not None:
            body["lane"] = args.lane
        return body

    def _print_solved(payload: dict, order: int) -> None:
        via = payload["source"]
        solver = (payload.get("detail") or {}).get("solver")
        if solver:
            via = f"{via} ({solver})"
        kind = payload.get("kind", args.kind)
        print(f"{kind} order {order} via {via} in {payload['elapsed']:.4f}s")
        label = "permutation" if kind == "costas" else "solution"
        print(f"{label} (1-based):", [v + 1 for v in payload["solution"]])

    if args.batch:
        # One POST /solve-batch call: one HTTP round-trip, one scheduler pass
        # on the server — this is the amortised path for many instances.
        body = {
            "items": [_item_body(order) for order in args.orders],
            "wait": True,
        }
        try:
            # The server holds the response while it solves; the client-side
            # budget is the user's --timeout, not the per-poll default.
            status, payload = _call(
                "POST", "/solve-batch", body, timeout=args.timeout
            )
        except _NETWORK_ERRORS as exc:
            print(f"error: cannot reach {base}: {exc}", file=sys.stderr)
            return 1
        if status != 200:
            print(f"error: {payload.get('error', payload)}", file=sys.stderr)
            return 1
        failures = 0
        for order, item in zip(args.orders, payload["results"]):
            if item.get("status") == "done" and item.get("solved"):
                _print_solved(item, order)
            else:
                failures += 1
                print(f"order {order}: {item}", file=sys.stderr)
        return 0 if failures == 0 else 1

    exit_code = 0
    for order in args.orders:
        try:
            status, payload = _call("POST", "/solve", _item_body(order))
        except _NETWORK_ERRORS as exc:
            print(f"error: cannot reach {base}: {exc}", file=sys.stderr)
            return 1
        if status == 503:
            print(f"server busy: {payload.get('error')}", file=sys.stderr)
            return 2
        if status not in (200, 202):
            print(f"error: {payload.get('error', payload)}", file=sys.stderr)
            return 1
        deadline = time_module.monotonic() + args.timeout
        while status == 202:
            if time_module.monotonic() > deadline:
                print(
                    f"timed out after {args.timeout}s "
                    f"(request {payload.get('request_id')} still pending)",
                    file=sys.stderr,
                )
                return 1
            time_module.sleep(0.2)
            try:
                status, payload = _call("GET", f"/result/{payload['request_id']}")
            except _NETWORK_ERRORS as exc:
                print(f"error: lost contact with {base}: {exc}", file=sys.stderr)
                return 1
        if status != 200 or not payload.get("solved"):
            print(f"unsolved: {payload}", file=sys.stderr)
            exit_code = 1
            continue
        _print_solved(payload, order)
    return exit_code


_DISPATCH = {
    "solve": _cmd_solve,
    "parallel": _cmd_parallel,
    "construct": _cmd_construct,
    "enumerate": _cmd_enumerate,
    "experiment": _cmd_experiment,
    "list-experiments": _cmd_list_experiments,
    "solvers": _cmd_solvers,
    "problems": _cmd_problems,
    "serve": _cmd_serve,
    "lint": _cmd_lint,
    "request": _cmd_request,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _DISPATCH[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
