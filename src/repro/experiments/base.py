"""Shared plumbing for the experiment drivers.

Each driver returns a subclass of :class:`ExperimentResult` holding structured
rows plus enough metadata (scale preset, parameters) to make the output
self-describing when dumped by the benchmark harness or the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.params import ASParameters
from repro.experiments.config import ExperimentScale
from repro.models.costas import CostasProblem
from repro.parallel.runner import ExperimentRunner

__all__ = ["ExperimentResult", "costas_factory", "costas_params", "shared_runner"]


@dataclass
class ExperimentResult:
    """Base class for structured experiment outputs."""

    experiment: str
    scale: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (used by the CLI ``--json`` flag)."""
        return {
            "experiment": self.experiment,
            "scale": self.scale,
            "rows": self.rows,
            "metadata": self.metadata,
        }

    def format(self) -> str:
        """Human-readable rendering; subclasses or drivers set ``metadata['table']``."""
        table = self.metadata.get("table")
        if table:
            return str(table)
        lines = [f"[{self.experiment}] scale={self.scale}"]
        for row in self.rows:
            lines.append("  " + ", ".join(f"{k}={v}" for k, v in row.items()))
        return "\n".join(lines)


def costas_factory(order: int, **kwargs) -> Callable[[], CostasProblem]:
    """Picklable factory of optimised Costas problems of the given order."""
    return _CostasFactory(order, kwargs)


class _CostasFactory:
    """Picklable callable (``functools.partial`` of a local lambda would not pickle)."""

    def __init__(self, order: int, kwargs: Dict[str, Any]):
        self.order = order
        self.kwargs = dict(kwargs)

    def __call__(self) -> CostasProblem:
        return CostasProblem(self.order, **self.kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"costas_factory({self.order}, {self.kwargs})"


def costas_params(order: int, **overrides) -> ASParameters:
    """Engine parameters used by every Costas experiment (paper defaults)."""
    defaults = dict(max_iterations=2_000_000)
    defaults.update(overrides)
    return ASParameters.for_costas(order, **defaults)


_GLOBAL_RUNNER: Optional[ExperimentRunner] = None


def shared_runner(runner: Optional[ExperimentRunner] = None) -> ExperimentRunner:
    """Return the provided runner, or a process-wide shared one.

    Sharing matters because several tables draw on the same instance pools;
    the in-memory cache of the shared runner avoids re-collecting them when a
    benchmark session executes every experiment in sequence.
    """
    global _GLOBAL_RUNNER
    if runner is not None:
        return runner
    if _GLOBAL_RUNNER is None:
        _GLOBAL_RUNNER = ExperimentRunner()
    return _GLOBAL_RUNNER
