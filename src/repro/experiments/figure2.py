"""Figure 2 — speed-ups w.r.t. 32 cores on HA8000 and Grid'5000 (log-log).

The paper plots, for its largest common instance (CAP 22), the speed-up of the
average solving time relative to the 32-core configuration on HA8000, Suno and
Helios, showing that the curve follows the ideal line (time halves when the
core count doubles).  The reproduction produces the same series — speed-up per
machine and core count, plus the ideal reference — for the scaled-down
instance of the chosen preset.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.speedup import speedup_series
from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult, costas_factory, costas_params, shared_runner
from repro.experiments.config import ExperimentScale
from repro.parallel.cluster import HA8000, HELIOS, SUNO
from repro.parallel.runner import ExperimentRunner

__all__ = ["run_figure2"]


def run_figure2(
    scale: Optional[ExperimentScale] = None,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Reproduce Figure 2 (speed-ups w.r.t. the smallest measured core count)."""
    scale = scale if scale is not None else ExperimentScale.default()
    runner = shared_runner(runner)
    order = scale.figure2_order
    cores = list(scale.figure2_cores)
    result = ExperimentResult(experiment="figure2", scale=scale.name)

    pool = runner.collect_pool(
        costas_factory(order), costas_params(order), scale.pool_runs
    )

    machines = [HA8000, SUNO, HELIOS]
    table_rows = []
    reference = min(cores)
    for machine in machines:
        times: Dict[int, float] = {}
        for core_count in cores:
            if machine.max_cores is not None and core_count > machine.max_cores:
                continue
            summary = runner.parallel_time_summary(
                pool,
                machine,
                core_count,
                scale.cell_repetitions,
                rng=hash((machine.name, core_count)) & 0x7FFFFFFF,
            )
            times[core_count] = summary.mean
        series = speedup_series(times, reference_cores=reference)
        for point in series:
            result.rows.append(
                {
                    "order": order,
                    "machine": machine.name,
                    "cores": point.cores,
                    "avg_time": point.time,
                    "speedup": point.speedup,
                    "ideal": point.ideal,
                    "efficiency": point.efficiency,
                }
            )
            table_rows.append(
                [machine.name, point.cores, point.time, point.speedup, point.ideal]
            )

    result.metadata["order"] = order
    result.metadata["reference_cores"] = reference
    result.metadata["table"] = format_table(
        ["Machine", "Cores", "Avg time (s)", "Speed-up", "Ideal"],
        table_rows,
        float_format="{:.3f}",
        title=(
            f"Figure 2 — speed-ups for CAP {order} w.r.t. {reference} cores "
            "(HA8000 / Suno / Helios)"
        ),
    )
    return result
