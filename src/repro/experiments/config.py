"""Scaling presets for the experiment drivers.

The paper's experiments use instance orders 16–23 and up to 8,192 cores; a
pure-Python engine cannot re-run those sizes in a benchmark suite that should
finish in minutes, so every driver is parameterised by an
:class:`ExperimentScale`.  Three presets are provided:

* :meth:`ExperimentScale.smoke` — tiny; used by the unit/integration tests.
* :meth:`ExperimentScale.default` — the benchmark preset: small enough to run
  in a few minutes on a laptop, large enough that every qualitative claim of
  the paper (exponential growth, best ≪ average, near-linear multi-walk
  speed-up, exponential runtime distribution) is visible in the output.
* :meth:`ExperimentScale.paper` — the paper's actual orders and core counts;
  only practical if one is willing to let the harness run for a very long
  time, but it documents precisely what the full-scale experiment is.

EXPERIMENTS.md records which preset produced the numbers quoted there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["ExperimentScale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Instance sizes, run counts and core counts for all experiment drivers."""

    name: str

    # ------------------------------------------------------------- sequential
    #: Orders and number of runs of the sequential evaluation (Table I).
    table1_orders: Tuple[int, ...] = (10, 11, 12, 13)
    table1_runs: int = 30

    #: Orders and runs of the AS vs Dialectic Search comparison (Table II).
    table2_orders: Tuple[int, ...] = (9, 10, 11, 12)
    table2_runs: int = 10

    #: Orders and runs of the AS vs CP comparison (Section IV-C).
    cp_orders: Tuple[int, ...] = (10, 12, 13)
    cp_runs: int = 5

    # --------------------------------------------------------------- parallel
    #: Size of the sequential run pool each parallel simulation draws from.
    pool_runs: int = 150
    #: Simulated repetitions per (instance, core-count) cell.
    cell_repetitions: int = 50

    #: Orders and core counts of the HA8000 table (Table III).
    table3_orders: Tuple[int, ...] = (11, 12, 13)
    table3_cores: Tuple[int, ...] = (1, 32, 64, 128, 256)

    #: Orders and core counts of the JUGENE table (Table IV).
    table4_orders: Tuple[int, ...] = (12, 13)
    table4_cores: Tuple[int, ...] = (512, 1024, 2048, 4096, 8192)

    #: Orders and core counts of the Grid'5000 table (Table V).
    table5_orders: Tuple[int, ...] = (11, 12, 13)
    table5_suno_cores: Tuple[int, ...] = (1, 32, 64, 128, 256)
    table5_helios_cores: Tuple[int, ...] = (1, 32, 64, 128)

    #: Order whose speed-up curve Figure 2 plots, and its reference core count.
    figure2_order: int = 13
    figure2_cores: Tuple[int, ...] = (32, 64, 128, 256)

    #: Orders of the JUGENE speed-up curves (Figure 3).
    figure3_orders: Tuple[int, ...] = (12, 13)
    figure3_cores: Tuple[int, ...] = (512, 1024, 2048, 4096, 8192)

    #: Time-to-target plot instance, core counts and sample count (Figure 4).
    figure4_order: int = 12
    figure4_cores: Tuple[int, ...] = (32, 64, 128, 256)
    figure4_samples: int = 200

    # -------------------------------------------------------------- ablations
    ablation_orders: Tuple[int, ...] = (11, 12)
    ablation_runs: int = 20

    # ---------------------------------------------------------------- presets
    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """Minutes-to-seconds preset used by the test-suite."""
        return cls(
            name="smoke",
            table1_orders=(8, 9),
            table1_runs=6,
            table2_orders=(8, 9),
            table2_runs=4,
            cp_orders=(8,),
            cp_runs=3,
            pool_runs=40,
            cell_repetitions=10,
            table3_orders=(9, 10),
            table3_cores=(1, 8, 16),
            table4_orders=(10,),
            table4_cores=(32, 64),
            table5_orders=(9, 10),
            table5_suno_cores=(1, 8, 16),
            table5_helios_cores=(1, 8),
            figure2_order=10,
            figure2_cores=(8, 16, 32),
            figure3_orders=(10,),
            figure3_cores=(32, 64),
            figure4_order=10,
            figure4_cores=(8, 16),
            figure4_samples=40,
            ablation_orders=(9,),
            ablation_runs=6,
        )

    @classmethod
    def default(cls) -> "ExperimentScale":
        """The benchmark preset (scaled-down orders, full structure)."""
        return cls(name="default")

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """The paper's own orders and core counts (extremely slow in pure Python)."""
        return cls(
            name="paper",
            table1_orders=(16, 17, 18, 19, 20),
            table1_runs=100,
            table2_orders=(13, 14, 15, 16, 17, 18),
            table2_runs=100,
            cp_orders=(19,),
            cp_runs=1,
            pool_runs=500,
            cell_repetitions=50,
            table3_orders=(18, 19, 20, 21, 22),
            table3_cores=(1, 32, 64, 128, 256),
            table4_orders=(21, 22, 23),
            table4_cores=(512, 1024, 2048, 4096, 8192),
            table5_orders=(18, 19, 20, 21, 22),
            table5_suno_cores=(1, 32, 64, 128, 256),
            table5_helios_cores=(1, 32, 64, 128),
            figure2_order=22,
            figure2_cores=(32, 64, 128, 256),
            figure3_orders=(21, 22, 23),
            figure3_cores=(512, 1024, 2048, 4096, 8192),
            figure4_order=21,
            figure4_cores=(32, 64, 128, 256),
            figure4_samples=200,
            ablation_orders=(16, 17),
            ablation_runs=50,
        )

    @classmethod
    def by_name(cls, name: str) -> "ExperimentScale":
        """Look a preset up by name (``smoke``, ``default`` or ``paper``)."""
        presets: Dict[str, ExperimentScale] = {
            "smoke": cls.smoke(),
            "default": cls.default(),
            "paper": cls.paper(),
        }
        if name not in presets:
            raise ValueError(
                f"unknown scale preset {name!r}; expected one of {sorted(presets)}"
            )
        return presets[name]
