"""Section IV-C — Adaptive Search versus a propagation-based (CP) solver.

The paper reports that a Comet constraint-programming model is roughly 400
times slower than Adaptive Search on CAP 19.  We reproduce the comparison with
our own complete solver (backtracking + forward checking on the difference
triangle) on the scaled-down orders: the claim under test is that the complete
CP approach is orders of magnitude slower than local search already at modest
sizes, and that the gap widens rapidly with the order.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult, costas_factory, costas_params, shared_runner
from repro.experiments.config import ExperimentScale
from repro.parallel.runner import ExperimentRunner
from repro.parallel.seeds import spawned_seeds
from repro.solvers import build_solver

__all__ = ["run_cp_comparison"]


def run_cp_comparison(
    scale: Optional[ExperimentScale] = None,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Reproduce the AS vs CP comparison at the given scale.

    Both solvers come from the :mod:`repro.solvers` registry, so the
    comparison exercises exactly the strategies a service client can request.
    """
    scale = scale if scale is not None else ExperimentScale.default()
    runner = shared_runner(runner)
    result = ExperimentResult(experiment="cp_comparison", scale=scale.name)

    cp, _ = build_solver(
        {"name": "cp", "params": {"variable_order": "dom", "random_value_order": True}}
    )
    as_engine, _ = build_solver("adaptive")

    table_rows = []
    for order in scale.cp_orders:
        factory = costas_factory(order)
        params = costas_params(order)
        seeds = spawned_seeds(scale.cp_runs, 4242 + order)

        as_times = []
        cp_times = []
        cp_nodes = []
        for seed in seeds:
            as_result = as_engine.solve(factory(), seed=seed, params=params)
            if as_result.solved:
                as_times.append(as_result.wall_time)
            cp_result = cp.solve(order, seed=seed)
            if cp_result.solved:
                cp_times.append(cp_result.wall_time)
                cp_nodes.append(cp_result.extra["nodes"])

        as_summary = summarize(as_times) if as_times else None
        cp_summary = summarize(cp_times) if cp_times else None
        ratio = (
            cp_summary.mean / as_summary.mean
            if as_summary and cp_summary and as_summary.mean > 0
            else float("nan")
        )
        result.rows.append(
            {
                "order": order,
                "as_avg_time": as_summary.mean if as_summary else None,
                "cp_avg_time": cp_summary.mean if cp_summary else None,
                "cp_avg_nodes": summarize(cp_nodes).mean if cp_nodes else None,
                "cp_over_as": ratio,
            }
        )
        table_rows.append(
            [
                order,
                cp_summary.mean if cp_summary else None,
                as_summary.mean if as_summary else None,
                ratio,
            ]
        )

    result.metadata["table"] = format_table(
        ["Size", "CP (s)", "AS (s)", "CP / AS"],
        table_rows,
        float_format="{:.3f}",
        title="Section IV-C — complete CP solver vs Adaptive Search",
    )
    result.metadata["runs_per_order"] = scale.cp_runs
    return result
