"""Registry mapping experiment identifiers to their driver functions.

Used by the CLI (``repro experiment <id>``) and by integration tests that
want to iterate over every reproduced table/figure without importing each
driver module explicitly.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.experiments.ablations import ABLATIONS, run_ablation
from repro.experiments.base import ExperimentResult
from repro.experiments.config import ExperimentScale
from repro.experiments.cp_comparison import run_cp_comparison
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.parallel.runner import ExperimentRunner

__all__ = ["EXPERIMENTS", "get_experiment", "list_experiments", "run_experiment"]

Driver = Callable[[Optional[ExperimentScale], Optional[ExperimentRunner]], ExperimentResult]


def _ablation_driver(name: str) -> Driver:
    def driver(scale=None, runner=None):
        return run_ablation(name, scale, runner)

    driver.__name__ = f"run_ablation_{name}"
    driver.__doc__ = f"Ablation study {name!r} (Section IV-B)."
    return driver


#: All reproduced experiments, keyed by identifier.
EXPERIMENTS: Dict[str, Driver] = {
    "table1": run_table1,
    "table2": run_table2,
    "cp": run_cp_comparison,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "figure2": run_figure2,
    "figure3": run_figure3,
    "figure4": run_figure4,
    **{f"ablation-{name}": _ablation_driver(name) for name in ABLATIONS},
}


def list_experiments() -> List[str]:
    """Identifiers of every registered experiment, sorted."""
    return sorted(EXPERIMENTS)


def get_experiment(identifier: str) -> Driver:
    """Look an experiment driver up by identifier."""
    if identifier not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {identifier!r}; known: {', '.join(list_experiments())}"
        )
    return EXPERIMENTS[identifier]


def run_experiment(
    identifier: str,
    scale: Optional[ExperimentScale] = None,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Run one experiment by identifier."""
    return get_experiment(identifier)(scale, runner)
