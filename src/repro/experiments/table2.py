"""Table II — Adaptive Search versus Dialectic Search on the same host.

The paper compares its AS implementation against Kadioglu & Sellmann's
Dialectic Search timings (both on a Pentium-III 733 MHz) and reports a speed-up
ratio ``DS / AS`` between 5 and 8.3 that grows with the instance size.  We run
both solvers (our AS engine and our reimplementation of DS) on the same
machine and the same cost model and report the same ratio; the claim under
test is "AS is several times faster than DS and the gap does not shrink with
size", not the exact constants.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult, costas_factory, costas_params, shared_runner
from repro.experiments.config import ExperimentScale
from repro.parallel.runner import ExperimentRunner
from repro.parallel.seeds import spawned_seeds
from repro.solvers import build_solver

__all__ = ["run_table2"]


def run_table2(
    scale: Optional[ExperimentScale] = None,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Reproduce Table II (AS vs Dialectic Search) at the given scale.

    Both solvers come from the :mod:`repro.solvers` registry, so the
    comparison exercises exactly the strategies a service client can request.
    """
    scale = scale if scale is not None else ExperimentScale.default()
    runner = shared_runner(runner)
    result = ExperimentResult(experiment="table2", scale=scale.name)

    ds_solver, _ = build_solver(
        {"name": "dialectic", "params": {"max_iterations": 200_000}}
    )
    as_engine, _ = build_solver("adaptive")

    table_rows = []
    for order in scale.table2_orders:
        factory = costas_factory(order)
        params = costas_params(order)
        seeds = spawned_seeds(scale.table2_runs, 777 + order)

        as_times = []
        ds_times = []
        for seed in seeds:
            as_result = as_engine.solve(factory(), seed=seed, params=params)
            if as_result.solved:
                as_times.append(as_result.wall_time)
            ds_result = ds_solver.solve(factory(), seed=seed)
            if ds_result.solved:
                ds_times.append(ds_result.wall_time)

        as_summary = summarize(as_times) if as_times else None
        ds_summary = summarize(ds_times) if ds_times else None
        ratio = (
            ds_summary.mean / as_summary.mean
            if as_summary and ds_summary and as_summary.mean > 0
            else float("nan")
        )
        result.rows.append(
            {
                "order": order,
                "runs": scale.table2_runs,
                "as_solved": len(as_times),
                "ds_solved": len(ds_times),
                "as_avg_time": as_summary.mean if as_summary else None,
                "ds_avg_time": ds_summary.mean if ds_summary else None,
                "ds_over_as": ratio,
            }
        )
        table_rows.append(
            [
                order,
                ds_summary.mean if ds_summary else None,
                as_summary.mean if as_summary else None,
                ratio if np.isfinite(ratio) else None,
            ]
        )

    result.metadata["table"] = format_table(
        ["Size", "DS (s)", "AS (s)", "DS / AS"],
        table_rows,
        float_format="{:.3f}",
        title="Table II — Adaptive Search speed-up w.r.t. Dialectic Search",
    )
    result.metadata["runs_per_order"] = scale.table2_runs
    return result
