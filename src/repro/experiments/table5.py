"""Table V — execution times on the Grid'5000 Suno and Helios machine models."""

from __future__ import annotations

from typing import Optional

from repro.analysis.tables import format_paper_table
from repro.experiments.base import ExperimentResult, shared_runner
from repro.experiments.config import ExperimentScale
from repro.experiments.parallel_tables import build_parallel_table
from repro.parallel.cluster import HELIOS, SUNO
from repro.parallel.runner import ExperimentRunner

__all__ = ["run_table5"]


def run_table5(
    scale: Optional[ExperimentScale] = None,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Reproduce Table V (Grid'5000 Suno + Helios execution times) at the given scale."""
    scale = scale if scale is not None else ExperimentScale.default()
    runner = shared_runner(runner)

    suno = build_parallel_table(
        experiment="table5-suno",
        title="Table V (left) — simulated execution times (s) on Grid'5000 Suno",
        scale=scale,
        runner=runner,
        machine=SUNO,
        orders=scale.table5_orders,
        cores=scale.table5_suno_cores,
    )
    helios = build_parallel_table(
        experiment="table5-helios",
        title="Table V (right) — simulated execution times (s) on Grid'5000 Helios",
        scale=scale,
        runner=runner,
        machine=HELIOS,
        orders=scale.table5_orders,
        cores=scale.table5_helios_cores,
    )

    result = ExperimentResult(experiment="table5", scale=scale.name)
    result.rows = suno.rows + helios.rows
    result.metadata["suno"] = suno.metadata
    result.metadata["helios"] = helios.metadata
    result.metadata["table"] = suno.metadata["table"] + "\n\n" + helios.metadata["table"]
    return result
