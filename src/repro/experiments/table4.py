"""Table IV — execution times on the JUGENE (Blue Gene/P) machine model (512–8,192 cores)."""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentResult, shared_runner
from repro.experiments.config import ExperimentScale
from repro.experiments.parallel_tables import build_parallel_table
from repro.parallel.cluster import JUGENE
from repro.parallel.runner import ExperimentRunner

__all__ = ["run_table4"]


def run_table4(
    scale: Optional[ExperimentScale] = None,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Reproduce Table IV (JUGENE execution times) at the given scale."""
    scale = scale if scale is not None else ExperimentScale.default()
    runner = shared_runner(runner)
    return build_parallel_table(
        experiment="table4",
        title="Table IV — simulated execution times (s) on JUGENE (Blue Gene/P)",
        scale=scale,
        runner=runner,
        machine=JUGENE,
        orders=scale.table4_orders,
        cores=scale.table4_cores,
    )
