"""Experiment drivers: one module per table / figure of the paper.

Every driver is a plain function taking an :class:`~repro.experiments.config.ExperimentScale`
(which decides instance sizes, run counts and core counts) plus an optional
shared :class:`~repro.parallel.runner.ExperimentRunner`, and returning a
structured result object that knows how to render itself as a paper-style
table.  The benchmark harness under ``benchmarks/`` and the command-line
interface both call into this package, so the experiments can be re-run and
inspected without pytest.

Mapping to the paper (see DESIGN.md for the full index):

========================  ===========================================
:mod:`.table1`            Table I   — sequential evaluation of AS on CAP
:mod:`.table2`            Table II  — AS versus Dialectic Search
:mod:`.cp_comparison`     Section IV-C — AS versus a CP solver
:mod:`.table3`            Table III — HA8000, 1–256 cores
:mod:`.table4`            Table IV  — JUGENE, 512–8,192 cores
:mod:`.table5`            Table V   — Grid'5000 Suno/Helios
:mod:`.figure2`           Figure 2  — speed-ups w.r.t. 32 cores
:mod:`.figure3`           Figure 3  — speed-ups on JUGENE
:mod:`.figure4`           Figure 4  — time-to-target plots
:mod:`.ablations`         Section IV-B — model-refinement ablations
========================  ===========================================
"""

from repro.experiments.config import ExperimentScale
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments

__all__ = ["ExperimentScale", "EXPERIMENTS", "get_experiment", "list_experiments"]
