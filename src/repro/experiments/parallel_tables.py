"""Shared machinery for the parallel execution tables (Tables III, IV, V).

Each of the paper's parallel tables has the same structure: one block of rows
per instance order (avg / med / min / max solving time) and one column per
core count, measured on a particular machine.  The reproduction builds those
cells from one sequential run pool per order (collected once and cached by the
shared :class:`~repro.parallel.runner.ExperimentRunner`) and the
:class:`~repro.parallel.cluster.VirtualCluster` bootstrap simulation; the
1-core column is the pool itself rescaled to the machine's clock.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.analysis.stats import RunSummary
from repro.analysis.tables import format_paper_table
from repro.experiments.base import ExperimentResult, costas_factory, costas_params
from repro.experiments.config import ExperimentScale
from repro.parallel.cluster import MachineModel
from repro.parallel.runner import ExperimentRunner, RunPool

__all__ = ["build_parallel_table", "collect_pools"]


def collect_pools(
    runner: ExperimentRunner,
    orders: Sequence[int],
    pool_runs: int,
) -> Dict[int, RunPool]:
    """Collect (or fetch from cache) one sequential run pool per order."""
    pools: Dict[int, RunPool] = {}
    for order in orders:
        pools[order] = runner.collect_pool(
            costas_factory(order), costas_params(order), pool_runs
        )
    return pools


def _summary_cell(summary: RunSummary) -> Dict[str, float]:
    return {
        "avg": summary.mean,
        "med": summary.median,
        "min": summary.minimum,
        "max": summary.maximum,
    }


def build_parallel_table(
    experiment: str,
    title: str,
    scale: ExperimentScale,
    runner: ExperimentRunner,
    machine: MachineModel,
    orders: Sequence[int],
    cores: Sequence[int],
    *,
    repetitions: Optional[int] = None,
    pool_runs: Optional[int] = None,
    rng_seed: int = 2024,
) -> ExperimentResult:
    """Build one parallel execution table (a machine x orders x cores grid).

    The 1-core column reports the sequential run pool rescaled to the target
    machine; every other column reports ``repetitions`` bootstrap simulations
    of a k-core independent multi-walk run.
    """
    repetitions = repetitions if repetitions is not None else scale.cell_repetitions
    pool_runs = pool_runs if pool_runs is not None else scale.pool_runs
    pools = collect_pools(runner, orders, pool_runs)

    result = ExperimentResult(experiment=experiment, scale=scale.name)
    statistics: Dict[int, Dict[str, Dict[str, float]]] = {}

    for order in orders:
        pool = pools[order]
        per_core: Dict[str, Dict[str, float]] = {}
        for core_count in cores:
            if core_count == 1:
                summary = runner.sequential_time_summary(pool, machine)
            else:
                summary = runner.parallel_time_summary(
                    pool,
                    machine,
                    core_count,
                    repetitions,
                    rng=rng_seed + order * 1000 + core_count,
                )
            per_core[str(core_count)] = _summary_cell(summary)
            result.rows.append(
                {
                    "order": order,
                    "machine": machine.name,
                    "cores": core_count,
                    **{f"time_{k}": v for k, v in per_core[str(core_count)].items()},
                }
            )
        statistics[order] = per_core

    result.metadata["machine"] = machine.name
    result.metadata["statistics"] = statistics
    result.metadata["cores"] = list(cores)
    result.metadata["orders"] = list(orders)
    result.metadata["pool_runs"] = pool_runs
    result.metadata["repetitions"] = repetitions
    result.metadata["table"] = format_paper_table(
        list(orders),
        statistics,
        [str(c) for c in cores],
        float_format="{:.3f}",
        title=title,
    )
    return result
