"""Figure 3 — speed-ups on the JUGENE machine model (512–8,192 cores).

The paper reports nearly linear speed-ups on the Blue Gene/P: 15.33x for
CAP 21 and 13.25x for CAP 22 when going from 512 to 8,192 cores (the ideal
factor being 16), and 3.71x for CAP 23 from 2,048 to 8,192 cores (ideal 4).
The reproduction computes the same speed-up series for the scaled-down
instances of the chosen preset, relative to the smallest simulated core count.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.speedup import speedup_series
from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult, costas_factory, costas_params, shared_runner
from repro.experiments.config import ExperimentScale
from repro.parallel.cluster import JUGENE
from repro.parallel.runner import ExperimentRunner

__all__ = ["run_figure3"]


def run_figure3(
    scale: Optional[ExperimentScale] = None,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Reproduce Figure 3 (JUGENE speed-up curves) at the given scale."""
    scale = scale if scale is not None else ExperimentScale.default()
    runner = shared_runner(runner)
    cores = list(scale.figure3_cores)
    reference = min(cores)
    result = ExperimentResult(experiment="figure3", scale=scale.name)

    table_rows = []
    for order in scale.figure3_orders:
        pool = runner.collect_pool(
            costas_factory(order), costas_params(order), scale.pool_runs
        )
        times: Dict[int, float] = {}
        for core_count in cores:
            summary = runner.parallel_time_summary(
                pool,
                JUGENE,
                core_count,
                scale.cell_repetitions,
                rng=hash(("jugene", order, core_count)) & 0x7FFFFFFF,
            )
            times[core_count] = summary.mean
        series = speedup_series(times, reference_cores=reference)
        for point in series:
            result.rows.append(
                {
                    "order": order,
                    "cores": point.cores,
                    "avg_time": point.time,
                    "speedup": point.speedup,
                    "ideal": point.ideal,
                    "efficiency": point.efficiency,
                }
            )
            table_rows.append([order, point.cores, point.time, point.speedup, point.ideal])

    result.metadata["reference_cores"] = reference
    result.metadata["table"] = format_table(
        ["Size", "Cores", "Avg time (s)", "Speed-up", "Ideal"],
        table_rows,
        float_format="{:.3f}",
        title=f"Figure 3 — speed-ups on JUGENE w.r.t. {reference} cores",
    )
    return result
