"""Section IV-B ablations: how much does each model refinement matter?

The paper quantifies three refinements of the basic Costas model:

* the weighted error function ``ERR(d) = n² − d²`` (≈ 17% faster than
  ``ERR(d) = 1``);
* Chang's half-triangle restriction (≈ 30% less evaluation work);
* the dedicated reset procedure (≈ 3.7× faster than the generic reset).

This driver re-measures each of them (plus two engine-level knobs this
reproduction exposes: the plateau probability and the probability of escaping
a local minimum uphill) by running the same seeds through each variant and
comparing average wall-clock time and iteration counts.  The benchmark harness
exposes one benchmark per ablation so regressions in any individual refinement
are visible.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.core.engine import AdaptiveSearch
from repro.core.params import ASParameters
from repro.experiments.base import ExperimentResult, costas_params, shared_runner
from repro.experiments.config import ExperimentScale
from repro.models.costas import CostasProblem
from repro.parallel.runner import ExperimentRunner
from repro.parallel.seeds import spawned_seeds

__all__ = [
    "run_ablation",
    "ABLATIONS",
    "err_weight_variants",
    "chang_variants",
    "reset_variants",
    "plateau_variants",
    "local_min_variants",
]

Variant = Tuple[str, Callable[[int], CostasProblem], Callable[[int], ASParameters]]


def err_weight_variants() -> List[Variant]:
    """``ERR(d) = 1`` versus ``ERR(d) = n² − d²`` (everything else fixed)."""
    return [
        (
            "err=constant",
            lambda n: CostasProblem(n, err_weight="constant"),
            lambda n: costas_params(n),
        ),
        (
            "err=quadratic",
            lambda n: CostasProblem(n, err_weight="quadratic"),
            lambda n: costas_params(n),
        ),
    ]


def chang_variants() -> List[Variant]:
    """Full difference triangle versus Chang's half triangle."""
    return [
        (
            "full-triangle",
            lambda n: CostasProblem(n, use_chang=False),
            lambda n: costas_params(n),
        ),
        (
            "half-triangle",
            lambda n: CostasProblem(n, use_chang=True),
            lambda n: costas_params(n),
        ),
    ]


def reset_variants() -> List[Variant]:
    """Generic percentage reset versus the paper's dedicated reset procedure."""
    return [
        (
            "generic-reset",
            lambda n: CostasProblem(n, dedicated_reset=False),
            lambda n: costas_params(n),
        ),
        (
            "dedicated-reset",
            lambda n: CostasProblem(n, dedicated_reset=True),
            lambda n: costas_params(n),
        ),
    ]


def plateau_variants() -> List[Variant]:
    """Sweep of the plateau-following probability."""
    return [
        (
            f"plateau={p:.2f}",
            lambda n: CostasProblem(n),
            lambda n, p=p: costas_params(n, plateau_probability=p),
        )
        for p in (0.0, 0.5, 0.9, 1.0)
    ]


def local_min_variants() -> List[Variant]:
    """Sweep of the probability of escaping a local minimum uphill."""
    return [
        (
            f"uphill={p:.2f}",
            lambda n: CostasProblem(n),
            lambda n, p=p: costas_params(n, local_min_accept_probability=p),
        )
        for p in (0.0, 0.25, 0.5, 0.75)
    ]


#: Registry of ablation studies: name -> variant generator.
ABLATIONS: Dict[str, Callable[[], List[Variant]]] = {
    "err_weight": err_weight_variants,
    "chang": chang_variants,
    "reset": reset_variants,
    "plateau": plateau_variants,
    "local_min": local_min_variants,
}


def run_ablation(
    name: str,
    scale: Optional[ExperimentScale] = None,
    runner: Optional[ExperimentRunner] = None,
    *,
    orders: Optional[Sequence[int]] = None,
    runs: Optional[int] = None,
) -> ExperimentResult:
    """Run one named ablation study and return per-variant summaries."""
    if name not in ABLATIONS:
        raise ValueError(f"unknown ablation {name!r}; expected one of {sorted(ABLATIONS)}")
    scale = scale if scale is not None else ExperimentScale.default()
    shared_runner(runner)  # keeps the global cache warm for other experiments
    orders = list(orders) if orders is not None else list(scale.ablation_orders)
    runs = runs if runs is not None else scale.ablation_runs

    engine = AdaptiveSearch()
    result = ExperimentResult(experiment=f"ablation-{name}", scale=scale.name)
    table_rows = []

    for order in orders:
        seeds = spawned_seeds(runs, 9000 + order)
        for label, problem_factory, params_factory in ABLATIONS[name]():
            times = []
            iterations = []
            solved = 0
            for seed in seeds:
                res = engine.solve(
                    problem_factory(order), seed=seed, params=params_factory(order)
                )
                if res.solved:
                    solved += 1
                    times.append(res.wall_time)
                    iterations.append(res.iterations)
            time_summary = summarize(times) if times else None
            iter_summary = summarize(iterations) if iterations else None
            result.rows.append(
                {
                    "order": order,
                    "variant": label,
                    "runs": runs,
                    "solved": solved,
                    "avg_time": time_summary.mean if time_summary else None,
                    "avg_iterations": iter_summary.mean if iter_summary else None,
                    "median_iterations": iter_summary.median if iter_summary else None,
                }
            )
            table_rows.append(
                [
                    order,
                    label,
                    solved,
                    time_summary.mean if time_summary else None,
                    iter_summary.mean if iter_summary else None,
                ]
            )

    result.metadata["orders"] = orders
    result.metadata["runs"] = runs
    result.metadata["table"] = format_table(
        ["Size", "Variant", "Solved", "Avg time (s)", "Avg iterations"],
        table_rows,
        float_format="{:.3f}",
        title=f"Ablation — {name}",
    )
    return result
