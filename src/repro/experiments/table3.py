"""Table III — execution times on the HA8000 machine model (1–256 cores)."""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentResult, shared_runner
from repro.experiments.config import ExperimentScale
from repro.experiments.parallel_tables import build_parallel_table
from repro.parallel.cluster import HA8000
from repro.parallel.runner import ExperimentRunner

__all__ = ["run_table3"]


def run_table3(
    scale: Optional[ExperimentScale] = None,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Reproduce Table III (HA8000 execution times) at the given scale."""
    scale = scale if scale is not None else ExperimentScale.default()
    runner = shared_runner(runner)
    return build_parallel_table(
        experiment="table3",
        title="Table III — simulated execution times (s) on HA8000",
        scale=scale,
        runner=runner,
        machine=HA8000,
        orders=scale.table3_orders,
        cores=scale.table3_cores,
    )
