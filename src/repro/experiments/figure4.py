"""Figure 4 — time-to-target plots and exponential fits.

For one instance and several core counts, the paper plots the empirical CDF of
the solving time over 200 runs together with the best shifted-exponential
approximation, and reads off statements such as "about 50% chance of a
solution within 100 seconds on 32 cores, 75% / 95% / 100% with 64 / 128 / 256
cores".  The reproduction produces, for each core count of the chosen preset:

* the empirical CDF (as paired arrays, ready for plotting);
* the shifted-exponential fit and its Kolmogorov–Smirnov distance to the
  sample (the quantitative version of "very close to an exponential");
* the probability of having found a solution within a common reference time
  (the median 32-core — i.e. smallest-core-count — time), reproducing the
  "50% / 75% / 95% / 100%" reading of the figure.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.tables import format_table
from repro.analysis.ttt import empirical_cdf, fit_shifted_exponential, ks_distance
from repro.experiments.base import ExperimentResult, costas_factory, costas_params, shared_runner
from repro.experiments.config import ExperimentScale
from repro.parallel.cluster import HA8000
from repro.parallel.runner import ExperimentRunner

__all__ = ["run_figure4"]


def run_figure4(
    scale: Optional[ExperimentScale] = None,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Reproduce Figure 4 (time-to-target plots) at the given scale."""
    scale = scale if scale is not None else ExperimentScale.default()
    runner = shared_runner(runner)
    order = scale.figure4_order
    cores = list(scale.figure4_cores)
    result = ExperimentResult(experiment="figure4", scale=scale.name)

    pool = runner.collect_pool(
        costas_factory(order), costas_params(order), scale.pool_runs
    )

    per_core_times = {}
    for core_count in cores:
        estimates = runner.simulate_parallel(
            pool,
            HA8000,
            core_count,
            scale.figure4_samples,
            rng=hash(("ttt", order, core_count)) & 0x7FFFFFFF,
        )
        per_core_times[core_count] = np.array([e.wall_time for e in estimates])

    reference_time = float(np.median(per_core_times[min(cores)]))

    table_rows = []
    for core_count in cores:
        times = per_core_times[core_count]
        xs, ps = empirical_cdf(times)
        fit = fit_shifted_exponential(times)
        ks = ks_distance(times, fit)
        prob_within_reference = float(np.mean(times <= reference_time))
        result.rows.append(
            {
                "order": order,
                "cores": core_count,
                "samples": len(times),
                "cdf_times": xs.tolist(),
                "cdf_probs": ps.tolist(),
                "fit_shift": fit.shift,
                "fit_scale": fit.scale,
                "ks_distance": ks,
                "prob_within_reference_time": prob_within_reference,
                "reference_time": reference_time,
            }
        )
        table_rows.append(
            [
                core_count,
                float(times.mean()),
                fit.shift,
                fit.scale,
                ks,
                prob_within_reference,
            ]
        )

    result.metadata["order"] = order
    result.metadata["reference_time"] = reference_time
    result.metadata["table"] = format_table(
        [
            "Cores",
            "Avg time (s)",
            "Fit shift",
            "Fit scale",
            "KS distance",
            f"P[T <= {reference_time:.2f}s]",
        ],
        table_rows,
        float_format="{:.3f}",
        title=f"Figure 4 — time-to-target statistics for CAP {order} (HA8000 model)",
    )
    return result
