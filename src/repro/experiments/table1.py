"""Table I — evaluation of the sequential Adaptive Search implementation.

For each instance order the paper reports, over 100 runs: the average, minimum
and maximum of the solving time, of the iteration count and of the number of
local minima, plus the ratio between the average and the best run.  The driver
reproduces the same rows (with the scaled-down orders and run counts of the
chosen :class:`~repro.experiments.config.ExperimentScale`) from a pool of
sequential runs collected by the shared
:class:`~repro.parallel.runner.ExperimentRunner`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.stats import best_to_average_ratio, summarize
from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult, costas_factory, costas_params, shared_runner
from repro.experiments.config import ExperimentScale
from repro.parallel.runner import ExperimentRunner

__all__ = ["run_table1"]


def run_table1(
    scale: Optional[ExperimentScale] = None,
    runner: Optional[ExperimentRunner] = None,
) -> ExperimentResult:
    """Reproduce Table I (sequential evaluation) at the given scale."""
    scale = scale if scale is not None else ExperimentScale.default()
    runner = shared_runner(runner)
    result = ExperimentResult(experiment="table1", scale=scale.name)

    table_rows = []
    for order in scale.table1_orders:
        pool = runner.collect_pool(
            costas_factory(order), costas_params(order), scale.table1_runs
        )
        times = pool.wall_times()
        iterations = pool.iterations()
        local_minima = np.array(
            [s.local_minima for s in pool.solved_samples], dtype=np.float64
        )
        time_summary = summarize(times)
        iter_summary = summarize(iterations)
        lm_summary = summarize(local_minima)
        ratio = best_to_average_ratio(times, fallback=iterations)

        result.rows.append(
            {
                "order": order,
                "runs": len(pool),
                "solved": len(pool.solved_samples),
                "time_avg": time_summary.mean,
                "time_min": time_summary.minimum,
                "time_max": time_summary.maximum,
                "iterations_avg": iter_summary.mean,
                "iterations_min": iter_summary.minimum,
                "iterations_max": iter_summary.maximum,
                "local_minima_avg": lm_summary.mean,
                "local_minima_min": lm_summary.minimum,
                "local_minima_max": lm_summary.maximum,
                "ratio_avg_over_min": ratio,
            }
        )
        for stat, t, it, lm in (
            ("avg", time_summary.mean, iter_summary.mean, lm_summary.mean),
            ("min", time_summary.minimum, iter_summary.minimum, lm_summary.minimum),
            ("max", time_summary.maximum, iter_summary.maximum, lm_summary.maximum),
        ):
            table_rows.append(
                [
                    order if stat == "avg" else "",
                    stat,
                    t,
                    round(it),
                    round(lm),
                    round(ratio) if stat == "min" else "",
                ]
            )

    result.metadata["table"] = format_table(
        ["Size", "stat", "Time (s)", "Iterations", "Local min", "ratio"],
        table_rows,
        float_format="{:.3f}",
        title="Table I — sequential Adaptive Search on the Costas Array Problem",
    )
    result.metadata["orders"] = list(scale.table1_orders)
    result.metadata["runs_per_order"] = scale.table1_runs
    return result
