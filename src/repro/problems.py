"""String-keyed problem-family registry (`repro.problems`).

The paper's engine is problem-agnostic: every model in :mod:`repro.models`
satisfies :class:`~repro.core.problem.PermutationProblem`, so any solver can
run any of them.  This module is the naming layer that makes each model a
first-class *servable* citizen — the analogue of :mod:`repro.solvers` for
problems.  A :class:`ProblemFamily` bundles everything the upper layers
(store, service, HTTP, CLI, benchmarks) need to treat a problem kind
uniformly:

* ``factory(order, **model_options)`` — build a fresh problem instance;
* ``validator(solution)`` — is this array a genuine solution?  (The store
  re-checks every insert so a corrupted worker cannot poison it.)
* ``symmetry`` — the family's own :class:`SymmetryGroup`.  The persistent
  store keys solutions on the canonical (lexicographically smallest) element
  of the symmetry orbit, so equivalent solutions found by different workers
  dedupe to one row, and a read can expand any group image on demand.
  Costas keeps its dihedral-8 (:mod:`repro.costas.symmetry`); N-Queens gets
  the board rotations/reflections (the same three generators act on the
  permutation encoding); All-Interval gets reverse/complement; Magic Square
  gets the grid dihedral-8 acting on the flattened row-major encoding.
* ``construct(order)`` — optional algebraic shortcut answering the instance
  without search, exactly like Welch/Lempel/Golomb do for Costas: N-Queens
  has an explicit modular solution for every ``n >= 4`` and the All-Interval
  Series has the zigzag construction for every ``n``.
* ``known_count(order)`` — published solution counts where enumerations
  exist, for validation and density quoting.

The registry is deliberately small and import-light: it pulls in
:mod:`repro.models` and :mod:`repro.costas` but nothing from the service
stack, so every layer (including worker child processes) can import it.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.costas import symmetry as costas_symmetry
from repro.costas.array import is_costas
from repro.costas.constructions import available_constructions
from repro.costas.constructions import construct as costas_construct
from repro.costas.database import known_count as costas_known_count
from repro.core.problem import PermutationProblem
from repro.exceptions import ConstructionError, SolverError
from repro.models import (
    AllIntervalProblem,
    CostasProblem,
    MagicSquareProblem,
    NQueensProblem,
)

__all__ = [
    "SymmetryGroup",
    "ProblemFamily",
    "register_family",
    "get_family",
    "list_families",
    "family_names",
    "make_problem",
    "problem_factory",
    "IDENTITY_GROUP",
    "DIHEDRAL_GROUP",
    "GRID_DIHEDRAL_GROUP",
    "REVERSE_COMPLEMENT_GROUP",
]


# ---------------------------------------------------------------------- groups
@dataclass(frozen=True)
class SymmetryGroup:
    """A finite group of solution-preserving permutation transforms.

    ``elements`` maps a human-readable name to a transform
    ``perm -> perm``; the first element must be the identity.  The group is
    how the solution store dedupes: :meth:`canonical_form` keys the orbit and
    :meth:`images` expands it back on reads.
    """

    name: str
    elements: Tuple[Tuple[str, Callable[[np.ndarray], np.ndarray]], ...]

    def __post_init__(self) -> None:
        if not self.elements:
            raise ValueError("a symmetry group needs at least the identity element")

    @property
    def order(self) -> int:
        """Number of group elements (images per orbit, duplicates included)."""
        return len(self.elements)

    @property
    def element_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.elements)

    def images(self, perm: Sequence[int] | np.ndarray) -> List[np.ndarray]:
        """All images of *perm*, aligned with :attr:`element_names`
        (duplicates kept, so the list always has :attr:`order` entries)."""
        arr = np.asarray(perm, dtype=np.int64)
        return [op(arr) for _, op in self.elements]

    def variant(self, perm: Sequence[int] | np.ndarray, index: int) -> np.ndarray:
        """The ``index``-th image (taken modulo the group order)."""
        arr = np.asarray(perm, dtype=np.int64)
        return self.elements[index % self.order][1](arr)

    def orbit(self, perm: Sequence[int] | np.ndarray) -> List[Tuple[int, ...]]:
        """Distinct images of *perm*, as sorted tuples."""
        seen = {tuple(int(v) for v in q) for q in self.images(perm)}
        return sorted(seen)

    def canonical_form(self, perm: Sequence[int] | np.ndarray) -> np.ndarray:
        """Lexicographically smallest element of the orbit of *perm*."""
        return np.array(min(self.orbit(perm)), dtype=np.int64)


def _identity_op(perm: np.ndarray) -> np.ndarray:
    return perm.copy()


def _reverse_op(perm: np.ndarray) -> np.ndarray:
    return perm[::-1].copy()


def _complement_op(perm: np.ndarray) -> np.ndarray:
    return (perm.size - 1) - perm


IDENTITY_GROUP = SymmetryGroup("identity", (("identity", _identity_op),))

#: The dihedral group of the square acting on the permutation encoding, in
#: the exact element order of :func:`repro.costas.symmetry.all_symmetries`
#: (and :data:`~repro.costas.symmetry.SYMMETRY_NAMES`), so store reads keyed
#: by variant index stay bit-identical with the pre-registry behaviour.
DIHEDRAL_GROUP = SymmetryGroup(
    "dihedral-8",
    tuple(
        zip(
            costas_symmetry.SYMMETRY_NAMES,
            (
                _identity_op,
                costas_symmetry.reverse,
                costas_symmetry.complement,
                lambda p: costas_symmetry.complement(costas_symmetry.reverse(p)),
                costas_symmetry.transpose,
                lambda p: costas_symmetry.reverse(costas_symmetry.transpose(p)),
                lambda p: costas_symmetry.complement(costas_symmetry.transpose(p)),
                lambda p: costas_symmetry.complement(
                    costas_symmetry.reverse(costas_symmetry.transpose(p))
                ),
            ),
        )
    ),
)

def _grid_op(transform: Callable[[np.ndarray], np.ndarray]) -> Callable[[np.ndarray], np.ndarray]:
    """Lift a 2-D grid transform to the flattened row-major encoding.

    The stored Magic Square array has ``n**2`` entries (``instance_size``),
    so the side is recovered from the array itself and the transform acts on
    the reshaped grid.
    """

    def op(perm: np.ndarray) -> np.ndarray:
        side = math.isqrt(perm.size)
        if side * side != perm.size:
            raise ValueError(
                f"grid symmetry needs a square array, got size {perm.size}"
            )
        return np.ascontiguousarray(transform(perm.reshape(side, side))).reshape(-1)

    return op


#: The dihedral group of the square acting on the *grid* (rotations and
#: reflections of the board itself), lifted to the flattened row-major
#: encoding Magic Square solutions are stored in.  All eight transforms
#: permute rows/columns/diagonals among themselves, so line sums — and hence
#: the magic property — are preserved.
GRID_DIHEDRAL_GROUP = SymmetryGroup(
    "grid-dihedral-8",
    (
        ("identity", _identity_op),
        ("rot90", _grid_op(lambda g: np.rot90(g, 1))),
        ("rot180", _grid_op(lambda g: np.rot90(g, 2))),
        ("rot270", _grid_op(lambda g: np.rot90(g, 3))),
        ("flip-horizontal", _grid_op(np.fliplr)),
        ("flip-vertical", _grid_op(np.flipud)),
        ("transpose", _grid_op(np.transpose)),
        ("anti-transpose", _grid_op(lambda g: np.rot90(g, 2).T)),
    ),
)

#: Reverse / complement group of order 4 (the All-Interval symmetries: both
#: preserve the multiset of successive absolute differences).
REVERSE_COMPLEMENT_GROUP = SymmetryGroup(
    "reverse-complement",
    (
        ("identity", _identity_op),
        ("reverse", _reverse_op),
        ("complement", _complement_op),
        ("reverse+complement", lambda p: _complement_op(_reverse_op(p))),
    ),
)


# -------------------------------------------------------------------- families
@dataclass(frozen=True)
class ProblemFamily:
    """One registry entry: everything needed to build, check and serve a kind."""

    #: Canonical registry key (what clients send as ``kind``).
    name: str
    #: Model class/callable; ``factory(order, **model_options)`` builds a
    #: fresh :class:`~repro.core.problem.PermutationProblem`.
    factory: Callable[..., PermutationProblem]
    #: ``validator(solution) -> bool`` on the stored array encoding.
    validator: Callable[[np.ndarray], bool]
    #: Solution-preserving transforms the store dedupes under.
    symmetry: SymmetryGroup
    #: Smallest order the factory accepts.
    min_order: int
    #: One-line human description for ``repro problems``.
    summary: str
    #: Alternative names accepted by :func:`get_family`.
    aliases: Tuple[str, ...] = ()
    #: Optional algebraic shortcut: ``construct(order) -> solution array``;
    #: raises :class:`~repro.exceptions.ConstructionError` when no
    #: construction applies to *order*.
    construct: Optional[Callable[[int], np.ndarray]] = None
    #: Optional published-count hook: ``known_count(order) -> int | None``.
    known_count: Optional[Callable[[int], Optional[int]]] = None
    #: Length of the stored solution array for a given order (Magic Square
    #: stores the flattened grid, so its arrays have ``order**2`` entries).
    instance_size: Callable[[int], int] = field(default=lambda order: order)

    def make(self, order: int, **model_options: Any) -> PermutationProblem:
        """Build a fresh problem instance of *order*."""
        if order < self.min_order:
            raise SolverError(
                f"{self.name} needs order >= {self.min_order}, got {order}"
            )
        return self.factory(order, **model_options)

    def try_construct(self, order: int) -> Optional[np.ndarray]:
        """Algebraic answer for *order*, or ``None`` when no shortcut applies.

        A returned array is always validated, so a buggy construction can
        never leak an invalid "solution" into the store or a response.
        """
        if self.construct is None or order < self.min_order:
            return None
        try:
            solution = self.construct(order)
        except ConstructionError:
            return None
        arr = np.asarray(solution, dtype=np.int64)
        if not self.validator(arr):  # pragma: no cover - construction bug guard
            raise SolverError(
                f"{self.name} construction produced an invalid solution "
                f"for order {order}"
            )
        return arr

    def canonical_form(self, perm: Sequence[int] | np.ndarray) -> np.ndarray:
        """Canonical representative of *perm* under this family's group."""
        return self.symmetry.canonical_form(perm)

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly description (shared by ``repro problems --json`` and
        the HTTP ``GET /problems`` endpoint, so the two never drift)."""
        return {
            "kind": self.name,
            "aliases": list(self.aliases),
            "min_order": self.min_order,
            "summary": self.summary,
            "symmetry_group": self.symmetry.name,
            "symmetry_order": self.symmetry.order,
            "symmetry_elements": list(self.symmetry.element_names),
            "has_construction": self.construct is not None,
            "has_known_counts": self.known_count is not None,
        }


_REGISTRY: Dict[str, ProblemFamily] = {}
_ALIASES: Dict[str, str] = {}


def register_family(family: ProblemFamily) -> ProblemFamily:
    """Add *family* to the registry (canonical name and aliases must be free)."""
    for key in (family.name, *family.aliases):
        if key in _REGISTRY or key in _ALIASES:
            raise SolverError(f"problem family name {key!r} is already registered")
    _REGISTRY[family.name] = family
    for alias in family.aliases:
        _ALIASES[alias] = family.name
    return family


def get_family(kind: str) -> ProblemFamily:
    """Look a family up by canonical name or alias; raise :class:`SolverError`."""
    key = str(kind).strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise SolverError(
            f"unknown problem kind {kind!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def list_families() -> List[ProblemFamily]:
    """Every registered family, sorted by canonical name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def family_names() -> List[str]:
    """Sorted canonical registry keys."""
    return sorted(_REGISTRY)


def make_problem(kind: str, order: int, **model_options: Any) -> PermutationProblem:
    """Build a fresh problem of *kind* and *order* (registry lookup included)."""
    return get_family(kind).make(order, **model_options)


def problem_factory(
    kind: str, order: int, **model_options: Any
) -> Callable[[], PermutationProblem]:
    """Picklable zero-argument factory for the multiprocessing drivers.

    Resolves the kind eagerly (a typo fails in the parent process) and
    returns a partial of the module-level :func:`make_problem`, which
    pickles under both ``fork`` and ``spawn``.
    """
    get_family(kind)  # fail fast on unknown kinds
    return functools.partial(make_problem, kind, order, **model_options)


# ----------------------------------------------------------------- validators
def _is_permutation(arr: np.ndarray) -> bool:
    return arr.ndim == 1 and np.array_equal(np.sort(arr), np.arange(arr.size))


def _is_queens_solution(arr: np.ndarray) -> bool:
    """No two queens share a row (permutation) or a diagonal."""
    if not _is_permutation(arr):
        return False
    idx = np.arange(arr.size)
    return (
        np.unique(idx + arr).size == arr.size
        and np.unique(idx - arr).size == arr.size
    )


def _is_all_interval_solution(arr: np.ndarray) -> bool:
    """The successive absolute differences are pairwise distinct."""
    if not _is_permutation(arr):
        return False
    diffs = np.abs(np.diff(arr))
    return np.unique(diffs).size == diffs.size


def _is_magic_square_solution(arr: np.ndarray) -> bool:
    """A flattened permutation of ``0..n^2-1`` whose lines all sum to M."""
    if arr.ndim != 1:
        return False
    side = math.isqrt(arr.size)
    if side * side != arr.size or not _is_permutation(arr):
        return False
    grid = arr.reshape(side, side)
    magic = side * (side * side - 1) // 2
    return (
        bool(np.all(grid.sum(axis=1) == magic))
        and bool(np.all(grid.sum(axis=0) == magic))
        and int(np.trace(grid)) == magic
        and int(np.trace(np.fliplr(grid))) == magic
    )


# -------------------------------------------------------------- constructions
def _construct_costas(order: int) -> np.ndarray:
    if not available_constructions(order):
        raise ConstructionError(f"no algebraic Costas construction for order {order}")
    return costas_construct(order).to_array()


def _construct_queens(order: int) -> np.ndarray:
    """Explicit modular N-Queens solution, valid for every ``n >= 4``.

    The classical closed form: take the even rows ``2, 4, .., n`` followed by
    the odd rows ``1, 3, .., n-1`` as the column-indexed row list.  When
    ``n mod 6`` is 2 or 3 that list has diagonal collisions and the two known
    repairs apply: for remainder 2 swap rows 1 and 3 and move 5 to the end of
    the odd block; for remainder 3 move row 2 to the end of the even block
    and rows 1, 3 to the end of the odd block.  (Values 1-based here,
    converted to the library's 0-based encoding on return.)
    """
    if order < 4:
        raise ConstructionError(f"N-Queens has no solution below order 4, got {order}")
    evens = list(range(2, order + 1, 2))
    odds = list(range(1, order + 1, 2))
    remainder = order % 6
    if remainder == 2:
        i1, i3 = odds.index(1), odds.index(3)
        odds[i1], odds[i3] = 3, 1
        odds.remove(5)
        odds.append(5)
    elif remainder == 3:
        evens.remove(2)
        evens.append(2)
        odds.remove(1)
        odds.remove(3)
        odds.extend([1, 3])
    rows = evens + odds
    return np.asarray(rows, dtype=np.int64) - 1


def _construct_all_interval(order: int) -> np.ndarray:
    """The zigzag construction ``0, n-1, 1, n-2, ...`` — valid for every n.

    Its successive absolute differences are exactly ``n-1, n-2, .., 1``.
    """
    if order < 3:
        raise ConstructionError(f"All-Interval needs order >= 3, got {order}")
    zigzag = np.empty(order, dtype=np.int64)
    zigzag[0::2] = np.arange((order + 1) // 2)
    zigzag[1::2] = order - 1 - np.arange(order // 2)
    return zigzag


# --------------------------------------------------------------- known counts
#: Published N-Queens solution counts (OEIS A000170, all solutions).
KNOWN_QUEENS_COUNTS: Dict[int, int] = {
    4: 2,
    5: 10,
    6: 4,
    7: 40,
    8: 92,
    9: 352,
    10: 724,
    11: 2680,
    12: 14200,
}

#: Published Magic Square counts including rotations/reflections (8x the
#: classical "essentially different" counts: 1 for n=3, 880 for n=4).
KNOWN_MAGIC_COUNTS: Dict[int, int] = {3: 8, 4: 7040}


# ------------------------------------------------------------------- registry
register_family(
    ProblemFamily(
        name="costas",
        factory=CostasProblem,
        validator=is_costas,
        symmetry=DIHEDRAL_GROUP,
        min_order=3,
        summary="Costas Array Problem: all displacement vectors between marks "
        "distinct (the paper's target problem)",
        aliases=("costas-array", "cap"),
        construct=_construct_costas,
        known_count=costas_known_count,
    )
)

register_family(
    ProblemFamily(
        name="queens",
        factory=NQueensProblem,
        validator=_is_queens_solution,
        symmetry=DIHEDRAL_GROUP,
        min_order=4,
        summary="N-Queens: place n non-attacking queens on an n x n board",
        aliases=("n-queens", "nqueens"),
        construct=_construct_queens,
        known_count=lambda order: KNOWN_QUEENS_COUNTS.get(order),
    )
)

register_family(
    ProblemFamily(
        name="all-interval",
        factory=AllIntervalProblem,
        validator=_is_all_interval_solution,
        symmetry=REVERSE_COMPLEMENT_GROUP,
        min_order=3,
        summary="All-Interval Series (CSPLib prob007): successive absolute "
        "differences pairwise distinct",
        aliases=("all_interval", "allinterval", "series"),
        construct=_construct_all_interval,
    )
)

register_family(
    ProblemFamily(
        name="magic-square",
        factory=MagicSquareProblem,
        validator=_is_magic_square_solution,
        symmetry=GRID_DIHEDRAL_GROUP,
        min_order=3,
        summary="Magic Square (CSPLib prob019): fill n x n with 0..n^2-1 so "
        "every line sums to the magic constant",
        aliases=("magic_square", "magicsquare", "magic"),
        known_count=lambda order: KNOWN_MAGIC_COUNTS.get(order),
        instance_size=lambda order: order * order,
    )
)
