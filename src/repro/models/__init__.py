"""Adaptive Search models of concrete combinatorial problems.

* :class:`~repro.models.costas.CostasProblem` — the paper's target problem, in
  both the basic form (``ERR(d) = 1``, full difference triangle, generic
  reset) and the optimised form (``ERR(d) = n² − d²``, Chang half-triangle,
  dedicated reset procedure);
* :class:`~repro.models.queens.NQueensProblem` — the N-Queens problem, used by
  the paper to situate AS performance against the Comet system;
* :class:`~repro.models.all_interval.AllIntervalProblem` — CSPLib prob007,
  cited as a relative of the CAP;
* :class:`~repro.models.magic_square.MagicSquareProblem` — CSPLib prob019,
  the other benchmark of the AS/Dialectic Search comparison.

All of them implement :class:`repro.core.problem.PermutationProblem`, so any
solver in :mod:`repro.core`, :mod:`repro.baselines` or :mod:`repro.parallel`
accepts any of them.
"""

from repro.models.costas import (
    CostasProblem,
    ReferenceCostasProblem,
    basic_costas_problem,
    optimized_costas_problem,
)
from repro.models.queens import NQueensProblem
from repro.models.all_interval import AllIntervalProblem
from repro.models.magic_square import MagicSquareProblem

__all__ = [
    "CostasProblem",
    "ReferenceCostasProblem",
    "basic_costas_problem",
    "optimized_costas_problem",
    "NQueensProblem",
    "AllIntervalProblem",
    "MagicSquareProblem",
]
