"""Magic Square (CSPLib prob019) as an Adaptive Search permutation problem.

The Magic Square problem is the benchmark the paper uses to compare Adaptive
Search with Dialectic Search and Comet (Section III), and the problem for
which the plateau-probability refinement was originally reported to matter
most, so it is the natural companion model for the plateau ablation benchmark.

A configuration assigns the values ``0 .. n²-1`` (a permutation of the cells)
to the ``n x n`` grid read row-major: cell ``(r, c)`` holds
``p[r * n + c]``.  The target line sum for 0-based values is
``M = n (n² - 1) / 2``; the cost is the sum of ``|line_sum - M|`` over all
rows, columns and the two main diagonals, all maintained incrementally under
swaps.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.problem import PermutationProblem
from repro.exceptions import ModelError

__all__ = ["MagicSquareProblem"]

_INT64_MAX = np.iinfo(np.int64).max


class MagicSquareProblem(PermutationProblem):
    """Fill an ``n x n`` grid with ``0..n²-1`` so all lines have the same sum."""

    def __init__(self, n: int) -> None:
        if n < 3:
            raise ModelError(f"Magic squares need n >= 3, got {n}")
        super().__init__(n * n, name="magic-square")
        self._n = n
        self._magic = n * (n * n - 1) // 2
        self._perm = np.arange(n * n, dtype=np.int64)
        self._row_sums = np.zeros(n, dtype=np.int64)
        self._col_sums = np.zeros(n, dtype=np.int64)
        self._diag_sum = 0
        self._anti_sum = 0
        self._cost = 0
        self._rebuild()

    # ------------------------------------------------------------------- state
    @property
    def side(self) -> int:
        """Side length ``n`` of the square (the problem has ``n²`` variables)."""
        return self._n

    @property
    def magic_constant(self) -> int:
        """Target line sum for the 0-based values stored in the configuration."""
        return self._magic

    def describe(self) -> str:
        return f"magic-square(n={self._n})"

    def _rebuild(self) -> None:
        n = self._n
        grid = self._perm.reshape(n, n)
        self._row_sums = grid.sum(axis=1)
        self._col_sums = grid.sum(axis=0)
        self._diag_sum = int(np.trace(grid))
        self._anti_sum = int(np.trace(np.fliplr(grid)))
        self._cost = int(
            np.abs(self._row_sums - self._magic).sum()
            + np.abs(self._col_sums - self._magic).sum()
            + abs(self._diag_sum - self._magic)
            + abs(self._anti_sum - self._magic)
        )

    def set_configuration(self, perm: Sequence[int] | np.ndarray) -> None:
        arr = np.asarray(perm, dtype=np.int64)
        if arr.shape != (self.size,):
            raise ModelError(
                f"expected a configuration of length {self.size}, got shape {arr.shape}"
            )
        if not np.array_equal(np.sort(arr), np.arange(self.size)):
            raise ModelError("configuration is not a permutation of 0..n^2-1")
        self._perm = arr.copy()
        self._rebuild()

    def configuration(self) -> np.ndarray:
        return self._perm.copy()

    def grid(self) -> np.ndarray:
        """Current square with 1-based values (as conventionally displayed)."""
        return (self._perm + 1).reshape(self._n, self._n)

    # -------------------------------------------------------------------- cost
    def cost(self) -> int:
        return int(self._cost)

    def check_consistency(self) -> None:
        cached = self._cost
        self._rebuild()
        if cached != self._cost:
            raise AssertionError(f"cached cost {cached} != recomputed {self._cost}")

    def variable_errors(self) -> np.ndarray:
        """A cell's error is the sum of the deviations of the lines through it."""
        n = self._n
        row_err = np.abs(self._row_sums - self._magic)
        col_err = np.abs(self._col_sums - self._magic)
        errs = row_err[:, None] + col_err[None, :]
        diag_err = abs(self._diag_sum - self._magic)
        anti_err = abs(self._anti_sum - self._magic)
        idx = np.arange(n)
        errs[idx, idx] += diag_err
        errs[idx, n - 1 - idx] += anti_err
        return errs.reshape(-1).astype(np.int64)

    # ------------------------------------------------------------------- moves
    def _line_cost(self) -> int:
        return int(
            np.abs(self._row_sums - self._magic).sum()
            + np.abs(self._col_sums - self._magic).sum()
            + abs(self._diag_sum - self._magic)
            + abs(self._anti_sum - self._magic)
        )

    def _shift_cell(self, cell: int, delta: int) -> None:
        """Add *delta* to the value stored in *cell*'s lines (sums bookkeeping only)."""
        n = self._n
        r, c = divmod(cell, n)
        self._row_sums[r] += delta
        self._col_sums[c] += delta
        if r == c:
            self._diag_sum += delta
        if c == n - 1 - r:
            self._anti_sum += delta

    def apply_swap(self, i: int, j: int, delta: Optional[int] = None) -> int:
        # Line-sum bookkeeping is O(1) already; the ``delta`` hint is unused.
        if i != j:
            vi, vj = int(self._perm[i]), int(self._perm[j])
            self._shift_cell(i, vj - vi)
            self._shift_cell(j, vi - vj)
            self._perm[i], self._perm[j] = vj, vi
            self._cost = self._line_cost()
        return int(self._cost)

    def swap_delta(self, i: int, j: int) -> int:
        if i == j:
            return 0
        before = self._cost
        self.apply_swap(i, j)
        after = self._cost
        self.apply_swap(i, j)
        return after - before

    def swap_deltas(self, i: int) -> np.ndarray:
        size = self.size
        deltas = np.empty(size, dtype=np.int64)
        for j in range(size):
            deltas[j] = 0 if j == i else self.swap_delta(i, j)
        deltas[i] = _INT64_MAX
        return deltas

    def is_magic(self) -> bool:
        """``True`` iff the current grid is a magic square."""
        return self._cost == 0
