"""N-Queens as an Adaptive Search permutation problem.

The paper quotes AS performance on N-Queens (versus the Comet system) as
evidence that the engine is competitive on classical CSPs; this model lets the
repository reproduce that kind of experiment and doubles as a second,
structurally different exerciser of the engine in the test-suite.

The configuration is a permutation ``p`` where ``p[i]`` is the row of the
queen in column ``i`` — rows and columns are therefore always alldifferent by
construction and only the two diagonal families can conflict.  The cost is the
number of "extra" queens per diagonal (``max(count - 1, 0)`` summed over the
``4n - 2`` diagonals), maintained incrementally under swaps.

The diagonal-conflict counts admit the same count-table trick as the Costas
difference triangle: a swap of columns ``i`` and ``j`` moves exactly two
queens, so it touches two cells of each diagonal family, and
:meth:`NQueensProblem.swap_deltas` scores all ``n`` candidate swaps straight
from the ``_up``/``_down`` occurrence tables through the event algebra of
:mod:`repro.core.incremental` — no swap is ever simulated.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.incremental import grouped_dup_delta
from repro.core.problem import PermutationProblem
from repro.exceptions import ModelError

__all__ = ["NQueensProblem"]

_INT64_MAX = np.iinfo(np.int64).max


class NQueensProblem(PermutationProblem):
    """Place ``n`` non-attacking queens on an ``n x n`` board."""

    def __init__(self, n: int) -> None:
        if n < 4:
            raise ModelError(f"N-Queens has no solution-friendly instance below 4, got {n}")
        super().__init__(n, name="nqueens")
        self._perm = np.arange(n, dtype=np.int64)
        self._up = np.zeros(2 * n - 1, dtype=np.int64)  # i + p[i]
        self._down = np.zeros(2 * n - 1, dtype=np.int64)  # i - p[i] + n - 1
        self._cost = 0
        self._idx = np.arange(n, dtype=np.int64)
        self._errors: Optional[np.ndarray] = None
        self._rebuild()

    # ------------------------------------------------------------------- state
    @property
    def incremental(self) -> bool:
        return True

    def invalidate_caches(self) -> None:
        self._rebuild()

    def _rebuild(self) -> None:
        n = self.size
        self._up[:] = 0
        self._down[:] = 0
        idx = self._idx
        np.add.at(self._up, idx + self._perm, 1)
        np.add.at(self._down, idx - self._perm + n - 1, 1)
        self._cost = int(
            np.sum(np.maximum(self._up - 1, 0)) + np.sum(np.maximum(self._down - 1, 0))
        )
        self._errors = None

    def set_configuration(self, perm: Sequence[int] | np.ndarray) -> None:
        arr = np.asarray(perm, dtype=np.int64)
        if arr.shape != (self.size,):
            raise ModelError(
                f"expected a configuration of length {self.size}, got shape {arr.shape}"
            )
        if not np.array_equal(np.sort(arr), np.arange(self.size)):
            raise ModelError("configuration is not a permutation of 0..n-1")
        self._perm = arr.copy()
        self._rebuild()

    def configuration(self) -> np.ndarray:
        return self._perm.copy()

    # -------------------------------------------------------------------- cost
    def cost(self) -> int:
        return int(self._cost)

    def check_consistency(self) -> None:
        cached = self._cost
        self._rebuild()
        if cached != self._cost:
            raise AssertionError(f"cached cost {cached} != recomputed {self._cost}")

    def variable_errors(self) -> np.ndarray:
        """A queen's error is the number of other queens it attacks.

        Cached until the next mutation (the engine reads it every iteration
        but the configuration only changes when a swap is actually applied).
        """
        if self._errors is None:
            n = self.size
            idx = self._idx
            up = self._up[idx + self._perm] - 1
            down = self._down[idx - self._perm + n - 1] - 1
            self._errors = (up + down).astype(np.int64)
        return self._errors.copy()

    # ------------------------------------------------------------------- moves
    def _remove(self, i: int) -> None:
        n = self.size
        u = i + self._perm[i]
        d = i - self._perm[i] + n - 1
        if self._up[u] >= 2:
            self._cost -= 1
        self._up[u] -= 1
        if self._down[d] >= 2:
            self._cost -= 1
        self._down[d] -= 1

    def _add(self, i: int) -> None:
        n = self.size
        u = i + self._perm[i]
        d = i - self._perm[i] + n - 1
        if self._up[u] >= 1:
            self._cost += 1
        self._up[u] += 1
        if self._down[d] >= 1:
            self._cost += 1
        self._down[d] += 1

    def apply_swap(self, i: int, j: int, delta: Optional[int] = None) -> int:
        # The diagonal tables make the update O(1) either way, so the
        # precomputed ``delta`` is not needed; the caches are invalidated.
        if i != j:
            self._remove(i)
            self._remove(j)
            self._perm[i], self._perm[j] = self._perm[j], self._perm[i]
            self._add(i)
            self._add(j)
            self._errors = None
        return int(self._cost)

    def swap_delta(self, i: int, j: int) -> int:
        if i == j:
            return 0
        before = self._cost
        self.apply_swap(i, j)
        after = self._cost
        self.apply_swap(i, j)
        return after - before

    def swap_deltas(self, i: int) -> np.ndarray:
        """Score every swap involving column *i* from the diagonal tables.

        Swapping columns ``i`` and ``j`` removes the two queens' current
        diagonals and re-adds their crossed ones; each family (``up`` and
        ``down``) therefore sees four events per candidate, whose exact
        duplicate-count change :func:`repro.core.incremental.grouped_dup_delta`
        reads off the occurrence tables — including the collision cases where
        both queens sit on (or land on) the same diagonal.
        """
        n = self.size
        p = self._perm
        j = self._idx
        a = int(p[i])
        # Events per family: remove both queens' diagonals, add the crossed ones.
        V = np.empty((2, n, 4), dtype=np.int64)
        V[0, :, 0] = i + a  # up family
        V[0, :, 1] = j + p
        V[0, :, 2] = i + p
        V[0, :, 3] = j + a
        V[1, :, 0] = i - a + n - 1  # down family
        V[1, :, 1] = j - p + n - 1
        V[1, :, 2] = i - p + n - 1
        V[1, :, 3] = j - a + n - 1
        signs = np.array([-1, -1, 1, 1], dtype=np.int64)
        counts = np.empty_like(V)
        counts[0] = self._up[V[0]]
        counts[1] = self._down[V[1]]
        deltas = grouped_dup_delta(V, np.broadcast_to(signs, V.shape), counts).sum(axis=0)
        deltas[i] = _INT64_MAX
        return deltas

    # ----------------------------------------------------------------- exports
    def board(self) -> np.ndarray:
        """0/1 board matrix with ``board[row, col] == 1`` where a queen stands."""
        n = self.size
        b = np.zeros((n, n), dtype=np.int8)
        b[self._perm, np.arange(n)] = 1
        return b

    def conflicts(self) -> int:
        """Number of attacking queen pairs (an alternative cost some texts use)."""
        pairs = 0
        for counts in (self._up, self._down):
            pairs += int(np.sum(counts * (counts - 1) // 2))
        return pairs
