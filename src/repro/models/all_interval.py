"""All-Interval Series (CSPLib prob007) as an Adaptive Search permutation problem.

The paper singles out the All-Interval Series problem as one of the three
classical CSPs conceptually related to the CAP (a one-dimensional cousin of
the difference-triangle constraint: only the first row of the triangle, in
absolute value, must be alldifferent).

A configuration is a permutation ``p`` of ``0..n-1``; it is a solution when
the ``n - 1`` absolute differences ``|p[i+1] - p[i]|`` are pairwise distinct
(hence exactly ``{1, .., n-1}``).  The cost counts repeated difference
occurrences, and errors are projected on both endpoints of each repeated
interval — the same scheme as the Costas model, which makes this problem a
good minimal test bed for the engine.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.problem import PermutationProblem
from repro.exceptions import ModelError

__all__ = ["AllIntervalProblem"]

_INT64_MAX = np.iinfo(np.int64).max


class AllIntervalProblem(PermutationProblem):
    """Find a permutation whose successive absolute differences are all distinct."""

    def __init__(self, n: int) -> None:
        if n < 3:
            raise ModelError(f"All-Interval Series needs n >= 3, got {n}")
        super().__init__(n, name="all-interval")
        self._perm = np.arange(n, dtype=np.int64)
        self._counts = np.zeros(n, dtype=np.int64)  # counts of |difference| values
        self._cost = 0
        self._rebuild()

    # ------------------------------------------------------------------- state
    def _rebuild(self) -> None:
        self._counts[:] = 0
        diffs = np.abs(np.diff(self._perm))
        np.add.at(self._counts, diffs, 1)
        self._cost = int(np.sum(np.maximum(self._counts - 1, 0)))

    def set_configuration(self, perm: Sequence[int] | np.ndarray) -> None:
        arr = np.asarray(perm, dtype=np.int64)
        if arr.shape != (self.size,):
            raise ModelError(
                f"expected a configuration of length {self.size}, got shape {arr.shape}"
            )
        if not np.array_equal(np.sort(arr), np.arange(self.size)):
            raise ModelError("configuration is not a permutation of 0..n-1")
        self._perm = arr.copy()
        self._rebuild()

    def configuration(self) -> np.ndarray:
        return self._perm.copy()

    # -------------------------------------------------------------------- cost
    def cost(self) -> int:
        return int(self._cost)

    def check_consistency(self) -> None:
        cached = self._cost
        self._rebuild()
        if cached != self._cost:
            raise AssertionError(f"cached cost {cached} != recomputed {self._cost}")

    def variable_errors(self) -> np.ndarray:
        """Each repeated interval (non-first occurrence of its absolute difference,
        scanning left to right) adds 1 to both of its endpoints."""
        n = self.size
        errs = np.zeros(n, dtype=np.int64)
        diffs = np.abs(np.diff(self._perm))
        _, first_idx = np.unique(diffs, return_index=True)
        mask = np.ones(diffs.size, dtype=bool)
        mask[first_idx] = False
        repeats = np.flatnonzero(mask)
        np.add.at(errs, repeats, 1)
        np.add.at(errs, repeats + 1, 1)
        return errs

    # ------------------------------------------------------------------- moves
    def _interval_indices(self, i: int, j: int) -> list[int]:
        """Indices of the difference slots affected by swapping positions i and j."""
        slots = set()
        for pos in (i, j):
            if pos - 1 >= 0:
                slots.add(pos - 1)
            if pos <= self.size - 2:
                slots.add(pos)
        return sorted(slots)

    def _remove_slot(self, k: int) -> None:
        v = abs(int(self._perm[k + 1] - self._perm[k]))
        c = self._counts[v]
        self._counts[v] = c - 1
        if c >= 2:
            self._cost -= 1

    def _add_slot(self, k: int) -> None:
        v = abs(int(self._perm[k + 1] - self._perm[k]))
        c = self._counts[v]
        self._counts[v] = c + 1
        if c >= 1:
            self._cost += 1

    def apply_swap(self, i: int, j: int, delta: Optional[int] = None) -> int:
        # The interval counts make the update O(1) already; ``delta`` unused.
        if i != j:
            slots = self._interval_indices(i, j)
            for k in slots:
                self._remove_slot(k)
            self._perm[i], self._perm[j] = self._perm[j], self._perm[i]
            for k in slots:
                self._add_slot(k)
        return int(self._cost)

    def swap_delta(self, i: int, j: int) -> int:
        if i == j:
            return 0
        before = self._cost
        self.apply_swap(i, j)
        after = self._cost
        self.apply_swap(i, j)
        return after - before

    def swap_deltas(self, i: int) -> np.ndarray:
        n = self.size
        deltas = np.empty(n, dtype=np.int64)
        for j in range(n):
            deltas[j] = 0 if j == i else self.swap_delta(i, j)
        deltas[i] = _INT64_MAX
        return deltas

    # ----------------------------------------------------------------- exports
    def intervals(self) -> np.ndarray:
        """The current sequence of absolute differences (length ``n - 1``)."""
        return np.abs(np.diff(self._perm))
