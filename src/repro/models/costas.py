"""Adaptive Search model of the Costas Array Problem (Section IV of the paper).

The configuration is a permutation ``p`` of ``0..n-1`` (``p[i]`` = row of the
mark in column ``i``).  The error functions are defined on the *difference
triangle*: every repeated value in row ``d`` adds ``ERR(d)`` to the global
cost and to the error of both columns of the repeated cell.

The model supports the paper's three refinements independently, so each can be
ablated:

``err_weight``
    ``"constant"`` — the basic model, ``ERR(d) = 1``;
    ``"quadratic"`` — the optimised model, ``ERR(d) = n² − d²`` (errors at
    short distances, whose rows contain more cells, are penalised more; the
    paper reports ≈ 17% faster solving).

``use_chang``
    Restrict the triangle to rows ``d ≤ ⌊(n−1)/2⌋``.  By Chang's remark a
    repeated difference at a larger distance always induces one at a smaller
    distance, so this is lossless and saves ≈ 30% of the evaluation work.

``dedicated_reset``
    Replace the generic "re-randomise RP% of the variables" reset by the
    paper's three-family perturbation procedure (sub-array circular shifts
    around the most erroneous variable, adding a constant modulo ``n``, and a
    prefix shift up to a random erroneous variable), reported to be worth a
    further ≈ 3.7×.

Performance note: the engine's hot path is :meth:`CostasProblem.swap_deltas`
(all candidate swaps of the culprit variable).  It is vectorised with NumPy —
all ``n`` candidate configurations are evaluated as one ``(n, n)`` matrix, one
sort per triangle row — because per-cell incremental updates in pure Python
are dominated by interpreter overhead at these sizes (see the repository's
optimisation guide notes in ``DESIGN.md``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.problem import PermutationProblem
from repro.costas.array import is_costas
from repro.exceptions import ModelError

__all__ = ["CostasProblem", "basic_costas_problem", "optimized_costas_problem"]

_INT64_MAX = np.iinfo(np.int64).max


class CostasProblem(PermutationProblem):
    """The Costas Array Problem as an Adaptive Search permutation problem.

    Parameters
    ----------
    order:
        Array order ``n >= 3``.
    err_weight:
        ``"quadratic"`` (default, optimised model) or ``"constant"`` (basic model).
    use_chang:
        Evaluate only rows ``d <= (n-1)//2`` of the difference triangle
        (default ``True``).
    dedicated_reset:
        Use the paper's custom reset procedure (default ``True``).
    reset_constants:
        Constants tried by the "add a constant modulo n" perturbation of the
        dedicated reset; defaults to the paper's ``(1, 2, n-2, n-3)``.
    """

    def __init__(
        self,
        order: int,
        *,
        err_weight: str = "quadratic",
        use_chang: bool = True,
        dedicated_reset: bool = True,
        reset_constants: Optional[Sequence[int]] = None,
    ) -> None:
        if order < 3:
            raise ModelError(f"CostasProblem requires order >= 3, got {order}")
        super().__init__(order, name="costas")
        n = order
        self._use_chang = bool(use_chang)
        self._dedicated_reset = bool(dedicated_reset)
        self._max_d = (n - 1) // 2 if use_chang else n - 1

        if err_weight == "quadratic":
            weights = np.array([n * n - d * d for d in range(n)], dtype=np.int64)
        elif err_weight == "constant":
            weights = np.ones(n, dtype=np.int64)
        else:
            raise ModelError(
                f"err_weight must be 'quadratic' or 'constant', got {err_weight!r}"
            )
        self._err_weight_name = err_weight
        self._weights = weights

        if reset_constants is None:
            candidates = [1, 2, n - 2, n - 3]
        else:
            candidates = list(reset_constants)
        self._reset_constants = sorted(
            {c % n for c in candidates if c % n != 0}
        )

        self._perm = np.arange(n, dtype=np.int64)
        self._cost = self._full_cost(self._perm)

    # ----------------------------------------------------------------- factory
    @property
    def order(self) -> int:
        """Order ``n`` of the Costas array being searched."""
        return self.size

    @property
    def max_distance(self) -> int:
        """Largest difference-triangle row the model evaluates."""
        return self._max_d

    @property
    def err_weight_name(self) -> str:
        """Name of the error weighting in use (``"constant"`` or ``"quadratic"``)."""
        return self._err_weight_name

    @property
    def uses_dedicated_reset(self) -> bool:
        """Whether the paper's custom reset procedure is enabled."""
        return self._dedicated_reset

    def describe(self) -> str:
        return (
            f"costas(n={self.size}, err={self._err_weight_name}, "
            f"chang={self._use_chang}, dedicated_reset={self._dedicated_reset})"
        )

    # ------------------------------------------------------------------- state
    def set_configuration(self, perm: Sequence[int] | np.ndarray) -> None:
        arr = np.asarray(perm, dtype=np.int64)
        if arr.shape != (self.size,):
            raise ModelError(
                f"expected a configuration of length {self.size}, got shape {arr.shape}"
            )
        if not np.array_equal(np.sort(arr), np.arange(self.size)):
            raise ModelError("configuration is not a permutation of 0..n-1")
        self._perm = arr.copy()
        self._cost = self._full_cost(self._perm)

    def configuration(self) -> np.ndarray:
        return self._perm.copy()

    # -------------------------------------------------------------------- cost
    def _full_cost(self, perm: np.ndarray) -> int:
        total = 0
        for d in range(1, self._max_d + 1):
            row = np.sort(perm[d:] - perm[:-d])
            dups = int(np.count_nonzero(row[1:] == row[:-1]))
            if dups:
                total += int(self._weights[d]) * dups
        return total

    def cost(self) -> int:
        return int(self._cost)

    def is_solution(self) -> bool:
        return self._cost == 0

    def check_consistency(self) -> None:
        """Assert the cached cost matches a recomputation and, when the cached
        cost is zero, that the configuration truly is a Costas array (this is
        where Chang's half-triangle shortcut would show up if it were wrong)."""
        recomputed = self._full_cost(self._perm)
        if recomputed != self._cost:
            raise AssertionError(
                f"cached cost {self._cost} != recomputed cost {recomputed}"
            )
        if self._cost == 0 and not is_costas(self._perm):
            raise AssertionError(
                "model reports cost 0 but the configuration is not a Costas array"
            )

    # ------------------------------------------------------------------ errors
    def variable_errors(self) -> np.ndarray:
        """Project triangle errors onto columns (paper Section IV-A).

        Scanning each row left to right, every cell whose difference value was
        already seen adds ``ERR(d)`` to the errors of both its columns.
        """
        p = self._perm
        n = self.size
        errs = np.zeros(n, dtype=np.int64)
        for d in range(1, self._max_d + 1):
            row = p[d:] - p[:-d]
            if row.size <= 1:
                continue
            _, first_idx = np.unique(row, return_index=True)
            mask = np.ones(row.size, dtype=bool)
            mask[first_idx] = False
            if not mask.any():
                continue
            repeats = np.flatnonzero(mask)
            w = int(self._weights[d])
            np.add.at(errs, repeats, w)
            np.add.at(errs, repeats + d, w)
        return errs

    # ------------------------------------------------------------------- moves
    def swap_delta(self, i: int, j: int) -> int:
        if i == j:
            return 0
        p = self._perm.copy()
        p[i], p[j] = p[j], p[i]
        return self._full_cost(p) - self._cost

    def apply_swap(self, i: int, j: int) -> int:
        if i != j:
            delta = self.swap_delta(i, j)
            self._perm[i], self._perm[j] = self._perm[j], self._perm[i]
            self._cost += delta
        return int(self._cost)

    def swap_deltas(self, i: int) -> np.ndarray:
        """Vectorised evaluation of every swap involving column *i*.

        Builds the ``(n, n)`` matrix whose row ``j`` is the permutation with
        columns ``i`` and ``j`` swapped, then scores all rows of every triangle
        distance at once (sort + adjacent-equality count).
        """
        p = self._perm
        n = self.size
        candidates = np.broadcast_to(p, (n, n)).copy()
        rows = np.arange(n)
        candidates[rows, i] = p[rows]
        candidates[rows, rows] = p[i]

        costs = np.zeros(n, dtype=np.int64)
        for d in range(1, self._max_d + 1):
            diffs = candidates[:, d:] - candidates[:, :-d]
            if diffs.shape[1] <= 1:
                continue
            diffs = np.sort(diffs, axis=1)
            dups = np.count_nonzero(diffs[:, 1:] == diffs[:, :-1], axis=1)
            costs += self._weights[d] * dups

        deltas = costs - self._cost
        deltas[i] = _INT64_MAX
        return deltas

    # ------------------------------------------------------------------- reset
    def reset_candidates(self, rng: np.random.Generator) -> List[np.ndarray]:
        """Generate the perturbations of the paper's dedicated reset (Section IV-B).

        Three families, all anchored on the most erroneous column ``Vm``:

        1. every sub-array ending at ``Vm`` (``[i..m]``) or starting at ``Vm``
           (``[m..j]``), shifted circularly by one cell to the left and to the
           right;
        2. the whole permutation with a constant added modulo ``n``
           (constants 1, 2, n-2, n-3 by default);
        3. the prefix ending at a randomly chosen erroneous column different
           from ``Vm``, shifted left by one cell (at most three such columns
           are tried).
        """
        p = self._perm
        n = self.size
        errors = self.variable_errors()
        worst = int(errors.max())
        worst_positions = np.flatnonzero(errors == worst)
        vm = int(worst_positions[rng.integers(worst_positions.size)])

        candidates: List[np.ndarray] = []

        # 1. Circular shifts of every sub-array ending or starting at vm.
        segments = [(i, vm) for i in range(vm)] + [
            (vm, j) for j in range(vm + 1, n)
        ]
        for lo, hi in segments:
            for direction in (-1, 1):
                cand = p.copy()
                cand[lo : hi + 1] = np.roll(cand[lo : hi + 1], direction)
                candidates.append(cand)

        # 2. Add a constant modulo n to every value.
        for c in self._reset_constants:
            candidates.append((p + c) % n)

        # 3. Left-shift the prefix ending at a random erroneous column != vm.
        erroneous = np.flatnonzero(errors > 0)
        erroneous = erroneous[erroneous != vm]
        if erroneous.size > 0:
            picks = rng.permutation(erroneous)[:3]
            for e in picks:
                e = int(e)
                if e < 1:
                    continue
                cand = p.copy()
                cand[: e + 1] = np.roll(cand[: e + 1], -1)
                candidates.append(cand)
        return candidates

    def custom_reset(self, rng: np.random.Generator) -> Optional[np.ndarray]:
        """The paper's dedicated reset procedure (Section IV-B).

        Candidate perturbations (see :meth:`reset_candidates`) are examined in
        random order; the first one whose cost is strictly lower than the
        current cost is returned immediately ("the local minimum is considered
        as escaped").  When none improves, one of the minimum-cost candidates
        is returned (ties broken uniformly at random, so repeated resets from
        the same configuration do not cycle deterministically).

        Returns ``None`` when the model was built with
        ``dedicated_reset=False`` so the engine falls back to its generic
        partial reset.
        """
        if not self._dedicated_reset:
            return None

        entry_cost = self._cost
        candidates = self.reset_candidates(rng)
        if not candidates:
            return None

        best_cost = _INT64_MAX
        best: List[np.ndarray] = []
        for index in rng.permutation(len(candidates)):
            cand = candidates[int(index)]
            c = self._full_cost(cand)
            if c < entry_cost:
                return cand
            if c < best_cost:
                best_cost = c
                best = [cand]
            elif c == best_cost:
                best.append(cand)
        return best[int(rng.integers(len(best)))]

    # ----------------------------------------------------------------- exports
    def as_costas_array(self):
        """Return the current configuration as a validated
        :class:`repro.costas.array.CostasArray` (raises if it is not a solution)."""
        from repro.costas.array import CostasArray

        return CostasArray.from_permutation(self._perm)


def basic_costas_problem(order: int) -> CostasProblem:
    """The paper's *basic* model: ``ERR(d)=1``, full triangle, generic reset."""
    return CostasProblem(
        order, err_weight="constant", use_chang=False, dedicated_reset=False
    )


def optimized_costas_problem(order: int) -> CostasProblem:
    """The paper's fully optimised model (the defaults of :class:`CostasProblem`)."""
    return CostasProblem(
        order, err_weight="quadratic", use_chang=True, dedicated_reset=True
    )
