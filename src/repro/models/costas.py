"""Adaptive Search model of the Costas Array Problem (Section IV of the paper).

The configuration is a permutation ``p`` of ``0..n-1`` (``p[i]`` = row of the
mark in column ``i``).  The error functions are defined on the *difference
triangle*: every repeated value in row ``d`` adds ``ERR(d)`` to the global
cost and to the error of both columns of the repeated cell.

The model supports the paper's three refinements independently, so each can be
ablated:

``err_weight``
    ``"constant"`` — the basic model, ``ERR(d) = 1``;
    ``"quadratic"`` — the optimised model, ``ERR(d) = n² − d²`` (errors at
    short distances, whose rows contain more cells, are penalised more; the
    paper reports ≈ 17% faster solving).

``use_chang``
    Restrict the triangle to rows ``d ≤ ⌊(n−1)/2⌋``.  By Chang's remark a
    repeated difference at a larger distance always induces one at a smaller
    distance, so this is lossless and saves ≈ 30% of the evaluation work.

``dedicated_reset``
    Replace the generic "re-randomise RP% of the variables" reset by the
    paper's three-family perturbation procedure (sub-array circular shifts
    around the most erroneous variable, adding a constant modulo ``n``, and a
    prefix shift up to a random erroneous variable), reported to be worth a
    further ≈ 3.7×.

Two implementations of the same model are provided:

* :class:`CostasProblem` — the **incremental** path the engine uses.  It
  maintains per-distance difference-value count tables (an
  ``(max_d, 2n−1)`` occurrence matrix) plus the current difference rows, so
  an applied swap touches O(d) cells and :meth:`CostasProblem.swap_deltas`
  scores all ``n`` candidate swaps of the culprit variable from the O(n·d)
  affected cells instead of rebuilding and sorting ``n`` candidate
  permutations.  ``cost``/``variable_errors`` are cached reads invalidated
  incrementally.  The data structure and its per-swap update rules are
  documented in ``DESIGN.md``.
* :class:`ReferenceCostasProblem` — the original full-recompute path
  (``swap_deltas`` builds an ``(n, n)`` candidate matrix and sorts every
  difference-triangle row; ``apply_swap`` re-scores from scratch), kept as
  the obviously-correct reference: the property tests assert bit-exact
  cost/error/delta equivalence between both paths, and the
  ``bench_incremental_vs_reference`` harness measures the speed-up.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core import _ckernels
from repro.core.incremental import dup_count, dup_delta_from_net, net_occurrence_change
from repro.core.problem import PermutationProblem
from repro.costas.array import is_costas
from repro.exceptions import ModelError

__all__ = [
    "CostasProblem",
    "ReferenceCostasProblem",
    "basic_costas_problem",
    "optimized_costas_problem",
]

_INT64_MAX = np.iinfo(np.int64).max


class _CostasBase(PermutationProblem):
    """Shared configuration, scoring semantics and reset machinery.

    Everything that defines *what* the Costas model computes lives here —
    weights, Chang's half-triangle restriction, the reference full-evaluation
    :meth:`_full_cost`, and the dedicated reset procedure.  Subclasses only
    differ in *how* the per-iteration queries (cost, errors, swap deltas) are
    evaluated, which is exactly the contract the equivalence tests pin down.

    Parameters
    ----------
    order:
        Array order ``n >= 3``.
    err_weight:
        ``"quadratic"`` (default, optimised model) or ``"constant"`` (basic model).
    use_chang:
        Evaluate only rows ``d <= (n-1)//2`` of the difference triangle
        (default ``True``).
    dedicated_reset:
        Use the paper's custom reset procedure (default ``True``).
    reset_constants:
        Constants tried by the "add a constant modulo n" perturbation of the
        dedicated reset; defaults to the paper's ``(1, 2, n-2, n-3)``.
    """

    def __init__(
        self,
        order: int,
        *,
        err_weight: str = "quadratic",
        use_chang: bool = True,
        dedicated_reset: bool = True,
        reset_constants: Optional[Sequence[int]] = None,
        name: str = "costas",
    ) -> None:
        if order < 3:
            raise ModelError(f"CostasProblem requires order >= 3, got {order}")
        super().__init__(order, name=name)
        n = order
        self._use_chang = bool(use_chang)
        self._dedicated_reset = bool(dedicated_reset)
        self._max_d = (n - 1) // 2 if use_chang else n - 1

        if err_weight == "quadratic":
            weights = np.array([n * n - d * d for d in range(n)], dtype=np.int64)
        elif err_weight == "constant":
            weights = np.ones(n, dtype=np.int64)
        else:
            raise ModelError(
                f"err_weight must be 'quadratic' or 'constant', got {err_weight!r}"
            )
        self._err_weight_name = err_weight
        self._weights = weights

        if reset_constants is None:
            candidates = [1, 2, n - 2, n - 3]
        else:
            candidates = list(reset_constants)
        self._reset_constants = sorted(
            {c % n for c in candidates if c % n != 0}
        )

    # ---------------------------------------------------------------- queries
    @property
    def order(self) -> int:
        """Order ``n`` of the Costas array being searched."""
        return self.size

    @property
    def max_distance(self) -> int:
        """Largest difference-triangle row the model evaluates."""
        return self._max_d

    @property
    def err_weight_name(self) -> str:
        """Name of the error weighting in use (``"constant"`` or ``"quadratic"``)."""
        return self._err_weight_name

    @property
    def uses_dedicated_reset(self) -> bool:
        """Whether the paper's custom reset procedure is enabled."""
        return self._dedicated_reset

    def describe(self) -> str:
        return (
            f"{self.name}(n={self.size}, err={self._err_weight_name}, "
            f"chang={self._use_chang}, dedicated_reset={self._dedicated_reset})"
        )

    # ------------------------------------------------------------------- state
    def _validated(self, perm: Sequence[int] | np.ndarray) -> np.ndarray:
        arr = np.asarray(perm, dtype=np.int64)
        if arr.shape != (self.size,):
            raise ModelError(
                f"expected a configuration of length {self.size}, got shape {arr.shape}"
            )
        if not np.array_equal(np.sort(arr), np.arange(self.size)):
            raise ModelError("configuration is not a permutation of 0..n-1")
        return arr.copy()

    def configuration(self) -> np.ndarray:
        return self._perm.copy()

    # -------------------------------------------------------------------- cost
    def _full_cost(self, perm: np.ndarray) -> int:
        """Reference evaluation: sort each triangle row, count duplicates."""
        total = 0
        for d in range(1, self._max_d + 1):
            row = np.sort(perm[d:] - perm[:-d])
            dups = int(np.count_nonzero(row[1:] == row[:-1]))
            if dups:
                total += int(self._weights[d]) * dups
        return total

    def is_solution(self) -> bool:
        return self.cost() == 0

    # ------------------------------------------------------------------- reset
    def reset_candidates(self, rng: np.random.Generator) -> List[np.ndarray]:
        """Generate the perturbations of the paper's dedicated reset (Section IV-B).

        Three families, all anchored on the most erroneous column ``Vm``:

        1. every sub-array ending at ``Vm`` (``[i..m]``) or starting at ``Vm``
           (``[m..j]``), shifted circularly by one cell to the left and to the
           right;
        2. the whole permutation with a constant added modulo ``n``
           (constants 1, 2, n-2, n-3 by default);
        3. the prefix ending at a randomly chosen erroneous column different
           from ``Vm``, shifted left by one cell (at most three such columns
           are tried).
        """
        p = self._perm
        n = self.size
        errors = self.variable_errors()
        worst = int(errors.max())
        worst_positions = np.flatnonzero(errors == worst)
        vm = int(worst_positions[rng.integers(worst_positions.size)])

        candidates: List[np.ndarray] = []

        # 1. Circular shifts of every sub-array ending or starting at vm.
        segments = [(i, vm) for i in range(vm)] + [
            (vm, j) for j in range(vm + 1, n)
        ]
        for lo, hi in segments:
            for direction in (-1, 1):
                cand = p.copy()
                cand[lo : hi + 1] = np.roll(cand[lo : hi + 1], direction)
                candidates.append(cand)

        # 2. Add a constant modulo n to every value.
        for c in self._reset_constants:
            candidates.append((p + c) % n)

        # 3. Left-shift the prefix ending at a random erroneous column != vm.
        erroneous = np.flatnonzero(errors > 0)
        erroneous = erroneous[erroneous != vm]
        if erroneous.size > 0:
            picks = rng.permutation(erroneous)[:3]
            for e in picks:
                e = int(e)
                if e < 1:
                    continue
                cand = p.copy()
                cand[: e + 1] = np.roll(cand[: e + 1], -1)
                candidates.append(cand)
        return candidates

    def custom_reset(self, rng: np.random.Generator) -> Optional[np.ndarray]:
        """The paper's dedicated reset procedure (Section IV-B).

        Candidate perturbations (see :meth:`reset_candidates`) are examined in
        random order; the first one whose cost is strictly lower than the
        current cost is returned immediately ("the local minimum is considered
        as escaped").  When none improves, one of the minimum-cost candidates
        is returned (ties broken uniformly at random, so repeated resets from
        the same configuration do not cycle deterministically).

        Returns ``None`` when the model was built with
        ``dedicated_reset=False`` so the engine falls back to its generic
        partial reset.
        """
        if not self._dedicated_reset:
            return None

        entry_cost = self.cost()
        candidates = self.reset_candidates(rng)
        if not candidates:
            return None

        best_cost = _INT64_MAX
        best: List[np.ndarray] = []
        for index in rng.permutation(len(candidates)):
            cand = candidates[int(index)]
            c = self._full_cost(cand)
            if c < entry_cost:
                return cand
            if c < best_cost:
                best_cost = c
                best = [cand]
            elif c == best_cost:
                best.append(cand)
        return best[int(rng.integers(len(best)))]

    # ----------------------------------------------------------------- exports
    def as_costas_array(self):
        """Return the current configuration as a validated
        :class:`repro.costas.array.CostasArray` (raises if it is not a solution)."""
        from repro.costas.array import CostasArray

        return CostasArray.from_permutation(self._perm)


class CostasProblem(_CostasBase):
    """Incremental evaluation of the Costas model (the engine's default path).

    State beyond the permutation (all derived, rebuilt by
    :meth:`set_configuration`, updated in O(d) cells per applied swap):

    ``_rows``
        ``(max_d + 1, n)`` matrix; ``_rows[d, k] = p[k+d] - p[k] + (n-1)``
        for ``k < n - d`` — the difference triangle, value-shifted to
        ``[0, 2n-2]`` so differences index count tables directly.  Cells that
        fall off the triangle (``k >= n - d``) permanently hold the sentinel
        ``3n``, which is how off-triangle reads dump themselves without any
        masking (see :meth:`swap_deltas`).
    ``_cnt``
        ``(max_d + 1, 2n)`` occurrence matrix; ``_cnt[d, v]`` counts how many
        cells of triangle row ``d`` currently hold shifted value ``v`` (the
        last column is the zero-weight dump bucket).  Row ``d`` contributes
        ``ERR(d) · Σ_v max(_cnt[d, v] - 1, 0)`` to the cost.
    ``_cost`` / ``_errors``
        Cached global cost (kept exact through per-swap deltas) and cached
        per-variable error vector (invalidated by every mutation, recomputed
        lazily from ``_rows``).

    A swap of columns ``i`` and ``j`` only changes triangle cells whose span
    touches ``i`` or ``j`` — at most 4 cells per distance ``d`` (``i-d``,
    ``i``, ``j-d``, ``j``) — so the cost delta of *every* candidate swap is
    read from ``_cnt`` through the keyed-bincount algebra of
    :mod:`repro.core.incremental` without constructing any candidate
    configuration.  See ``DESIGN.md`` for the full update rules and the
    measured speed-ups.
    """

    def __init__(
        self,
        order: int,
        *,
        err_weight: str = "quadratic",
        use_chang: bool = True,
        dedicated_reset: bool = True,
        reset_constants: Optional[Sequence[int]] = None,
        use_ckernels: Optional[bool] = None,
    ) -> None:
        super().__init__(
            order,
            err_weight=err_weight,
            use_chang=use_chang,
            dedicated_reset=dedicated_reset,
            reset_constants=reset_constants,
        )
        n = order
        D = self._max_d
        self._off = n - 1  # value shift: differences -(n-1)..n-1 -> 0..2n-2
        self._W = 2 * n - 1  # real values per table row; column W is the dump
        self._Wx = 2 * n  # table row width including the dump bucket
        self._L = 3 * n  # rows[] sentinel: clips past the dump for any delta
        self._d = np.arange(1, D + 1, dtype=np.int64)
        self._w_d = self._weights[1 : D + 1]
        self._d4 = np.tile(self._d, (4, 1))  # distance of each affected cell
        self._cellbuf = np.empty((4, D), dtype=np.int64)
        all_j = np.arange(n, dtype=np.int64)
        jm_all = all_j[:, None] - self._d  # cell j-d per (j, distance)
        drow = np.broadcast_to(self._d, (n, D))
        # Flat gather indices for the j-d cells: negative columns are steered
        # to rows[0, 0], which row 0 (distance 0 is never evaluated) keeps at
        # the sentinel, so off-triangle reads dump themselves.
        self._jm_flat = np.where(jm_all >= 0, drow * n + jm_all, 0)
        # Flat event keys: (candidate j, distance, value) -> one bincount bucket.
        self._rowkey = (all_j[:, None] * D + np.arange(D, dtype=np.int64)) * self._Wx
        self._rowkey1 = (np.arange(D, dtype=np.int64) * self._Wx)[:, None]
        self._nb = n * D * self._Wx
        self._nb1 = D * self._Wx
        # Per-bucket weights for the delta matmuls (dump columns weigh 0).
        wrepx = np.repeat(self._w_d, self._Wx)
        wrepx.reshape(D, self._Wx)[:, self._W] = 0
        self._wrepx = wrepx
        # Event buffers, slot-major so every fill writes one contiguous block:
        # slots 0-3 = removed values of cells i-d, i, j-d, j; slots 4-7 = added.
        self._B = np.empty((8, n, D), dtype=np.int64)
        self._K = np.empty((8, n, D), dtype=np.int64)
        self._Brem1 = np.empty((D, 4), dtype=np.int64)
        self._Badd1 = np.empty((D, 4), dtype=np.int64)
        didx = np.arange(D, dtype=np.int64)
        # Per-culprit overlap fixups: the candidates j = i +/- d whose swap
        # shares a triangle cell with column i (at most one j per distance).
        self._overlap_p = []  # j == i + d: (j columns, their distance index)
        self._overlap_m = []  # j == i - d
        for i in range(n):
            sel = i + self._d < n
            self._overlap_p.append(((i + self._d)[sel], didx[sel]))
            sel = i - self._d >= 0
            self._overlap_m.append(((i - self._d)[sel], didx[sel]))
        # Flat (distance, column) indices of every valid triangle cell.
        lengths = n - self._d
        self._dflat = np.repeat(self._d, lengths)
        self._kflat = np.concatenate([np.arange(n - d) for d in range(1, D + 1)])
        self._c2flat = self._kflat + self._dflat  # right column of each cell
        self._wflat = self._weights[self._dflat]

        self._cnt = np.zeros((D + 1, self._Wx), dtype=np.int64)
        self._cnt1 = self._cnt[1:]  # distances 1..max_d (a view)
        self._cntflat = self._cnt1.reshape(-1)
        self._rows = np.full((D + 1, n), self._L, dtype=np.int64)
        self._errors: Optional[np.ndarray] = None
        # The permutation lives in a fixed buffer so the C kernels can hold
        # its address for the lifetime of the problem.
        self._perm = np.zeros(n, dtype=np.int64)

        # Optional C kernels (see repro/core/_ckernels.py): auto-detected by
        # default, forced on/off with ``use_ckernels``; every call site keeps
        # a bit-exact NumPy fallback.
        if use_ckernels is False:
            self._lib = None
        else:
            self._lib = _ckernels.load()
            if self._lib is None and use_ckernels is True:
                raise ModelError(
                    "use_ckernels=True but the C kernels are unavailable "
                    "(no C compiler, or REPRO_NO_CKERNELS is set)"
                )
        if self._lib is not None:
            self._cp = self._perm.ctypes.data
            self._crows = self._rows.ctypes.data
            self._ccnt = self._cnt.ctypes.data
            self._cwd = self._w_d.ctypes.data  # contiguous view of weights[1:D+1]
            self._stamp = np.zeros(self._W, dtype=np.int64)
            self._cstamp = self._stamp.ctypes.data
            self._errbuf = np.zeros(n, dtype=np.int64)
            self._cerr = self._errbuf.ctypes.data
            self._epoch = 0
        # Scalar sum(w * max(cnt, 1)) -- the subtrahend of every delta matmul;
        # recomputed lazily after each count-table mutation.
        self._dupbase: Optional[int] = None
        # (culprit, per-candidate net tables) of the last swap_deltas call, so
        # the engine's subsequent apply_swap reuses the already-computed nets.
        self._net_cache: Optional[tuple] = None
        # Family-1 reset perturbations are pure index remaps that depend only
        # on the anchor column; built on first use, cached per anchor.
        self._reset_idx_cache: dict = {}
        # Batched candidate scoring: flat (distance, column) cell pairs and
        # per-cell bincount key bases (candidate-row offset added at use).
        self._score_base = (self._dflat - 1) * self._W
        self._score_block = D * self._W
        self._score_wrep = np.repeat(self._w_d, self._W)
        self._score_k0 = int((self._w_d * (n - self._d)).sum())
        self.set_configuration(np.arange(n, dtype=np.int64))

    # ------------------------------------------------------------------- state
    @property
    def incremental(self) -> bool:
        return True

    def set_configuration(self, perm: Sequence[int] | np.ndarray) -> None:
        self._perm[...] = self._validated(perm)
        self.invalidate_caches()

    def load_trusted_configuration(self, perm: np.ndarray) -> None:
        self._perm[...] = perm
        self.invalidate_caches()

    def invalidate_caches(self) -> None:
        """Rebuild every derived structure from the current permutation."""
        if self._lib is not None:
            self._cost = int(
                self._lib.costas_rebuild(
                    self._cp, self._crows, self._ccnt, self.size, self._max_d,
                    self._Wx, self._off, self._L, self._cwd,
                )
            )
            self._errors = None
            self._dupbase = None
            self._net_cache = None
            return
        p = self._perm
        n = self.size
        self._cnt[:] = 0
        self._rows[:] = self._L
        for d in range(1, self._max_d + 1):
            self._rows[d, : n - d] = p[d:] - p[:-d] + self._off
        np.add.at(self._cnt, (self._dflat, self._rows[self._dflat, self._kflat]), 1)
        self._cost = int(dup_count(self._cnt1[:, : self._W], axis=1) @ self._w_d)
        self._errors = None
        self._dupbase = None
        self._net_cache = None

    # -------------------------------------------------------------------- cost
    def cost(self) -> int:
        return int(self._cost)

    def check_consistency(self) -> None:
        """Assert cached cost, count tables and difference rows against a
        recomputation and, when the cached cost is zero, that the configuration
        truly is a Costas array (this is where Chang's half-triangle shortcut
        would show up if it were wrong)."""
        p = self._perm
        n = self.size
        recomputed = self._full_cost(p)
        if recomputed != self._cost:
            raise AssertionError(
                f"cached cost {self._cost} != recomputed cost {recomputed}"
            )
        fresh_cnt = np.zeros_like(self._cnt)
        for d in range(1, self._max_d + 1):
            row = p[d:] - p[: n - d] + self._off
            if not np.array_equal(row, self._rows[d, : n - d]):
                raise AssertionError(f"difference row {d} is stale")
            if not np.all(self._rows[d, n - d :] == self._L):
                raise AssertionError(f"padding of difference row {d} was clobbered")
            np.add.at(fresh_cnt[d], row, 1)
        if not np.array_equal(fresh_cnt, self._cnt):
            raise AssertionError("difference count tables are stale")
        if self._cost == 0 and not is_costas(p):
            raise AssertionError(
                "model reports cost 0 but the configuration is not a Costas array"
            )

    # ------------------------------------------------------------------ errors
    def variable_errors(self) -> np.ndarray:
        """Project triangle errors onto columns (paper Section IV-A).

        Scanning each row left to right, every cell whose difference value was
        already seen adds ``ERR(d)`` to the errors of both its columns.  The
        result is cached until the next mutation; the recomputation reads the
        maintained ``_rows`` (no differences are recomputed) and detects
        repeats by comparing each cell's column with the first column holding
        its value.
        """
        if self._errors is None:
            if self._lib is not None:
                self._lib.costas_errors(
                    self._crows, self.size, self._max_d, self._cwd,
                    self._cstamp, self._epoch, self._cerr,
                )
                self._epoch += self._max_d
                self._errors = self._errbuf
                return self._errors.copy()
            n = self.size
            vals = self._rows[self._dflat, self._kflat]
            first = np.full((self._max_d + 1, self._W), n, dtype=np.int64)
            np.minimum.at(first, (self._dflat, vals), self._kflat)
            rep = self._kflat > first[self._dflat, vals]
            errs = np.zeros(n, dtype=np.int64)
            w = self._wflat[rep]
            np.add.at(errs, self._kflat[rep], w)
            np.add.at(errs, self._c2flat[rep], w)
            self._errors = errs
        return self._errors.copy()

    # ------------------------------------------------------------------- moves
    #
    # A swap of columns i and j (values a, b) rewrites the triangle cells
    # i-d, i, j-d, j of every distance d: each loses its current difference
    # and gains the one with a and b exchanged (old value +/- (b - a)).  Every
    # such event is encoded as a flat (candidate, distance, value) bincount
    # key; reads that fall off the triangle arrive as the rows[] sentinel and
    # clip into the per-(candidate, distance) dump bucket, whose weight is 0.
    # When |i - j| = d one cell spans both columns: its duplicate j-side slots
    # are steered to the dump and the surviving add becomes the negated
    # difference.  ``net_occurrence_change`` then nets all events per bucket
    # and the cost delta is two weighted matmuls against the count tables.

    def swap_deltas(self, i: int) -> np.ndarray:
        """Score every swap involving column *i* from the count tables.

        Only the O(n·d) triangle cells a swap can affect are consulted; no
        candidate permutation is built and nothing is sorted.
        """
        if self._lib is not None:
            deltas = np.empty(self.size, dtype=np.int64)
            self._lib.costas_swap_deltas(
                self._cp, self._crows, self._ccnt, self.size, self._max_d,
                self._Wx, self._off, self._cwd, i, deltas.ctypes.data,
            )
            deltas[i] = _INT64_MAX
            return deltas
        p = self._perm
        rows = self._rows
        d = self._d
        off = self._off
        W = self._W
        a = int(p[i])
        dc = (p - a)[:, None]  # b - a per candidate j
        r0 = rows[d, i - d]  # cell i-d current value (sentinel off-triangle)
        r1 = rows[1:, i]  # cell i current value
        r2 = rows.take(self._jm_flat)  # cell j-d per candidate
        r3 = rows[1:].T  # cell j per candidate (view)
        B = self._B
        B[0] = r0
        B[1] = r1
        B[2] = r2
        B[3] = r3
        np.add(r0, dc, out=B[4])
        np.subtract(r1, dc, out=B[5])
        np.subtract(r2, dc, out=B[6])
        np.add(r3, dc, out=B[7])
        # Candidates j = i +/- d share one cell with column i: drop the
        # duplicated j-side slots into the dump and fix the shared cell's add
        # to the negated difference (its two occupants swap places).
        jp, dp = self._overlap_p[i]  # j == i + d: shared cell is cell i
        B[2][jp, dp] = W
        B[6][jp, dp] = W
        B[5][jp, dp] = off - (p[jp] - a)  # cell i gains a - b
        jm, dm = self._overlap_m[i]  # j == i - d: shared cell is cell j
        B[0][jm, dm] = W
        B[4][jm, dm] = W
        B[7][jm, dm] = off + (p[jm] - a)  # cell j gains b - a
        np.minimum(B, W, out=B)  # sentinel reads -> per-(j, d) dump bucket
        K = np.add(B, self._rowkey, out=self._K)
        kr = K[:4].reshape(-1)
        ka = K[4:].reshape(-1)
        net = net_occurrence_change(ka, kr, self._nb).reshape(self.size, -1)
        self._net_cache = (i, net)
        # dup_delta_from_net(cnt, net) @ w, split so the net-independent
        # subtrahend max(cnt, 1) @ w is a scalar cached between mutations.
        scored = np.add(net, self._cntflat)
        np.maximum(scored, 1, out=scored)
        deltas = scored @ self._wrepx
        deltas -= self._dup_base()
        deltas[i] = _INT64_MAX
        return deltas

    def _dup_base(self) -> int:
        if self._dupbase is None:
            self._dupbase = int(np.maximum(self._cntflat, 1) @ self._wrepx)
        return self._dupbase

    def _single_net(self, i: int, j: int) -> np.ndarray:
        """Net count-table change of swapping *i* and *j* (shape ``(max_d, 2n)``)."""
        p = self._perm
        rows = self._rows
        d = self._d
        off = self._off
        L = self._L
        db = int(p[j]) - int(p[i])
        mask_p = (j - d) == i
        mask_m = (j + d) == i
        r0 = rows[d, i - d]
        r1 = rows[1:, i]
        r2 = rows[d, j - d]
        r3 = rows[1:, j]
        r0m = np.where(mask_m, L, r0)
        r2m = np.where(mask_p, L, r2)
        Br = self._Brem1
        Br[:, 0] = r0m
        Br[:, 1] = r1
        Br[:, 2] = r2m
        Br[:, 3] = r3
        Ba = self._Badd1
        Ba[:, 0] = r0m + db
        Ba[:, 1] = np.where(mask_p, off, r1) - db
        Ba[:, 2] = r2m - db
        Ba[:, 3] = np.where(mask_m, off, r3) + db
        np.minimum(Br, self._W, out=Br)
        np.minimum(Ba, self._W, out=Ba)
        return net_occurrence_change(
            Ba + self._rowkey1, Br + self._rowkey1, self._nb1
        ).reshape(self._max_d, self._Wx)

    def _net_delta(self, net_flat: np.ndarray) -> int:
        return int(dup_delta_from_net(self._cntflat, net_flat) @ self._wrepx)

    def swap_delta(self, i: int, j: int) -> int:
        if i == j:
            return 0
        if self._lib is not None:
            return int(
                self._lib.costas_swap_delta(
                    self._cp, self._crows, self._ccnt, self.size, self._max_d,
                    self._Wx, self._off, self._cwd, i, j,
                )
            )
        return self._net_delta(self._single_net(i, j).reshape(-1))

    def apply_swap(self, i: int, j: int, delta: Optional[int] = None) -> int:
        if i == j:
            return int(self._cost)
        if self._lib is not None:
            # The kernel re-derives the exact delta while updating the tables,
            # so the precomputed hint is redundant here.
            applied = int(
                self._lib.costas_apply(
                    self._cp, self._crows, self._ccnt, self.size, self._max_d,
                    self._Wx, self._off, self._cwd, i, j,
                )
            )
            self._cost += applied
            self._errors = None
            self._dupbase = None
            self._net_cache = None
            return int(self._cost)
        cached = self._net_cache
        if cached is not None and cached[0] == i:
            # The engine applies the swap it just scored: reuse that net table.
            net = cached[1][j].reshape(self._max_d, self._Wx)
        else:
            net = self._single_net(i, j)
        if delta is None:
            delta = self._net_delta(net.reshape(-1))
        self._cnt1 += net
        self._cnt1[:, self._W] = 0  # dump bucket stays empty
        self._dupbase = None
        self._net_cache = None
        p = self._perm
        p[i], p[j] = p[j], p[i]
        cells = self._cellbuf
        cells[0] = i - self._d
        cells[1] = i
        cells[2] = j - self._d
        cells[3] = j
        valid = (cells >= 0) & (cells + self._d4 < self.size)
        kv = cells[valid]
        dv = self._d4[valid]
        self._rows[dv, kv] = p[kv + dv] - p[kv] + self._off
        self._cost += int(delta)
        self._errors = None
        return int(self._cost)

    # ------------------------------------------------------------------- reset
    def reset_candidates(self, rng: np.random.Generator) -> List[np.ndarray]:
        return list(self._reset_candidate_matrix(rng))

    def _reset_candidate_matrix(self, rng: np.random.Generator) -> np.ndarray:
        """Vectorised construction of the dedicated-reset perturbations.

        Produces exactly the candidates of
        :meth:`_CostasBase.reset_candidates`, in the same order and with the
        same RNG consumption (one ``integers`` for the anchor, one
        ``permutation`` for the family-3 picks), but builds all family-1
        sub-array shifts as one gather: a circular shift of segment
        ``[lo, hi]`` is just an index remap, so the ``2(n-1)`` candidates are
        ``p[index_matrix]`` instead of ``2(n-1)`` ``np.roll`` calls.
        """
        p = self._perm
        n = self.size
        errors = self.variable_errors()
        worst = int(errors.max())
        worst_positions = np.flatnonzero(errors == worst)
        vm = int(worst_positions[rng.integers(worst_positions.size)])

        # 1. Circular shifts of every sub-array ending or starting at vm.  The
        # shifts are index remaps that depend only on the anchor, so the
        # (2(n-1), n) gather matrix is built once per anchor and cached.
        idx = self._reset_idx_cache.get(vm)
        if idx is None:
            cols = np.arange(n)
            lo = np.concatenate(
                [np.arange(vm), np.full(n - 1 - vm, vm, dtype=np.int64)]
            )
            hi = np.concatenate(
                [np.full(vm, vm, dtype=np.int64), np.arange(vm + 1, n)]
            )
            lo_c = lo[:, None]
            hi_c = hi[:, None]
            in_seg = (cols >= lo_c) & (cols <= hi_c)
            shift_left = np.where(
                in_seg, np.where(cols == hi_c, lo_c, cols + 1), cols
            )
            shift_right = np.where(
                in_seg, np.where(cols == lo_c, hi_c, cols - 1), cols
            )
            idx = np.stack([shift_left, shift_right], axis=1).reshape(-1, n)
            self._reset_idx_cache[vm] = idx
        parts = [p[idx]]

        # 2. Add a constant modulo n to every value.
        if self._reset_constants:
            consts = np.asarray(self._reset_constants, dtype=np.int64)
            parts.append((p[None, :] + consts[:, None]) % n)

        # 3. Left-shift the prefix ending at a random erroneous column != vm.
        erroneous = np.flatnonzero(errors > 0)
        erroneous = erroneous[erroneous != vm]
        if erroneous.size > 0:
            picks = rng.permutation(erroneous)[:3]
            picks = picks[picks >= 1][:, None]
            if picks.size:
                # Row t left-shifts the prefix [0..e_t]: index map
                # k -> k+1 for k < e, e -> 0, identity beyond.
                cols = np.arange(n)
                idx3 = np.where(cols < picks, cols + 1, cols)
                idx3[cols[None, :] == picks] = 0
                parts.append(p[idx3])
        return np.concatenate(parts, axis=0)

    def _batch_full_costs(self, candidates: np.ndarray) -> np.ndarray:
        """Exact cost of each candidate row, all rows in one bincount pass.

        Per distance ``d``, a row's cost contribution is
        ``ERR(d) · (cells − distinct values)``; every (candidate, distance,
        value) triple is folded into one flat bincount key, so the whole
        batch needs one subtraction, one ``bincount`` and one matmul instead
        of a sort per distance per candidate (the batched twin of
        :meth:`_CostasBase._full_cost`, bit-identical results)."""
        m = candidates.shape[0]
        if self._lib is not None:
            costs = np.empty(m, dtype=np.int64)
            candidates = np.ascontiguousarray(candidates, dtype=np.int64)
            self._lib.costas_batch_costs(
                candidates.ctypes.data, m, self.size, self._max_d, self._off,
                self._cwd, self._cstamp, self._epoch, costs.ctypes.data,
            )
            self._epoch += m * self._max_d
            return costs
        keys = candidates[:, self._c2flat] - candidates[:, self._kflat] + self._off
        keys += self._score_base
        keys += (np.arange(m, dtype=np.int64) * self._score_block)[:, None]
        occupied = np.minimum(
            np.bincount(keys.ravel(), minlength=m * self._score_block), 1
        )
        return self._score_k0 - occupied.reshape(m, -1) @ self._score_wrep

    def custom_reset(self, rng: np.random.Generator) -> Optional[np.ndarray]:
        """Batch-scored version of the dedicated reset (Section IV-B).

        Semantically identical to :meth:`_CostasBase.custom_reset` — same
        candidates, same RNG stream, same selection (first strict improvement
        in random examination order, else a uniformly random minimum-cost
        candidate) — but every candidate is scored in one vectorised pass,
        which matters because the paper's Costas parameters reset on *every*
        tabu mark (``RL = 1``), putting this squarely on the hot path.
        """
        if not self._dedicated_reset:
            return None

        entry_cost = self.cost()
        candidates = self._reset_candidate_matrix(rng)
        if candidates.shape[0] == 0:
            return None
        costs = self._batch_full_costs(candidates)
        order = rng.permutation(candidates.shape[0])
        ordered_costs = costs[order]
        improving = np.flatnonzero(ordered_costs < entry_cost)
        if improving.size:
            return candidates[int(order[int(improving[0])])]
        ties = order[ordered_costs == ordered_costs.min()]
        return candidates[int(ties[int(rng.integers(ties.size))])]


class ReferenceCostasProblem(_CostasBase):
    """Full-recompute evaluation of the Costas model (the seed implementation).

    Every query re-scores configurations from scratch: ``swap_deltas`` builds
    the ``(n, n)`` matrix of candidate permutations and sorts every triangle
    row of every candidate, ``apply_swap`` re-evaluates the full cost, and
    ``variable_errors`` rescans the triangle.  Kept verbatim as the reference
    the incremental path is validated against (bit-exact equivalence) and
    benchmarked against (``bench_incremental_vs_reference``); use
    :class:`CostasProblem` for anything performance-sensitive.
    """

    def __init__(
        self,
        order: int,
        *,
        err_weight: str = "quadratic",
        use_chang: bool = True,
        dedicated_reset: bool = True,
        reset_constants: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(
            order,
            err_weight=err_weight,
            use_chang=use_chang,
            dedicated_reset=dedicated_reset,
            reset_constants=reset_constants,
            name="costas-reference",
        )
        self.set_configuration(np.arange(order, dtype=np.int64))

    # ------------------------------------------------------------------- state
    def set_configuration(self, perm: Sequence[int] | np.ndarray) -> None:
        self._perm = self._validated(perm)
        self._cost = self._full_cost(self._perm)

    # -------------------------------------------------------------------- cost
    def cost(self) -> int:
        return int(self._cost)

    def check_consistency(self) -> None:
        recomputed = self._full_cost(self._perm)
        if recomputed != self._cost:
            raise AssertionError(
                f"cached cost {self._cost} != recomputed cost {recomputed}"
            )
        if self._cost == 0 and not is_costas(self._perm):
            raise AssertionError(
                "model reports cost 0 but the configuration is not a Costas array"
            )

    # ------------------------------------------------------------------ errors
    def variable_errors(self) -> np.ndarray:
        """Project triangle errors onto columns by rescanning every row."""
        p = self._perm
        n = self.size
        errs = np.zeros(n, dtype=np.int64)
        for d in range(1, self._max_d + 1):
            row = p[d:] - p[:-d]
            if row.size <= 1:
                continue
            _, first_idx = np.unique(row, return_index=True)
            mask = np.ones(row.size, dtype=bool)
            mask[first_idx] = False
            if not mask.any():
                continue
            repeats = np.flatnonzero(mask)
            w = int(self._weights[d])
            np.add.at(errs, repeats, w)
            np.add.at(errs, repeats + d, w)
        return errs

    # ------------------------------------------------------------------- moves
    def swap_delta(self, i: int, j: int) -> int:
        if i == j:
            return 0
        p = self._perm.copy()
        p[i], p[j] = p[j], p[i]
        return self._full_cost(p) - self._cost

    def apply_swap(self, i: int, j: int, delta: Optional[int] = None) -> int:
        # Reference path: ``delta`` is deliberately ignored and re-derived.
        if i != j:
            delta = self.swap_delta(i, j)
            self._perm[i], self._perm[j] = self._perm[j], self._perm[i]
            self._cost += delta
        return int(self._cost)

    def swap_deltas(self, i: int) -> np.ndarray:
        """Full-recompute evaluation of every swap involving column *i*.

        Builds the ``(n, n)`` matrix whose row ``j`` is the permutation with
        columns ``i`` and ``j`` swapped, then scores all rows of every triangle
        distance at once (sort + adjacent-equality count).
        """
        p = self._perm
        n = self.size
        candidates = np.broadcast_to(p, (n, n)).copy()
        rows = np.arange(n)
        candidates[rows, i] = p[rows]
        candidates[rows, rows] = p[i]

        costs = np.zeros(n, dtype=np.int64)
        for d in range(1, self._max_d + 1):
            diffs = candidates[:, d:] - candidates[:, :-d]
            if diffs.shape[1] <= 1:
                continue
            diffs = np.sort(diffs, axis=1)
            dups = np.count_nonzero(diffs[:, 1:] == diffs[:, :-1], axis=1)
            costs += self._weights[d] * dups

        deltas = costs - self._cost
        deltas[i] = _INT64_MAX
        return deltas


def basic_costas_problem(order: int) -> CostasProblem:
    """The paper's *basic* model: ``ERR(d)=1``, full triangle, generic reset."""
    return CostasProblem(
        order, err_weight="constant", use_chang=False, dedicated_reset=False
    )


def optimized_costas_problem(order: int) -> CostasProblem:
    """The paper's fully optimised model (the defaults of :class:`CostasProblem`)."""
    return CostasProblem(
        order, err_weight="quadratic", use_chang=True, dedicated_reset=True
    )
