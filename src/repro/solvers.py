"""String-keyed solver registry and portfolio specs (`repro.solvers`).

Every solver in the repository — the Adaptive Search engine and the four
baselines — satisfies the :class:`~repro.core.strategy.SearchStrategy`
protocol, so any layer that can name a solver can run it.  This module is the
naming layer:

* :func:`get_solver` / :func:`list_solvers` — the registry proper.  Each
  entry carries the solver class, its parameter dataclass and a tuned-default
  hook, so callers resolve parameters from plain dicts (the form they arrive
  in over HTTP or a job queue) without knowing the solver.
* :class:`SolverSpec` — the serialisable "which solver, with which
  parameters" value that crosses every process/HTTP boundary.  Specs are
  plain data: ``{"name": "tabu", "params": {"tenure": 8}}``.
* :func:`resolve_portfolio` — turns a user-facing solver selection into a
  list of specs.  A selection may be a single name (``"tabu"``), an inline
  portfolio (``"adaptive+tabu"`` — members assigned round-robin across
  walks), a registered portfolio name (``"mixed"``), a spec dict, or a list
  of any of those.
* :func:`build_solver` / :func:`run_spec` — instantiate and execute a spec
  against a problem with the uniform run-control hooks.

The registry makes heterogeneous *portfolio parallelism* possible: the
multi-walk driver and the service assign one spec per walk, first solution
wins, which is the paper's first-past-the-post termination applied across
different strategies instead of only across seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.baselines.cp_solver import CPBacktrackingSolver, CPParameters
from repro.baselines.dialectic import DialecticSearch, DialecticSearchParameters
from repro.baselines.random_restart import (
    RandomRestartHillClimbing,
    RandomRestartParameters,
)
from repro.baselines.tabu import TabuSearch, TabuSearchParameters
from repro.core.cwalk import CompiledAdaptiveSearch
from repro.core.engine import AdaptiveSearch
from repro.core.params import ASParameters
from repro.core.problem import PermutationProblem
from repro.core.result import SolveResult
from repro.exceptions import SolverError

__all__ = [
    "SolverInfo",
    "SolverSpec",
    "build_solver",
    "canonical_portfolio",
    "get_solver",
    "list_portfolios",
    "list_solvers",
    "portfolio_label",
    "register_portfolio",
    "register_solver",
    "resolve_portfolio",
    "resolve_spec",
    "run_spec",
    "solver_names",
]

#: Spec-ish values accepted anywhere a solver can be chosen.
SpecLike = Union[None, str, Mapping[str, Any], "SolverSpec"]


@dataclass(frozen=True)
class SolverInfo:
    """One registry entry: everything needed to build and describe a solver."""

    #: Canonical registry key (what clients send).
    name: str
    #: Solver class; ``factory(params)`` must build a ready strategy object.
    factory: Callable[[Optional[Any]], Any]
    #: Parameter dataclass resolved from plain dicts.
    params_cls: type
    #: One-line human description for ``repro solvers``.
    summary: str
    #: Alternative names accepted by :func:`get_solver`.
    aliases: Tuple[str, ...] = ()
    #: The ``SolveResult.solver`` string this strategy reports.
    result_name: str = ""
    #: Problem kinds the solver accepts ("permutation" = any
    #: :class:`PermutationProblem`; "costas" = Costas instances only).
    problem_kinds: Tuple[str, ...] = ("permutation",)
    #: Optional tuned defaults: ``default_params(kind, order)`` returns a
    #: params instance (or ``None`` to fall back to ``params_cls()``).
    default_params: Optional[Callable[[str, int], Any]] = None

    def make(self, params: Optional[Any] = None) -> Any:
        """Instantiate the solver with *params* (``None`` = class defaults)."""
        return self.factory(params)

    def param_defaults(self) -> Dict[str, Any]:
        """The parameter dataclass defaults as a plain dict (for ``--json``)."""
        instance = self.params_cls()
        return {f.name: getattr(instance, f.name) for f in fields(self.params_cls)}


def _freeze(value: Any) -> Any:
    """Recursively convert *value* into a hashable equivalent."""
    if isinstance(value, Mapping):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class SolverSpec:
    """A serialisable solver selection: registry name plus parameter overrides."""

    name: str
    params: Optional[Mapping[str, Any]] = field(default=None)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form (what crosses pickling/JSON boundaries)."""
        return {"name": self.name, "params": dict(self.params) if self.params else None}

    def canonical(self) -> Tuple[Any, ...]:
        """Hashable identity used in coalescing keys and caches.

        Parameter values are frozen recursively, so a spec whose params hold
        lists (e.g. straight from JSON) still yields a usable dict key.
        """
        if not self.params:
            return (self.name,)
        return (self.name, tuple(sorted((k, _freeze(v)) for k, v in self.params.items())))


_REGISTRY: Dict[str, SolverInfo] = {}
_ALIASES: Dict[str, str] = {}
_PORTFOLIOS: Dict[str, Tuple[str, ...]] = {}


def register_solver(info: SolverInfo) -> SolverInfo:
    """Add *info* to the registry (canonical name and aliases must be free)."""
    for key in (info.name, *info.aliases):
        if key in _REGISTRY or key in _ALIASES:
            raise SolverError(f"solver name {key!r} is already registered")
    _REGISTRY[info.name] = info
    for alias in info.aliases:
        _ALIASES[alias] = info.name
    return info


def register_portfolio(name: str, members: Sequence[str]) -> None:
    """Register a named portfolio (a reusable list of solver names)."""
    if name in _REGISTRY or name in _ALIASES:
        raise SolverError(f"portfolio name {name!r} collides with a solver name")
    resolved = tuple(get_solver(member).name for member in members)
    if not resolved:
        raise SolverError("a portfolio needs at least one member")
    _PORTFOLIOS[name] = resolved


def get_solver(name: str) -> SolverInfo:
    """Look a solver up by canonical name or alias; raise :class:`SolverError`."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise SolverError(
            f"unknown solver {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def list_solvers() -> List[SolverInfo]:
    """Every registered solver, sorted by canonical name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def solver_names() -> List[str]:
    """Sorted canonical registry keys."""
    return sorted(_REGISTRY)


def list_portfolios() -> Dict[str, Tuple[str, ...]]:
    """Registered named portfolios (name -> member solver names)."""
    return dict(_PORTFOLIOS)


# ------------------------------------------------------------------- resolution
def _resolve_params(info: "SolverInfo", params: Optional[Mapping[str, Any]]) -> Any:
    """Build ``info``'s parameter dataclass from a plain dict, or fail loudly."""
    try:
        return info.params_cls(**dict(params or {}))
    except (TypeError, ValueError) as exc:
        raise SolverError(
            f"invalid parameters for solver {info.name!r}: {exc}"
        ) from exc


def resolve_spec(spec: SpecLike) -> SolverSpec:
    """Normalise a single solver selection into a :class:`SolverSpec`.

    Accepts ``None`` (the default solver), a name/alias string, a
    ``{"name": ..., "params": {...}}`` mapping or an existing spec.  The name
    **and parameters** are validated against the registry here, so a bad
    request fails with :class:`SolverError` at the resolution boundary (an
    HTTP 400) instead of deep inside a worker or a queue key.
    """
    if spec is None:
        return SolverSpec("adaptive")
    if isinstance(spec, SolverSpec):
        info = get_solver(spec.name)
        if spec.params:
            _resolve_params(info, spec.params)
        return SolverSpec(info.name, spec.params or None)
    if isinstance(spec, str):
        return SolverSpec(get_solver(spec).name)
    if isinstance(spec, Mapping):
        if "name" not in spec:
            raise SolverError(f"solver spec {spec!r} lacks a 'name' field")
        params = spec.get("params")
        if params is not None and not isinstance(params, Mapping):
            raise SolverError(f"solver params must be a mapping, got {params!r}")
        info = get_solver(str(spec["name"]))
        if params:
            _resolve_params(info, params)
        return SolverSpec(info.name, dict(params) if params else None)
    raise SolverError(f"cannot interpret {spec!r} as a solver spec")


def resolve_portfolio(spec: SpecLike | Sequence[SpecLike]) -> List[SolverSpec]:
    """Normalise a solver selection into the list of specs of a portfolio.

    ``None`` or a single spec yield a one-element list; ``"a+b"`` strings and
    registered portfolio names expand to their members; lists resolve
    element-wise.  Walks are assigned specs round-robin by the callers.
    """
    if spec is None:
        return [resolve_spec(None)]
    if isinstance(spec, str):
        key = spec.strip().lower()
        if key in _PORTFOLIOS:
            return [SolverSpec(name) for name in _PORTFOLIOS[key]]
        if "+" in key:
            members = [part.strip() for part in key.split("+") if part.strip()]
            if not members:
                raise SolverError(f"empty portfolio spec {spec!r}")
            return [resolve_spec(member) for member in members]
        return [resolve_spec(key)]
    if isinstance(spec, (SolverSpec, Mapping)):
        return [resolve_spec(spec)]
    if isinstance(spec, Sequence):
        if not spec:
            raise SolverError("a portfolio needs at least one member")
        return [resolve_spec(member) for member in spec]
    raise SolverError(f"cannot interpret {spec!r} as a solver portfolio")


def canonical_portfolio(spec: SpecLike | Sequence[SpecLike]) -> Tuple[Tuple[Any, ...], ...]:
    """Hashable identity of a portfolio selection (for coalescing keys)."""
    return tuple(member.canonical() for member in resolve_portfolio(spec))


def portfolio_label(specs: Sequence[SolverSpec]) -> str:
    """Human/metric label of a portfolio: ``"adaptive+tabu"``."""
    return "+".join(member.name for member in specs)


# ------------------------------------------------------------------ execution
def build_solver(
    spec: SpecLike,
    *,
    problem_kind: str = "",
    order: Optional[int] = None,
    as_params: Optional[ASParameters] = None,
) -> Tuple[Any, SolverInfo]:
    """Instantiate the solver selected by *spec* with resolved parameters.

    Parameter resolution order:

    1. explicit ``spec.params`` — validated against the solver's parameter
       dataclass (unknown or invalid fields raise :class:`SolverError`);
    2. ``as_params`` — a caller-supplied :class:`ASParameters` honoured by the
       adaptive engine only (the multi-walk driver's legacy ``params=``);
    3. the registry's tuned defaults for ``(problem_kind, order)`` when known;
    4. the parameter dataclass defaults.
    """
    resolved = resolve_spec(spec)
    info = get_solver(resolved.name)
    params: Optional[Any] = None
    if resolved.params:
        params = _resolve_params(info, resolved.params)
    elif info.name in ("adaptive", "compiled") and as_params is not None:
        params = as_params
    elif info.default_params is not None and order is not None:
        params = info.default_params(problem_kind, order)
    return info.make(params), info


def run_spec(
    spec: SpecLike,
    problem: PermutationProblem,
    seed: Any = None,
    *,
    problem_kind: str = "",
    stop_check: Optional[Callable[[], bool]] = None,
    callbacks: Optional[Any] = None,
    max_time: Optional[float] = None,
    as_params: Optional[ASParameters] = None,
    population: int = 1,
) -> SolveResult:
    """Build the solver for *spec* and run it on *problem* in one call.

    ``population > 1`` asks for a vectorised in-process population: when the
    resolved solver implements ``solve_population`` (the compiled walk
    engine), one call advances *population* independent walks in a single
    kernel batch and the best walk's result is returned, with the siblings'
    aggregate iteration count in ``extra["population_iterations"]``.  Solvers
    without population support run a single walk — population is a
    parallelism knob, not a solver parameter, so it degrades rather than
    erroring.
    """
    solver, _ = build_solver(
        spec, problem_kind=problem_kind, order=problem.size, as_params=as_params
    )
    if population > 1 and hasattr(solver, "solve_population"):
        results = solver.solve_population(
            problem,
            seed=seed,
            population=population,
            stop_check=stop_check,
            callbacks=callbacks,
            max_time=max_time,
        )
        best = SolveResult.best_of(results)
        best.extra = dict(best.extra)
        best.extra["population_iterations"] = sum(r.iterations for r in results)
        return best
    return solver.solve(
        problem,
        seed=seed,
        stop_check=stop_check,
        callbacks=callbacks,
        max_time=max_time,
    )


# ------------------------------------------------------------- built-in solvers
def _queens_defaults(order: int) -> ASParameters:
    """Tuned Adaptive Search table for N-Queens.

    Queens is a min-conflict showcase: plenty of variables are wrong at once,
    so a higher reset threshold with a larger reset fraction beats the
    one-culprit Costas policy, and short tabu tenures keep the walk moving.
    """
    return ASParameters.for_problem_size(
        max(2, order),
        tabu_tenure=max(2, order // 16),
        reset_limit=max(2, round(order * 0.1)),
        reset_percentage=0.15,
        plateau_probability=0.5,
        local_min_accept_probability=0.0,
    )


def _all_interval_defaults(order: int) -> ASParameters:
    """Tuned Adaptive Search table for the All-Interval Series.

    All-Interval is plateau-heavy with deceptive local minima: longer tabu
    tenures, a single-culprit reset trigger and a 50% chance of escaping a
    local minimum uphill (instead of freezing the culprit) measured ~2.5x
    fewer iterations than the generic table at n=12 on a 12-seed sweep.
    """
    return ASParameters.for_problem_size(
        max(2, order),
        tabu_tenure=max(2, order // 4),
        reset_limit=1,
        reset_percentage=0.1,
        plateau_probability=0.9,
        local_min_accept_probability=0.5,
    )


def _magic_square_defaults(order: int) -> ASParameters:
    """Tuned Adaptive Search table for Magic Square.

    ``order`` is the number of variables, i.e. ``n**2`` for an ``n x n``
    square.  Plateau-following is the documented refinement for Magic
    Square-like problems (see :class:`ASParameters`); a short tenure with an
    occasional uphill escape halved the 5x5 iteration count versus the
    generic table on an 8-seed sweep.
    """
    return ASParameters.for_problem_size(
        max(2, order),
        tabu_tenure=2,
        reset_limit=max(2, order // 12),
        reset_percentage=0.1,
        plateau_probability=0.9,
        local_min_accept_probability=0.1,
    )


#: Per-family tuned Adaptive Search tables, resolved by the registry's
#: tuned-default hook when a request does not override parameters.
_ADAPTIVE_FAMILY_DEFAULTS: Dict[str, Callable[[int], ASParameters]] = {
    "queens": _queens_defaults,
    "all-interval": _all_interval_defaults,
    "magic-square": _magic_square_defaults,
}


def _adaptive_defaults(kind: str, order: int) -> ASParameters:
    if kind == "costas" and order >= 3:
        return ASParameters.for_costas(order)
    family_table = _ADAPTIVE_FAMILY_DEFAULTS.get(kind)
    if family_table is not None:
        return family_table(order)
    return ASParameters.for_problem_size(max(2, order))


register_solver(
    SolverInfo(
        name="adaptive",
        factory=lambda params: AdaptiveSearch(params=params),
        params_cls=ASParameters,
        summary="Adaptive Search (the paper's engine): error-guided min-conflict "
        "with tabu marking, resets and restarts",
        aliases=("adaptive-search", "as"),
        result_name="adaptive-search",
        problem_kinds=("permutation",),
        default_params=_adaptive_defaults,
    )
)

register_solver(
    SolverInfo(
        name="compiled",
        factory=lambda params: CompiledAdaptiveSearch(params=params),
        params_cls=ASParameters,
        summary="Adaptive Search with the whole inner loop compiled to C "
        "(batched multi-walk populations; NumPy-engine fallback when no "
        "C toolchain or for non-compiled families)",
        aliases=("compiled-adaptive-search", "cwalk"),
        result_name="compiled-adaptive-search",
        problem_kinds=("permutation",),
        default_params=_adaptive_defaults,
    )
)

register_solver(
    SolverInfo(
        name="tabu",
        factory=lambda params: TabuSearch(params=params),
        params_cls=TabuSearchParameters,
        summary="Best-improvement tabu search over the full swap neighbourhood "
        "with aspiration and stagnation restarts",
        aliases=("tabu-search",),
        result_name="tabu-search",
        problem_kinds=("permutation",),
    )
)

register_solver(
    SolverInfo(
        name="random-restart",
        factory=lambda params: RandomRestartHillClimbing(params=params),
        params_cls=RandomRestartParameters,
        summary="Best-improvement hill climbing restarted from scratch at every "
        "local minimum (Rickard & Healy's 'too simple' policy)",
        aliases=("random-restart-hill-climbing", "rr", "hill-climbing"),
        result_name="random-restart-hill-climbing",
        problem_kinds=("permutation",),
    )
)

register_solver(
    SolverInfo(
        name="dialectic",
        factory=lambda params: DialecticSearch(params=params),
        params_cls=DialecticSearchParameters,
        summary="Dialectic Search (Kadioglu & Sellmann): thesis/antithesis/"
        "synthesis walks with greedy exploitation",
        aliases=("dialectic-search", "ds"),
        result_name="dialectic-search",
        problem_kinds=("permutation",),
    )
)

register_solver(
    SolverInfo(
        name="cp",
        factory=lambda params: CPBacktrackingSolver(params=params),
        params_cls=CPParameters,
        summary="Complete backtracking + forward checking on the Costas "
        "difference constraints (the paper's CP comparison)",
        aliases=("cp-backtracking", "cp-solver"),
        result_name="cp-backtracking",
        problem_kinds=("costas",),
    )
)

#: Built-in named portfolios.  "mixed" is the heterogeneous default used by
#: the benchmarks: AS walks carry the solving load while tabu/dialectic walks
#: diversify the race (first past the post wins).
register_portfolio("mixed", ("adaptive", "tabu", "dialectic"))
register_portfolio("local-search", ("adaptive", "tabu", "dialectic", "random-restart"))
