"""repro — reproduction of *Parallel Local Search for the Costas Array Problem*.

Diaz, Richoux, Caniou, Codognet & Abreu (IPPS 2012) model the Costas Array
Problem for the Adaptive Search constraint-based local search method, tune the
model (weighted error function, Chang half-triangle, dedicated reset), and
parallelise the solver as independent multi-walks with nearly linear speed-ups
up to 8,192 cores.  This package rebuilds that whole stack in Python:

* :mod:`repro.costas` — the Costas array domain (validation, difference
  triangle, algebraic constructions, enumeration, symmetries, radar ambiguity);
* :mod:`repro.core` — the Adaptive Search engine and its problem interface;
* :mod:`repro.models` — AS models of the CAP and of the related classic CSPs;
* :mod:`repro.baselines` — Dialectic Search, tabu search, restart hill
  climbing and a complete CP solver for the paper's comparisons;
* :mod:`repro.solvers` — the string-keyed solver registry: every solver
  above behind one strategy protocol, addressable by name from the CLI, the
  multi-walk driver and the service, with heterogeneous portfolio specs
  (``"adaptive+tabu"``) raced first-past-the-post;
* :mod:`repro.parallel` — independent multi-walk parallelism: real
  ``multiprocessing`` execution, a simulated message-passing layer, and a
  virtual-cluster performance model of the paper's machines;
* :mod:`repro.analysis` — run statistics, speed-ups and time-to-target fits;
* :mod:`repro.experiments` — one driver per table and figure of the paper;
* :mod:`repro.service` — solver-as-a-service on top of all of it: a
  persistent symmetry-keyed solution store, a coalescing request scheduler,
  a long-lived worker pool and a stdlib HTTP API (``repro serve``).

Quickstart
----------
>>> from repro import solve_costas
>>> result = solve_costas(12, seed=1)
>>> result.solved
True
>>> result.as_costas_array().order
12
"""

from __future__ import annotations

from typing import Optional

from repro.core import ASParameters, AdaptiveSearch, SolveResult, solve
from repro.core.rng import SeedLike
from repro.models import CostasProblem

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ASParameters",
    "AdaptiveSearch",
    "SolveResult",
    "solve",
    "CostasProblem",
    "solve_costas",
    "parallel_solve_costas",
]


def solve_costas(
    order: int,
    seed: SeedLike = None,
    *,
    params: Optional[ASParameters] = None,
    **model_options,
) -> "CostasSolveResult":
    """Solve the Costas Array Problem of the given *order* with Adaptive Search.

    This is the one-call entry point used by the quickstart example: it builds
    the optimised Costas model (the paper's Section IV-B configuration), picks
    the tuned engine parameters for the order, runs the sequential engine and
    returns the result wrapped with a convenience accessor for the validated
    :class:`~repro.costas.array.CostasArray`.

    Parameters
    ----------
    order:
        Costas array order ``n >= 3``.
    seed:
        Seed or generator for reproducibility.
    params:
        Optional engine-parameter override.
    model_options:
        Forwarded to :class:`repro.models.CostasProblem` (e.g.
        ``err_weight="constant"``, ``use_chang=False``).
    """
    problem = CostasProblem(order, **model_options)
    parameters = params if params is not None else ASParameters.for_costas(order)
    result = solve(problem, seed, params=parameters)
    return CostasSolveResult(result)


def parallel_solve_costas(
    order: int,
    *,
    n_workers: Optional[int] = None,
    params: Optional[ASParameters] = None,
    solver=None,
    seed_root: Optional[int] = None,
    max_time: Optional[float] = None,
    population: int = 1,
):
    """Solve the CAP with the paper's independent multi-walk scheme on this machine.

    One worker process per walk; the first solution stops everyone.  Returns a
    :class:`repro.parallel.multiwalk.MultiWalkResult`.  ``solver`` selects the
    strategy (or a heterogeneous portfolio such as ``"adaptive+tabu"``) from
    the :mod:`repro.solvers` registry; the default is pure Adaptive Search.
    ``population`` additionally batches that many vectorised compiled-engine
    walks inside each worker process (for strategies that support it).
    """
    from repro.experiments.base import costas_factory
    from repro.parallel.multiwalk import MultiWalkSolver

    parameters = params if params is not None else ASParameters.for_costas(order)
    multiwalk = MultiWalkSolver(
        costas_factory(order),
        parameters,
        solver=solver,
        n_workers=n_workers,
        seed_root=seed_root,
        population=population,
    )
    return multiwalk.solve(max_time=max_time)


class CostasSolveResult:
    """A :class:`~repro.core.result.SolveResult` with Costas-specific accessors."""

    def __init__(self, result: SolveResult) -> None:
        self.result = result

    def __getattr__(self, name):
        return getattr(self.result, name)

    def as_costas_array(self):
        """The solution as a validated :class:`repro.costas.array.CostasArray`.

        Raises ``ValueError`` if the run did not actually find a solution.
        """
        from repro.costas.array import CostasArray

        if not self.result.solved:
            raise ValueError("the run did not find a Costas array")
        return CostasArray.from_permutation(self.result.configuration)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CostasSolveResult({self.result.summary()})"
