"""Seed generation for massively parallel independent walks.

Section III-B.3 of the paper: when hundreds or thousands of stochastic
processes run simultaneously, the per-process seeds must themselves be well
distributed; the authors generate them with a pseudo-random number generator
based on a *linear chaotic map* (in the spirit of the Trident generator).

:class:`ChaoticSeedSequence` reproduces that idea: a piecewise-linear chaotic
map (a skew tent map) is iterated in double precision, and each iterate is
whitened into a 63-bit integer seed.  The sequence is deterministic given its
key, collision-free for any practical number of walks (collisions are actively
rejected), and decorrelated enough that adjacent walks do not shadow each
other — properties the test-suite checks statistically.

Two simpler strategies are provided for comparison and for the ablation
benchmark on seeding:

* :func:`sequential_seeds` — the naive ``base, base+1, base+2, …`` scheme;
* :func:`spawned_seeds` — NumPy ``SeedSequence.spawn`` (the modern best
  practice, used by default by the multiprocessing driver).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

__all__ = ["ChaoticSeedSequence", "sequential_seeds", "spawned_seeds"]

_MASK63 = (1 << 63) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _splitmix64(x: int) -> int:
    """One round of the SplitMix64 mixing function (whitening step)."""
    x = (x + _GOLDEN) & 0xFFFFFFFFFFFFFFFF
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return (z ^ (z >> 31)) & 0xFFFFFFFFFFFFFFFF


class ChaoticSeedSequence:
    """Generate decorrelated integer seeds through a piecewise-linear chaotic map.

    The map is the skew tent map ``x -> x/a`` if ``x < a`` else
    ``(1 - x)/(1 - a)`` on ``(0, 1)``, which is chaotic for any
    ``a in (0, 1)``; the paper's reference (Trident) builds its generator on
    coupled maps of this family.  Each iterate is combined with the iteration
    counter and whitened with SplitMix64 so that nearby trajectories produce
    unrelated 63-bit seeds.

    Parameters
    ----------
    key:
        Master key (any non-negative integer).  Two different keys give
        unrelated seed streams.
    a:
        Breakpoint of the tent map, strictly between 0 and 1 and not equal to
        0.5 (0.5 would make the map conjugate to the dyadic shift, which loses
        precision quickly in floating point).
    """

    def __init__(self, key: int = 0, *, a: float = 0.49997) -> None:
        if key < 0:
            raise ValueError(f"key must be non-negative, got {key}")
        if not 0.0 < a < 1.0 or a == 0.5:
            raise ValueError(f"map parameter 'a' must be in (0,1) and != 0.5, got {a}")
        self._key = int(key)
        self._a = float(a)
        # Derive the initial state from the key, strictly inside (0, 1).
        mixed = _splitmix64(self._key ^ _GOLDEN)
        self._x = (mixed / 2**64) * 0.999998 + 0.000001
        self._counter = 0
        self._emitted: set[int] = set()

    @property
    def key(self) -> int:
        """Master key this sequence was built from."""
        return self._key

    def _step(self) -> float:
        x, a = self._x, self._a
        x = x / a if x < a else (1.0 - x) / (1.0 - a)
        # Keep the trajectory away from the absorbing endpoints.  The re-seed
        # must mix the key, not just the counter: two sequences with
        # different keys that escape at the same counter would otherwise
        # collapse onto identical trajectories from that point on.
        if x <= 1e-12 or x >= 1.0 - 1e-12:
            reseed = _splitmix64(self._counter ^ _splitmix64(self._key))
            x = ((reseed / 2**64) * 0.999998) + 0.000001
        self._x = x
        return x

    def next_seed(self) -> int:
        """Produce the next 63-bit seed (guaranteed distinct from earlier ones)."""
        while True:
            self._counter += 1
            x = self._step()
            raw = int(x * 2**53) ^ (self._counter << 17) ^ self._key
            seed = _splitmix64(raw) & _MASK63
            if seed not in self._emitted:
                self._emitted.add(seed)
                return seed

    def seeds(self, count: int) -> List[int]:
        """Produce *count* distinct seeds."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.next_seed() for _ in range(count)]

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.next_seed()


def sequential_seeds(count: int, base: int = 0) -> List[int]:
    """The naive seeding scheme: ``base, base + 1, …`` (for ablation only).

    Consecutive integer seeds are perfectly valid for PCG64, but the point of
    the ablation is to compare seeding *strategies*, so the naive scheme is
    kept exactly as naive as it sounds.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [base + i for i in range(count)]


def spawned_seeds(count: int, root: Optional[int] = None) -> List[int]:
    """Independent 63-bit seeds derived via ``numpy.random.SeedSequence.spawn``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    ss = np.random.SeedSequence(root)
    return [
        int(child.generate_state(1, dtype=np.uint64)[0] & _MASK63)
        for child in ss.spawn(count)
    ]
