"""Virtual-cluster performance model for large-scale multi-walk runs.

The paper evaluates independent multi-walk Adaptive Search on three machines
(HA8000, Grid'5000 Suno/Helios, Blue Gene/P JUGENE) with up to 8,192 cores.
We obviously cannot rent those machines from a test-suite, but the independent
multi-walk scheme has a property that makes faithful simulation possible: the
walks do not interact.  A ``k``-core run is therefore fully determined by the
``k`` i.i.d. sequential runtimes of its walks — its wall-clock time is the
minimum of those runtimes plus the termination-polling latency (at most one
``check_period`` slice) — and simulating a parallel run only requires sampling
``k`` sequential runtimes.

:class:`VirtualCluster` supports three sampling strategies, in decreasing
order of fidelity and cost:

``direct``
    Actually run ``k`` fresh sequential walks (exact; used for small ``k`` and
    by the tests).
``bootstrap``
    Resample ``k`` runtimes (with replacement) from a pre-collected pool of
    sequential runs of the same instance (the :class:`~repro.parallel.runner.RunPool`).
    This is statistically exact up to pool-sampling noise and is how the
    benchmark harness reaches 256–8,192 cores.
``exponential``
    Sample from a shifted-exponential fit of the pool (the distribution family
    the paper's Figure 4 shows to match CAP runtimes).  Used for analytic
    speed-up predictions and cross-checking the bootstrap.

Machine heterogeneity is modelled by :class:`MachineModel`: every machine has
an *iteration rate factor* relative to the reference host, derived from the
clock ratio of its CPU (e.g. JUGENE's 850 MHz PowerPC vs the reference
3.2 GHz Xeon).  Simulated times are ``iterations / (host_rate * factor)``,
so they scale exactly like the paper's observation that JUGENE cores are
"significantly slower to solve a given problem".
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.engine import AdaptiveSearch
from repro.core.params import ASParameters
from repro.core.problem import PermutationProblem
from repro.exceptions import AnalysisError, ParallelExecutionError
from repro.core.rng import SeedLike, ensure_generator

__all__ = [
    "MachineModel",
    "WalkSample",
    "ParallelRunEstimate",
    "VirtualCluster",
    "HA8000",
    "SUNO",
    "HELIOS",
    "JUGENE",
    "LOCAL_HOST",
]


@dataclass(frozen=True)
class MachineModel:
    """A named machine with a per-core speed factor relative to the local host.

    ``clock_ghz`` is documentation (the paper's hardware description);
    ``speed_factor`` is what the simulation uses: a core of this machine
    executes ``speed_factor`` times as many engine iterations per second as a
    core of the machine the run pool was measured on.
    """

    name: str
    cores_per_node: int
    clock_ghz: float
    speed_factor: float = 1.0
    max_cores: Optional[int] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ValueError(f"speed_factor must be positive, got {self.speed_factor}")
        if self.cores_per_node < 1:
            raise ValueError(f"cores_per_node must be >= 1, got {self.cores_per_node}")

    def scaled(self, reference_clock_ghz: float) -> "MachineModel":
        """Return a copy whose ``speed_factor`` is the clock ratio to *reference*."""
        if reference_clock_ghz <= 0:
            raise ValueError("reference clock must be positive")
        return MachineModel(
            name=self.name,
            cores_per_node=self.cores_per_node,
            clock_ghz=self.clock_ghz,
            speed_factor=self.clock_ghz / reference_clock_ghz,
            max_cores=self.max_cores,
            description=self.description,
        )


#: The machines of Section V-A, with speed factors relative to the paper's
#: sequential reference host (3.2 GHz Xeon W5580).  A simple clock-ratio model
#: is deliberately used: the goal is the *shape* of the scaling curves, not
#: absolute times.
LOCAL_HOST = MachineModel(
    "local", cores_per_node=1, clock_ghz=3.2, speed_factor=1.0,
    description="Reference host the sequential run pools are measured on.",
)
HA8000 = MachineModel(
    "HA8000", cores_per_node=16, clock_ghz=2.3, speed_factor=2.3 / 3.2,
    max_cores=1024,
    description="Hitachi HA8000 (AMD Opteron 8356, 2.3 GHz), University of Tokyo.",
)
SUNO = MachineModel(
    "Suno", cores_per_node=8, clock_ghz=2.4, speed_factor=2.4 / 3.2,
    max_cores=360,
    description="Grid'5000 Sophia-Antipolis Suno cluster (Dell PowerEdge R410).",
)
HELIOS = MachineModel(
    "Helios", cores_per_node=4, clock_ghz=2.2, speed_factor=2.2 / 3.2,
    max_cores=224,
    description="Grid'5000 Sophia-Antipolis Helios cluster (Sun Fire X4100).",
)
JUGENE = MachineModel(
    "JUGENE", cores_per_node=4, clock_ghz=0.85, speed_factor=0.85 / 3.2,
    max_cores=294_912,
    description="IBM Blue Gene/P (PowerPC 450, 850 MHz), Julich Supercomputing Centre.",
)


@dataclass(frozen=True)
class WalkSample:
    """One sequential walk: how many engine iterations it needed, and whether it solved."""

    iterations: int
    solved: bool
    wall_time: float = 0.0
    seed: Optional[int] = None
    local_minima: int = 0


@dataclass
class ParallelRunEstimate:
    """Simulated outcome of one k-core multi-walk execution."""

    cores: int
    machine: str
    #: Iterations of the winning walk (or the budget when nothing solved).
    winning_iterations: int
    #: Simulated wall-clock seconds of the parallel run.
    wall_time: float
    solved: bool
    #: Sum of iterations executed by all cores until termination (total work).
    total_iterations: int
    #: Fraction of the bootstrap pool that was budget-censored (unsolved
    #: walks, which resampling necessarily skips).  A high value means the
    #: pool under-represents slow walks and the estimate is biased low;
    #: 0.0 for ``direct`` and ``exponential`` sampling.
    censored_fraction: float = 0.0


class VirtualCluster:
    """Simulate k-core independent multi-walk runs on a modelled machine.

    Parameters
    ----------
    machine:
        The machine model (speed factor, core limits).
    host_iteration_rate:
        Measured engine iterations per second of the *local* host for the
        instance being simulated (obtained from the run pool).  Combined with
        ``machine.speed_factor`` it converts iteration counts to simulated
        seconds.
    check_period:
        The termination-polling period (iterations between non-blocking
        probes); the loser cores run up to one extra period.
    """

    def __init__(
        self,
        machine: MachineModel,
        *,
        host_iteration_rate: float,
        check_period: int = 64,
    ) -> None:
        if host_iteration_rate <= 0:
            raise ParallelExecutionError(
                f"host_iteration_rate must be positive, got {host_iteration_rate}"
            )
        if check_period < 1:
            raise ParallelExecutionError(f"check_period must be >= 1, got {check_period}")
        self.machine = machine
        self.host_iteration_rate = float(host_iteration_rate)
        self.check_period = int(check_period)

    # ------------------------------------------------------------------ helpers
    @property
    def iterations_per_second(self) -> float:
        """Simulated iteration rate of one core of the modelled machine."""
        return self.host_iteration_rate * self.machine.speed_factor

    def seconds(self, iterations: float) -> float:
        """Convert an iteration count into simulated seconds on this machine."""
        return float(iterations) / self.iterations_per_second

    def _check_cores(self, cores: int) -> None:
        if cores < 1:
            raise ParallelExecutionError(f"core count must be >= 1, got {cores}")
        if self.machine.max_cores is not None and cores > self.machine.max_cores:
            raise ParallelExecutionError(
                f"{self.machine.name} has at most {self.machine.max_cores} cores, "
                f"{cores} requested"
            )

    # --------------------------------------------------------------- simulation
    #: Above this censored fraction a bootstrap pool is considered unusable
    #: without an explicit opt-in: the resampled times would mostly describe
    #: the lucky minority of walks that finished within budget.
    MAX_CENSORED_FRACTION = 0.5

    def simulate_run(
        self,
        samples: Sequence[WalkSample],
        cores: int,
        rng: SeedLike = None,
        *,
        sampling: str = "bootstrap",
        exponential_fit: Optional[tuple[float, float]] = None,
        allow_censored: bool = False,
    ) -> ParallelRunEstimate:
        """Simulate one k-core run by drawing k walks and applying the protocol.

        Parameters
        ----------
        samples:
            Pool of sequential walk samples of the instance (only used by
            ``bootstrap``; must be non-empty and contain at least one solved
            walk).
        cores:
            Number of cores (independent walks) of the simulated run.
        rng:
            Randomness for the resampling.
        sampling:
            ``"bootstrap"`` (resample the pool) or ``"exponential"`` (sample a
            shifted exponential; requires ``exponential_fit=(shift, scale)``
            in iteration units).
        allow_censored:
            Bootstrap resampling can only draw the *solved* walks, so a pool
            with many budget-censored (unsolved) samples biases
            time-to-solution low.  When more than
            :data:`MAX_CENSORED_FRACTION` of the pool is censored the run is
            refused with :class:`~repro.exceptions.AnalysisError` unless this
            flag is set, in which case a :class:`UserWarning` is emitted and
            the bias is surfaced on
            :attr:`ParallelRunEstimate.censored_fraction`.
        """
        self._check_cores(cores)
        generator = ensure_generator(rng)
        censored_fraction = 0.0

        if sampling == "bootstrap":
            if not samples:
                raise AnalysisError("bootstrap sampling requires a non-empty pool")
            solved_pool = np.array(
                [s.iterations for s in samples if s.solved], dtype=np.float64
            )
            if solved_pool.size == 0:
                raise AnalysisError("the run pool contains no solved walks")
            censored_fraction = 1.0 - solved_pool.size / len(samples)
            if censored_fraction > self.MAX_CENSORED_FRACTION:
                message = (
                    f"{censored_fraction:.0%} of the run pool is budget-censored "
                    "(unsolved); bootstrap estimates from the solved minority "
                    "are biased low"
                )
                if not allow_censored:
                    raise AnalysisError(
                        message + " — pass allow_censored=True to proceed anyway"
                    )
                warnings.warn(message, UserWarning, stacklevel=2)
            draws = generator.choice(solved_pool, size=cores, replace=True)
        elif sampling == "exponential":
            if exponential_fit is None:
                raise AnalysisError("exponential sampling requires exponential_fit=(shift, scale)")
            shift, scale = exponential_fit
            if scale <= 0:
                raise AnalysisError(f"exponential scale must be positive, got {scale}")
            draws = shift + generator.exponential(scale, size=cores)
            draws = np.maximum(draws, 1.0)
        else:
            raise AnalysisError(f"unknown sampling strategy {sampling!r}")

        winning = float(draws.min())
        # Losers stop at their first poll after the winner finishes (or earlier
        # if they would have finished on their own).
        next_poll = (np.floor(winning / self.check_period) + 1) * self.check_period
        executed = np.minimum(draws, next_poll)
        total = float(executed.sum())
        return ParallelRunEstimate(
            cores=cores,
            machine=self.machine.name,
            winning_iterations=int(round(winning)),
            wall_time=self.seconds(winning),
            solved=True,
            total_iterations=int(round(total)),
            censored_fraction=censored_fraction,
        )

    def simulate_many(
        self,
        samples: Sequence[WalkSample],
        cores: int,
        repetitions: int,
        rng: SeedLike = None,
        *,
        sampling: str = "bootstrap",
        exponential_fit: Optional[tuple[float, float]] = None,
        allow_censored: bool = False,
    ) -> List[ParallelRunEstimate]:
        """Simulate *repetitions* independent k-core runs (one table cell of the paper)."""
        if repetitions < 1:
            raise ParallelExecutionError(f"repetitions must be >= 1, got {repetitions}")
        generator = ensure_generator(rng)
        return [
            self.simulate_run(
                samples,
                cores,
                generator,
                sampling=sampling,
                exponential_fit=exponential_fit,
                allow_censored=allow_censored,
            )
            for _ in range(repetitions)
        ]

    def direct_run(
        self,
        problem_factory: Callable[[], PermutationProblem],
        params: ASParameters,
        cores: int,
        seeds: Sequence[int],
    ) -> ParallelRunEstimate:
        """Exact simulation: actually run *cores* fresh sequential walks.

        Only sensible for small core counts; the benchmark harness uses it to
        validate the bootstrap estimates on overlapping configurations.
        """
        self._check_cores(cores)
        if len(seeds) < cores:
            raise ParallelExecutionError(
                f"{len(seeds)} seeds provided for {cores} cores"
            )
        engine = AdaptiveSearch()
        iteration_counts: List[int] = []
        solved_any = False
        for seed in seeds[:cores]:
            problem = problem_factory()
            result = engine.solve(problem, seed=int(seed), params=params)
            iteration_counts.append(result.iterations)
            solved_any = solved_any or result.solved
        winning = min(iteration_counts)
        next_poll = (winning // self.check_period + 1) * self.check_period
        executed = [min(c, next_poll) for c in iteration_counts]
        return ParallelRunEstimate(
            cores=cores,
            machine=self.machine.name,
            winning_iterations=int(winning),
            wall_time=self.seconds(winning),
            solved=solved_any,
            total_iterations=int(sum(executed)),
        )
