"""Parallel independent multi-walk execution (Section V of the paper).

The paper's parallel scheme is deliberately simple — *independent multi-walk*
(multi-start): every core runs the same sequential Adaptive Search with a
different random seed, and the first core to find a solution broadcasts a
termination message that the others poll every ``c`` iterations.  There is no
other communication, which is why the approach scales to thousands of cores.

This package reproduces that scheme at three levels of fidelity:

* :class:`~repro.parallel.multiwalk.MultiWalkSolver` — **real parallelism** on
  the local machine using ``multiprocessing`` (one OS process per walk, an
  event for the termination broadcast).  This is the component a downstream
  user actually solves problems with; it is limited by the host's core count.
* :class:`~repro.parallel.mpi_sim.SimulatedCommunicator` and
  :class:`~repro.parallel.mpi_sim.SimulatedMultiWalk` — an **in-process
  simulation** of the message-passing implementation: ranks advance in slices
  of ``check_period`` iterations and exchange termination messages through
  mailboxes, mirroring the OpenMPI structure of the paper without requiring
  MPI.  Used for deterministic tests of the termination protocol and by the
  virtual cluster.
* :class:`~repro.parallel.cluster.VirtualCluster` — a **performance model**
  of the paper's machines (HA8000, Grid'5000 Suno/Helios, Blue Gene/P
  JUGENE).  It replays pools of measured sequential walks to predict the
  wall-clock time of a ``k``-core run (the minimum of ``k`` independent
  runtimes plus the termination-polling latency), which is how the repository
  regenerates Tables III–V and Figures 2–3 for core counts far beyond the
  host machine.

Seeding of the walks follows Section III-B.3 of the paper:
:class:`~repro.parallel.seeds.ChaoticSeedSequence` generates decorrelated
per-walk seeds through a piecewise-linear chaotic map.
"""

from repro.parallel.seeds import ChaoticSeedSequence, sequential_seeds, spawned_seeds
from repro.parallel.mpi_sim import SimulatedCommunicator, SimulatedMultiWalk
from repro.parallel.multiwalk import MultiWalkResult, MultiWalkSolver
from repro.parallel.cluster import (
    HA8000,
    HELIOS,
    JUGENE,
    LOCAL_HOST,
    SUNO,
    MachineModel,
    VirtualCluster,
    WalkSample,
)
from repro.parallel.runner import ExperimentRunner, RunPool

__all__ = [
    "ChaoticSeedSequence",
    "sequential_seeds",
    "spawned_seeds",
    "SimulatedCommunicator",
    "SimulatedMultiWalk",
    "MultiWalkSolver",
    "MultiWalkResult",
    "MachineModel",
    "VirtualCluster",
    "WalkSample",
    "HA8000",
    "SUNO",
    "HELIOS",
    "JUGENE",
    "LOCAL_HOST",
    "ExperimentRunner",
    "RunPool",
]
