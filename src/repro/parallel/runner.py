"""Experiment runner: collect sequential run pools and drive the virtual cluster.

The benchmark harness needs, for each instance, a pool of independent
sequential runs (the raw material of Tables I and of every simulated parallel
table).  Collecting such a pool is by far the most expensive part of the
reproduction, so :class:`RunPool` supports JSON round-tripping and the runner
caches pools in memory and optionally on disk under ``.repro_cache/``.

:class:`ExperimentRunner` then answers the questions the experiment drivers
ask: "give me the sequential summary of instance n" (Table I rows) and "give
me the avg/med/min/max simulated times of a k-core run on machine M"
(Tables III–V cells), reusing one pool per instance across all core counts and
machines, exactly like the paper reuses one implementation across testbeds.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.stats import RunSummary, summarize
from repro.core.engine import AdaptiveSearch
from repro.core.params import ASParameters
from repro.core.problem import PermutationProblem
from repro.core.result import SolveResult
from repro.exceptions import AnalysisError, ParallelExecutionError
from repro.parallel.cluster import MachineModel, ParallelRunEstimate, VirtualCluster, WalkSample
from repro.parallel.seeds import spawned_seeds
from repro.core.rng import ensure_generator

__all__ = ["RunPool", "ExperimentRunner"]


@dataclass
class RunPool:
    """A pool of independent sequential runs of one problem instance."""

    problem: str
    samples: List[WalkSample] = field(default_factory=list)
    #: Iterations per second measured while collecting the pool (host rate).
    host_iteration_rate: float = 0.0

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self.samples)

    @property
    def solved_samples(self) -> List[WalkSample]:
        """Samples whose walk found a solution."""
        return [s for s in self.samples if s.solved]

    def iterations(self, *, solved_only: bool = True) -> np.ndarray:
        """Iteration counts of the pool as an array."""
        source = self.solved_samples if solved_only else self.samples
        return np.array([s.iterations for s in source], dtype=np.float64)

    def wall_times(self, *, solved_only: bool = True) -> np.ndarray:
        """Measured wall-clock times of the pool as an array."""
        source = self.solved_samples if solved_only else self.samples
        return np.array([s.wall_time for s in source], dtype=np.float64)

    def summary(self, metric: str = "iterations") -> RunSummary:
        """Aggregate statistics of the solved samples (Table I style)."""
        if metric == "iterations":
            values = self.iterations()
        elif metric == "wall_time":
            values = self.wall_times()
        else:
            raise AnalysisError(f"unknown pool metric {metric!r}")
        return summarize(values)

    # -------------------------------------------------------------- persistence
    def to_dict(self) -> Dict:
        """JSON-friendly representation."""
        return {
            "problem": self.problem,
            "host_iteration_rate": self.host_iteration_rate,
            "samples": [
                {
                    "iterations": s.iterations,
                    "solved": s.solved,
                    "wall_time": s.wall_time,
                    "seed": s.seed,
                    "local_minima": s.local_minima,
                }
                for s in self.samples
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "RunPool":
        """Inverse of :meth:`to_dict`."""
        return cls(
            problem=data["problem"],
            host_iteration_rate=float(data.get("host_iteration_rate", 0.0)),
            samples=[
                WalkSample(
                    iterations=int(s["iterations"]),
                    solved=bool(s["solved"]),
                    wall_time=float(s.get("wall_time", 0.0)),
                    seed=s.get("seed"),
                    local_minima=int(s.get("local_minima", 0)),
                )
                for s in data.get("samples", [])
            ],
        )

    def save(self, path: Path | str) -> None:
        """Write the pool as JSON."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: Path | str) -> "RunPool":
        """Read a pool previously written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))


class ExperimentRunner:
    """Collects sequential run pools and simulates parallel executions from them.

    Parameters
    ----------
    cache_dir:
        Directory for on-disk pool caching (``None`` disables it).  Pools are
        keyed by the problem description, the engine parameters and the number
        of runs, so changing any of those re-collects.
    """

    def __init__(self, cache_dir: Optional[Path | str] = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._memory_cache: Dict[str, RunPool] = {}

    # ------------------------------------------------------------------- pools
    def _cache_key(self, problem: PermutationProblem, params: ASParameters, runs: int) -> str:
        # Must be stable across processes: ``hash(str)`` is salted per process
        # (PYTHONHASHSEED), which made on-disk pool caches unreachable on the
        # next run.  A truncated SHA-256 of the payload is deterministic.
        payload = f"{problem.describe()}|{params}|runs={runs}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def collect_pool(
        self,
        problem_factory: Callable[[], PermutationProblem],
        params: ASParameters,
        runs: int,
        *,
        seed_root: Optional[int] = 12345,
        use_cache: bool = True,
    ) -> RunPool:
        """Run *runs* independent sequential walks and return the pool.

        Seeds are spawned deterministically from ``seed_root`` so repeated
        collections (and cache misses after trivial code changes) stay
        reproducible.
        """
        if runs < 1:
            raise ParallelExecutionError(f"runs must be >= 1, got {runs}")
        sample_problem = problem_factory()
        key = self._cache_key(sample_problem, params, runs)
        if use_cache and key in self._memory_cache:
            return self._memory_cache[key]
        if use_cache and self.cache_dir is not None:
            path = self.cache_dir / f"pool-{key}.json"
            if path.exists():
                pool = RunPool.load(path)
                self._memory_cache[key] = pool
                return pool

        engine = AdaptiveSearch()
        seeds = spawned_seeds(runs, seed_root)
        samples: List[WalkSample] = []
        total_iterations = 0
        total_time = 0.0
        for seed in seeds:
            problem = problem_factory()
            result = engine.solve(problem, seed=seed, params=params)
            samples.append(
                WalkSample(
                    iterations=result.iterations,
                    solved=result.solved,
                    wall_time=result.wall_time,
                    seed=seed,
                    local_minima=result.local_minima,
                )
            )
            total_iterations += result.iterations
            total_time += result.wall_time
        rate = total_iterations / total_time if total_time > 0 else 1.0
        pool = RunPool(
            problem=sample_problem.describe(),
            samples=samples,
            host_iteration_rate=rate,
        )
        if use_cache:
            self._memory_cache[key] = pool
            if self.cache_dir is not None:
                pool.save(self.cache_dir / f"pool-{key}.json")
        return pool

    # -------------------------------------------------------------- simulation
    def simulate_parallel(
        self,
        pool: RunPool,
        machine: MachineModel,
        cores: int,
        repetitions: int,
        *,
        rng=None,
        check_period: int = 64,
        sampling: str = "auto",
    ) -> List[ParallelRunEstimate]:
        """Simulate *repetitions* independent k-core runs from a collected pool.

        ``sampling`` may be ``"bootstrap"``, ``"exponential"`` or ``"auto"``
        (the default): bootstrap resampling is statistically exact but cannot
        extrapolate below the smallest runtime in the pool, so ``"auto"``
        switches to the shifted-exponential model (the distribution family the
        paper's Figure 4 justifies) once the simulated core count exceeds half
        the pool size.
        """
        if not pool.solved_samples:
            raise AnalysisError(
                f"pool for {pool.problem} has no solved runs; cannot simulate"
            )
        if sampling == "auto":
            sampling = (
                "bootstrap" if cores <= max(1, len(pool.solved_samples) // 2) else "exponential"
            )
        cluster = VirtualCluster(
            machine,
            host_iteration_rate=max(pool.host_iteration_rate, 1e-9),
            check_period=check_period,
        )
        exponential_fit = None
        if sampling == "exponential":
            from repro.analysis.ttt import fit_shifted_exponential

            fit = fit_shifted_exponential(pool.iterations())
            exponential_fit = (fit.shift, fit.scale)
        return cluster.simulate_many(
            pool.solved_samples,
            cores,
            repetitions,
            ensure_generator(rng),
            sampling=sampling,
            exponential_fit=exponential_fit,
        )

    def parallel_time_summary(
        self,
        pool: RunPool,
        machine: MachineModel,
        cores: int,
        repetitions: int,
        *,
        rng=None,
        check_period: int = 64,
        sampling: str = "auto",
    ) -> RunSummary:
        """Avg/med/min/max simulated wall-clock time of k-core runs (one table cell)."""
        estimates = self.simulate_parallel(
            pool,
            machine,
            cores,
            repetitions,
            rng=rng,
            check_period=check_period,
            sampling=sampling,
        )
        return summarize([e.wall_time for e in estimates])

    def sequential_time_summary(
        self, pool: RunPool, machine: MachineModel
    ) -> RunSummary:
        """Avg/med/min/max sequential time of the pool scaled to *machine*'s speed."""
        if not pool.solved_samples:
            raise AnalysisError(f"pool for {pool.problem} has no solved runs")
        cluster = VirtualCluster(
            machine, host_iteration_rate=max(pool.host_iteration_rate, 1e-9)
        )
        times = [cluster.seconds(s.iterations) for s in pool.solved_samples]
        return summarize(times)
