"""In-process simulation of the paper's message-passing multi-walk scheme.

The reference implementation forks one sequential Adaptive Search per MPI rank
and lets the winner broadcast a termination message which the others poll with
non-blocking tests every ``c`` iterations (Section V-A).  MPI is not available
in this environment, so this module provides a faithful in-process stand-in:

* :class:`SimulatedCommunicator` — per-rank mailboxes with ``isend`` /
  ``iprobe`` / ``recv`` and a convenience ``broadcast_others``;
* :class:`SimulatedMultiWalk` — advances every rank's solver in slices of
  ``check_period`` iterations (round-robin co-routine scheduling), delivering
  termination messages between slices exactly where the real implementation
  polls for them.

Because every rank runs the *same* sequential algorithm it would run under
MPI, the number of iterations each rank executes before stopping — and hence
the simulated parallel wall-clock time — is exactly what an idealised
homogeneous cluster would produce.  The virtual-cluster performance model
(:mod:`repro.parallel.cluster`) builds on the iteration counts this simulation
produces; the real-parallelism path lives in :mod:`repro.parallel.multiwalk`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import AdaptiveSearch
from repro.core.params import ASParameters
from repro.core.problem import PermutationProblem
from repro.core.result import SolveResult
from repro.exceptions import ParallelExecutionError

__all__ = ["Message", "SimulatedCommunicator", "SimulatedMultiWalk", "SimulatedWalkOutcome"]


@dataclass(frozen=True)
class Message:
    """A point-to-point message between simulated ranks."""

    source: int
    dest: int
    tag: str
    payload: Any = None


class SimulatedCommunicator:
    """Mailbox-based communicator with the subset of MPI semantics the paper uses."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ParallelExecutionError(f"communicator size must be >= 1, got {size}")
        self._size = size
        self._mailboxes: List[Deque[Message]] = [deque() for _ in range(size)]
        self.sent_messages = 0

    @property
    def size(self) -> int:
        """Number of ranks."""
        return self._size

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._size:
            raise ParallelExecutionError(
                f"rank {rank} out of range for communicator of size {self._size}"
            )

    def isend(self, source: int, dest: int, tag: str, payload: Any = None) -> None:
        """Non-blocking send: enqueue a message in the destination mailbox."""
        self._check_rank(source)
        self._check_rank(dest)
        self._mailboxes[dest].append(Message(source, dest, tag, payload))
        self.sent_messages += 1

    def iprobe(self, rank: int, tag: Optional[str] = None) -> bool:
        """Non-blocking probe: is a (matching) message waiting for *rank*?"""
        self._check_rank(rank)
        if tag is None:
            return bool(self._mailboxes[rank])
        return any(m.tag == tag for m in self._mailboxes[rank])

    def recv(self, rank: int, tag: Optional[str] = None) -> Optional[Message]:
        """Pop the first (matching) message for *rank*, or ``None`` if none waits."""
        self._check_rank(rank)
        box = self._mailboxes[rank]
        if tag is None:
            return box.popleft() if box else None
        for idx, message in enumerate(box):
            if message.tag == tag:
                del box[idx]
                return message
        return None

    def broadcast_others(self, source: int, tag: str, payload: Any = None) -> None:
        """Send the same message to every rank except *source* (termination broadcast)."""
        for dest in range(self._size):
            if dest != source:
                self.isend(source, dest, tag, payload)

    def pending(self, rank: int) -> int:
        """Number of undelivered messages for *rank*."""
        self._check_rank(rank)
        return len(self._mailboxes[rank])


@dataclass
class SimulatedWalkOutcome:
    """Outcome of one rank of a simulated multi-walk run."""

    rank: int
    seed: int
    result: SolveResult
    #: Iterations this rank executed before stopping (solution or termination).
    iterations_executed: int
    #: True when this rank is the one that found the solution first.
    winner: bool


class SimulatedMultiWalk:
    """Deterministic in-process simulation of independent multi-walk AS.

    Every rank advances ``check_period`` iterations per scheduling round (the
    polling granularity of the paper), after which termination messages are
    delivered.  The solver state of each rank is a real
    :class:`~repro.core.engine.AdaptiveSearch` run driven through its
    ``stop_check`` / ``max_iterations`` hooks, so the per-rank trajectories are
    identical to sequential runs with the same seeds.

    Notes
    -----
    Ranks are advanced one slice at a time by re-entering the engine with an
    increased iteration cap.  Re-entering restarts the engine's *internal*
    bookkeeping but not the problem state; to keep trajectories exactly equal
    to a single uninterrupted run, the simulation instead runs each rank's
    walk **to completion once** (recording its iteration count) and then
    replays the termination protocol analytically on those counts.  This is
    equivalent for independent walks — there is no interaction that could
    change a trajectory mid-run — and it keeps the simulation exact rather
    than approximate.
    """

    TERMINATION_TAG = "solution-found"

    def __init__(
        self,
        problem_factory: Callable[[], PermutationProblem],
        params: ASParameters,
        *,
        engine_factory: Callable[[], AdaptiveSearch] | None = None,
    ) -> None:
        self._problem_factory = problem_factory
        self._params = params
        self._engine_factory = engine_factory or (lambda: AdaptiveSearch())

    def run(
        self,
        seeds: Sequence[int],
        *,
        max_iterations: Optional[int] = None,
    ) -> Tuple[List[SimulatedWalkOutcome], SimulatedCommunicator]:
        """Simulate one multi-walk execution with the given per-rank seeds.

        Returns the per-rank outcomes and the communicator (whose message
        counters tests inspect to verify the termination protocol: exactly one
        broadcast of ``size - 1`` messages when some rank solves).
        """
        if not seeds:
            raise ParallelExecutionError("at least one seed (rank) is required")
        size = len(seeds)
        comm = SimulatedCommunicator(size)
        params = self._params
        if max_iterations is not None:
            params = params.with_updates(max_iterations=max_iterations)

        # Phase 1: run every rank's walk to completion independently.
        results: List[SolveResult] = []
        for rank, seed in enumerate(seeds):
            problem = self._problem_factory()
            engine = self._engine_factory()
            result = engine.solve(problem, seed=int(seed), params=params)
            results.append(result)

        # Phase 2: replay the termination protocol on the iteration counts.
        solved_iters = [
            (res.iterations, rank) for rank, res in enumerate(results) if res.solved
        ]
        outcomes: List[SimulatedWalkOutcome] = []
        if not solved_iters:
            for rank, (seed, res) in enumerate(zip(seeds, results)):
                outcomes.append(
                    SimulatedWalkOutcome(rank, int(seed), res, res.iterations, False)
                )
            return outcomes, comm

        winning_iterations, winner_rank = min(solved_iters)
        comm.broadcast_others(winner_rank, self.TERMINATION_TAG)
        # Every other rank notices the message at its next polling point.
        check = params.check_period
        for rank, (seed, res) in enumerate(zip(seeds, results)):
            if rank == winner_rank:
                executed = res.iterations
            else:
                # The rank polls at multiples of check_period; it stops at the
                # first poll after the winner's solution time, unless it had
                # already finished on its own before that.
                next_poll = ((winning_iterations // check) + 1) * check
                executed = min(res.iterations, next_poll)
                if comm.iprobe(rank, self.TERMINATION_TAG):
                    comm.recv(rank, self.TERMINATION_TAG)
            outcomes.append(
                SimulatedWalkOutcome(
                    rank, int(seed), res, int(executed), rank == winner_rank
                )
            )
        return outcomes, comm

    # ---------------------------------------------------------------- summaries
    @staticmethod
    def parallel_iterations(outcomes: Sequence[SimulatedWalkOutcome]) -> int:
        """Iterations of the critical path (max over ranks of executed iterations)."""
        if not outcomes:
            raise ParallelExecutionError("no outcomes to summarise")
        return max(o.iterations_executed for o in outcomes)

    @staticmethod
    def winner(outcomes: Sequence[SimulatedWalkOutcome]) -> Optional[SimulatedWalkOutcome]:
        """The winning rank's outcome, or ``None`` when no rank solved."""
        for o in outcomes:
            if o.winner:
                return o
        return None
