"""Shared liveness machinery for process pools and multi-walk runs.

Both the one-shot :class:`~repro.parallel.multiwalk.MultiWalkSolver` and the
long-lived :class:`~repro.service.workers.WorkerPool` face the same failure
mode: a child process can die (hard crash, OOM kill) *without* reporting
through its result queue, and the naive ``queue.get()`` loop then blocks
forever.  The cure is also the same — poll the queue with a timeout, watch
process liveness between polls, and only declare a process lost after a grace
period (the multiprocessing queue feeder may still be flushing a result the
process enqueued just before exiting).

:class:`DeadProcessDetector` packages that grace-period logic so the two
collection loops share one implementation instead of duplicating it.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Optional, Protocol

__all__ = ["DeadProcessDetector", "poll_interval"]


class _ProcessLike(Protocol):  # pragma: no cover - typing helper
    def is_alive(self) -> bool: ...


def poll_interval(join_timeout: float) -> float:
    """Queue-poll timeout derived from the join timeout (bounded 50-500 ms)."""
    return max(0.05, min(0.5, join_timeout / 10.0))


class DeadProcessDetector:
    """Grace-period detection of child processes that died without reporting.

    Call :meth:`poll` periodically with the map of still-pending processes;
    it returns the ids of processes that have been observed dead for longer
    than *grace* seconds (and therefore cannot still have a result in
    flight).  The grace clock is **per process**: one worker dying is
    detected within its own grace period even while its siblings keep
    reporting results at full rate — otherwise steady traffic from healthy
    workers would starve detection forever and the dead worker's job would
    hang its clients.  A process that reports (and leaves *pending*) or is
    respawned (alive again under the same id) has its clock dropped
    automatically.
    """

    def __init__(self, grace: float) -> None:
        self.grace = grace
        self._dead_since: Dict[Hashable, float] = {}

    def poll(
        self,
        pending: Dict[Hashable, _ProcessLike],
        now: Optional[float] = None,
    ) -> List[Hashable]:
        """Ids in *pending* whose processes are confirmed dead past the grace.

        Returns an empty list while every pending process is alive, or while
        the dead ones are still within their grace period (the
        multiprocessing queue feeder may be flushing a final result).
        """
        if now is None:
            now = time.perf_counter()
        dead = {key for key, proc in pending.items() if not proc.is_alive()}
        # Drop clocks of processes that reported, were respawned, or left.
        self._dead_since = {
            key: since for key, since in self._dead_since.items() if key in dead
        }
        expired = [
            key
            for key in dead
            if now - self._dead_since.setdefault(key, now) > self.grace
        ]
        return sorted(expired, key=repr)
