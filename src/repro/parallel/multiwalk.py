"""Real parallel independent multi-walk on the local machine.

This is the component a user runs to actually solve hard instances faster:
``k`` worker *processes* (not threads — the GIL would serialise pure-Python
search threads) each run the sequential Adaptive Search engine with their own
seed.  The first worker to find a solution sets a shared event; all workers
poll that event every ``check_period`` iterations through the engine's
``stop_check`` hook, mirroring the non-blocking MPI probe of the paper, and
stop as soon as it is set.

The problem instance is described by a *factory* (a picklable callable
returning a fresh :class:`~repro.core.problem.PermutationProblem`), because
the problem object itself is stateful and must be constructed inside each
worker.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.engine import AdaptiveSearch
from repro.core.params import ASParameters
from repro.core.problem import PermutationProblem
from repro.core.result import SolveResult
from repro.exceptions import ParallelExecutionError
from repro.parallel.seeds import spawned_seeds

__all__ = ["MultiWalkResult", "MultiWalkSolver"]


@dataclass
class MultiWalkResult:
    """Aggregate outcome of a parallel multi-walk run.

    ``best`` is the winning walk's result (or the best unsolved one);
    ``results`` holds whatever the workers reported back before termination
    (the losers report their partial statistics too); ``wall_time`` is the
    end-to-end time measured by the coordinating process, which is what the
    speed-up tables use.
    """

    best: SolveResult
    results: List[SolveResult]
    n_workers: int
    wall_time: float
    seeds: List[int] = field(default_factory=list)

    @property
    def solved(self) -> bool:
        """Whether any walk found a solution."""
        return self.best.solved

    @property
    def total_iterations(self) -> int:
        """Sum of iterations across all reporting walks (total work performed)."""
        return sum(r.iterations for r in self.results)


def _worker(
    problem_factory: Callable[[], PermutationProblem],
    params: ASParameters,
    seed: int,
    walk_index: int,
    stop_event,
    queue,
    max_time: Optional[float],
) -> None:
    """Body of one worker process: run AS until solved, stopped or out of budget."""
    try:
        problem = problem_factory()
        engine = AdaptiveSearch()
        result = engine.solve(
            problem,
            seed=seed,
            params=params,
            stop_check=stop_event.is_set,
            max_time=max_time,
        )
        if result.solved:
            stop_event.set()
        result.extra["walk_index"] = walk_index
        queue.put(("ok", walk_index, result.as_dict()))
    except Exception as exc:  # pragma: no cover - defensive: worker crash path
        queue.put(("error", walk_index, repr(exc)))


class MultiWalkSolver:
    """Independent multi-walk Adaptive Search using ``multiprocessing``.

    Parameters
    ----------
    problem_factory:
        Picklable zero-argument callable producing a fresh problem instance.
    params:
        Engine parameters shared by every walk.
    n_workers:
        Number of worker processes (default: the machine's CPU count).
    seeds:
        Explicit per-walk seeds; by default independent seeds are spawned from
        ``seed_root``.
    seed_root:
        Root seed used when *seeds* is not given.
    mp_context:
        ``multiprocessing`` start method (``"fork"`` by default on POSIX —
        cheapest; use ``"spawn"`` for portability).
    """

    def __init__(
        self,
        problem_factory: Callable[[], PermutationProblem],
        params: Optional[ASParameters] = None,
        *,
        n_workers: Optional[int] = None,
        seeds: Optional[Sequence[int]] = None,
        seed_root: Optional[int] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        self.problem_factory = problem_factory
        self.params = params if params is not None else ASParameters()
        self.n_workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
        if self.n_workers < 1:
            raise ParallelExecutionError(f"n_workers must be >= 1, got {self.n_workers}")
        self._explicit_seeds = list(seeds) if seeds is not None else None
        if self._explicit_seeds is not None and len(self._explicit_seeds) < self.n_workers:
            raise ParallelExecutionError(
                f"{len(self._explicit_seeds)} seeds provided for {self.n_workers} workers"
            )
        self.seed_root = seed_root
        if mp_context is None:
            mp_context = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(mp_context)

    # ------------------------------------------------------------------ public
    def solve(
        self,
        *,
        max_time: Optional[float] = None,
        join_timeout: float = 30.0,
    ) -> MultiWalkResult:
        """Run the walks and return as soon as every worker has reported.

        ``max_time`` bounds each walk's wall-clock time; ``join_timeout`` is a
        safety net for collecting worker processes after termination.
        """
        seeds = (
            self._explicit_seeds[: self.n_workers]
            if self._explicit_seeds is not None
            else spawned_seeds(self.n_workers, self.seed_root)
        )

        if self.n_workers == 1:
            # Degenerate case: run inline (used by tests and the 1-core baselines).
            start = time.perf_counter()
            problem = self.problem_factory()
            result = AdaptiveSearch().solve(
                problem, seed=seeds[0], params=self.params, max_time=max_time
            )
            result.extra["walk_index"] = 0
            elapsed = time.perf_counter() - start
            return MultiWalkResult(result, [result], 1, elapsed, list(seeds))

        start = time.perf_counter()
        stop_event = self._ctx.Event()
        queue = self._ctx.Queue()
        workers = []
        for idx, seed in enumerate(seeds):
            proc = self._ctx.Process(
                target=_worker,
                args=(
                    self.problem_factory,
                    self.params,
                    int(seed),
                    idx,
                    stop_event,
                    queue,
                    max_time,
                ),
                daemon=True,
            )
            proc.start()
            workers.append(proc)

        results: List[SolveResult] = []
        errors: List[str] = []
        for _ in range(len(workers)):
            kind, walk_index, payload = queue.get()
            if kind == "ok":
                results.append(SolveResult.from_dict(payload))
            else:  # pragma: no cover - defensive
                errors.append(f"walk {walk_index}: {payload}")

        for proc in workers:
            proc.join(timeout=join_timeout)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
        elapsed = time.perf_counter() - start

        if not results:
            raise ParallelExecutionError(
                "every worker failed: " + "; ".join(errors) if errors else "no results"
            )
        best = SolveResult.best_of(results)
        return MultiWalkResult(best, results, len(workers), elapsed, list(seeds))
