"""Real parallel independent multi-walk on the local machine.

This is the component a user runs to actually solve hard instances faster:
``k`` worker *processes* (not threads — the GIL would serialise pure-Python
search threads) each run a sequential search strategy with their own seed.
The first worker to find a solution sets a shared event; all workers poll
that event every ``check_period`` iterations through the strategy's
``stop_check`` hook, mirroring the non-blocking MPI probe of the paper, and
stop as soon as it is set.

By default every walk runs the Adaptive Search engine, but any solver of the
:mod:`repro.solvers` registry can be selected with ``solver=``, including a
**heterogeneous portfolio**: a list of solver specs assigned round-robin
across the walks, racing first-past-the-post.  A portfolio turns the paper's
multi-walk termination into an algorithm race — useful when no single
strategy dominates on an instance family.

The problem instance is described by a *factory* (a picklable callable
returning a fresh :class:`~repro.core.problem.PermutationProblem`), because
the problem object itself is stateful and must be constructed inside each
worker.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_module
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.params import ASParameters
from repro.core.problem import PermutationProblem
from repro.core.result import SolveResult
from repro.exceptions import ParallelExecutionError
from repro.parallel.liveness import DeadProcessDetector, poll_interval
from repro.parallel.seeds import spawned_seeds
from repro.solvers import SpecLike, portfolio_label, resolve_portfolio, run_spec

__all__ = ["MultiWalkResult", "MultiWalkSolver"]

#: Grace added to the max_time-derived collection deadline: a walk's budget
#: only starts ticking inside its worker, after process start-up, imports and
#: problem construction (first use may even compile the C kernels), and the
#: engine polls max_time only every ``check_period`` iterations.
_STARTUP_ALLOWANCE = 15.0


@dataclass
class MultiWalkResult:
    """Aggregate outcome of a parallel multi-walk run.

    ``best`` is the winning walk's result (or the best unsolved one);
    ``results`` holds whatever the workers reported back before termination
    (the losers report their partial statistics too); ``wall_time`` is the
    end-to-end time measured by the coordinating process, which is what the
    speed-up tables use.
    """

    best: SolveResult
    results: List[SolveResult]
    n_workers: int
    wall_time: float
    seeds: List[int] = field(default_factory=list)
    #: Walk indices that never reported (worker died or missed the deadline).
    #: Empty on a clean run; non-empty results are still usable — ``best`` and
    #: ``results`` cover every walk that did report.
    missing_walks: List[int] = field(default_factory=list)
    #: ``True`` when the run was cut short by SIGINT/SIGTERM: the workers were
    #: drained gracefully and ``results`` holds their partial statistics.
    interrupted: bool = False

    @property
    def solved(self) -> bool:
        """Whether any walk found a solution."""
        return self.best.solved

    @property
    def total_iterations(self) -> int:
        """Sum of iterations across all reporting walks (total work performed)."""
        return sum(r.iterations for r in self.results)

    @property
    def solvers(self) -> List[str]:
        """Distinct solver names among the reporting walks (sorted).

        A pure run yields ``["adaptive-search"]``; a heterogeneous portfolio
        run lists every strategy that participated.
        """
        return sorted({r.solver for r in self.results})


def _worker(
    problem_factory: Callable[[], PermutationProblem],
    params: ASParameters,
    spec_dict: dict,
    seed: int,
    walk_index: int,
    stop_event,
    queue,
    max_time: Optional[float],
    population: int = 1,
) -> None:
    """Body of one worker process: run this walk's strategy until solved,
    stopped or out of budget."""
    try:
        problem = problem_factory()
        result = run_spec(
            spec_dict,
            problem,
            seed=seed,
            stop_check=stop_event.is_set,
            max_time=max_time,
            as_params=params,
            population=population,
        )
        if result.solved:
            stop_event.set()
        result.extra["walk_index"] = walk_index
        queue.put(("ok", walk_index, result.as_dict()))
    except Exception as exc:  # pragma: no cover - defensive: worker crash path
        queue.put(("error", walk_index, repr(exc)))


class MultiWalkSolver:
    """Independent multi-walk Adaptive Search using ``multiprocessing``.

    Parameters
    ----------
    problem_factory:
        Picklable zero-argument callable producing a fresh problem instance.
    params:
        Engine parameters shared by every Adaptive Search walk (walks whose
        spec carries its own ``params`` use those instead).
    solver:
        Which strategy (or strategies) to run: a registry name
        (``"tabu"``), a spec dict (``{"name": "tabu", "params": {...}}``), a
        named or inline portfolio (``"mixed"``, ``"adaptive+tabu"``) or a
        list of specs.  Portfolio members are assigned to walks round-robin
        (``n_workers`` is raised to the portfolio size when smaller, so every
        member is guaranteed a walk); the first solved walk stops everyone
        (first past the post).  Default: pure Adaptive Search, exactly as
        before.
    n_workers:
        Number of worker processes (default: the machine's CPU count).
    seeds:
        Explicit per-walk seeds; by default independent seeds are spawned from
        ``seed_root``.
    seed_root:
        Root seed used when *seeds* is not given.
    mp_context:
        ``multiprocessing`` start method (``"fork"`` by default on POSIX —
        cheapest; use ``"spawn"`` for portability).
    population:
        Vectorised walks *per worker process* (default 1).  Each worker slot
        whose strategy supports it (the compiled walk engine) advances
        ``population`` independent walks in one kernel batch and reports the
        best one, so the run races ``n_workers × population`` walks on
        ``n_workers`` cores.  Strategies without population support run a
        single walk per slot, unchanged.
    """

    def __init__(
        self,
        problem_factory: Callable[[], PermutationProblem],
        params: Optional[ASParameters] = None,
        *,
        solver: SpecLike | Sequence[SpecLike] = None,
        n_workers: Optional[int] = None,
        seeds: Optional[Sequence[int]] = None,
        seed_root: Optional[int] = None,
        mp_context: Optional[str] = None,
        population: int = 1,
    ) -> None:
        self.problem_factory = problem_factory
        self.params = params if params is not None else ASParameters()
        self.solver_specs = resolve_portfolio(solver)
        self.n_workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
        if self.n_workers < 1:
            raise ParallelExecutionError(f"n_workers must be >= 1, got {self.n_workers}")
        if population < 1:
            raise ParallelExecutionError(f"population must be >= 1, got {population}")
        self.population = population
        # A portfolio races first-past-the-post only if every member actually
        # gets a walk; silently dropping the tail of the round-robin would
        # run a different portfolio than the one requested.
        self.n_workers = max(self.n_workers, len(self.solver_specs))
        self._explicit_seeds = list(seeds) if seeds is not None else None
        if self._explicit_seeds is not None and len(self._explicit_seeds) < self.n_workers:
            raise ParallelExecutionError(
                f"{len(self._explicit_seeds)} seeds provided for {self.n_workers} workers"
            )
        self.seed_root = seed_root
        if mp_context is None:
            mp_context = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        self._ctx = mp.get_context(mp_context)

    @property
    def portfolio(self) -> str:
        """Label of the configured solver portfolio (``"adaptive+tabu"``)."""
        return portfolio_label(self.solver_specs)

    def _walk_spec(self, walk_index: int) -> dict:
        """The (picklable) solver spec walk *walk_index* runs — round-robin."""
        spec = self.solver_specs[walk_index % len(self.solver_specs)]
        return spec.as_dict()

    # ------------------------------------------------------------------ public
    def solve(
        self,
        *,
        max_time: Optional[float] = None,
        join_timeout: float = 30.0,
    ) -> MultiWalkResult:
        """Run the walks and return as soon as every worker has reported.

        ``max_time`` bounds each walk's wall-clock time; ``join_timeout`` is a
        safety net for collecting worker processes after termination.

        Result collection never blocks forever: if a worker process dies
        without reporting (hard crash, OOM kill), the unreported walks are
        detected within ``join_timeout``; when ``max_time`` is set, a global
        deadline of ``max_time + join_timeout`` plus a fixed startup
        allowance (each walk's clock starts inside its worker, after process
        spawn and problem construction) backstops workers that hang without
        dying.  If at least one walk reported, the partial outcome is
        returned with the gaps listed in
        :attr:`MultiWalkResult.missing_walks` (a dead loser must not discard
        a solved winner); when *no* walk reported, a
        :class:`~repro.exceptions.ParallelExecutionError` listing the missing
        walks is raised.

        SIGINT/SIGTERM are handled gracefully while the walks run (when
        called from the main thread): the first signal sets the shared stop
        event, every worker exits at its next ``check_period`` poll and
        reports its partial statistics, and the partial
        :class:`MultiWalkResult` is returned with
        :attr:`~MultiWalkResult.interrupted` set — no child processes are
        leaked.  Workers that fail to drain within ``join_timeout`` are
        terminated and listed in :attr:`~MultiWalkResult.missing_walks`.
        """
        seeds = (
            self._explicit_seeds[: self.n_workers]
            if self._explicit_seeds is not None
            else spawned_seeds(self.n_workers, self.seed_root)
        )

        if self.n_workers == 1:
            # Degenerate case: run inline (used by tests and the 1-core baselines).
            start = time.perf_counter()
            problem = self.problem_factory()
            result = run_spec(
                self._walk_spec(0),
                problem,
                seed=seeds[0],
                max_time=max_time,
                as_params=self.params,
                population=self.population,
            )
            result.extra["walk_index"] = 0
            elapsed = time.perf_counter() - start
            return MultiWalkResult(result, [result], 1, elapsed, list(seeds))

        start = time.perf_counter()
        stop_event = self._ctx.Event()
        queue = self._ctx.Queue()
        workers = []
        for idx, seed in enumerate(seeds):
            proc = self._ctx.Process(
                target=_worker,
                args=(
                    self.problem_factory,
                    self.params,
                    self._walk_spec(idx),
                    int(seed),
                    idx,
                    stop_event,
                    queue,
                    max_time,
                    self.population,
                ),
                daemon=True,
            )
            proc.start()
            workers.append(proc)

        results: List[SolveResult] = []
        errors: List[str] = []
        pending = {idx: proc for idx, proc in enumerate(workers)}
        # Workers legitimately run unbounded when max_time is None, so the
        # global deadline only exists when a per-walk budget does; dead
        # workers are detected regardless through liveness polling.
        deadline = (
            start + max_time + join_timeout + _STARTUP_ALLOWANCE
            if max_time is not None
            else None
        )
        poll = poll_interval(join_timeout)
        # Give the queue feeder a grace period to flush any result a worker
        # enqueued just before exiting (shared with the service worker pool).
        detector = DeadProcessDetector(grace=join_timeout)
        missing: List[int] = []
        # Graceful SIGINT/SIGTERM: the first signal tells every walk to stop
        # (they report partial stats and exit); workers that fail to drain
        # within join_timeout are reaped as missing.  Signal handlers can
        # only be installed from the main thread; elsewhere (e.g. a pool
        # dispatcher) the default handling is left untouched.
        signals_seen: List[int] = []
        drain_deadline: Optional[float] = None
        old_handlers = {}

        def _on_signal(signum, frame):  # pragma: no cover - exercised via test
            signals_seen.append(signum)
            stop_event.set()

        in_main_thread = threading.current_thread() is threading.main_thread()
        if in_main_thread:
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    old_handlers[signum] = signal.signal(signum, _on_signal)
                except (ValueError, OSError):  # pragma: no cover - exotic platforms
                    pass
        try:
            while pending:
                if signals_seen and drain_deadline is None:
                    drain_deadline = time.perf_counter() + join_timeout
                try:
                    kind, walk_index, payload = queue.get(timeout=poll)
                except queue_module.Empty:
                    now = time.perf_counter()
                    dead = detector.poll(pending, now)
                    if dead:
                        missing = dead
                        if results or signals_seen:
                            break  # degrade: keep the walks that reported
                        raise ParallelExecutionError(
                            f"walk(s) {dead} died without reporting "
                            f"(no result within join_timeout={join_timeout}s)"
                            + ("; worker errors: " + "; ".join(errors) if errors else "")
                        )
                    effective_deadline = deadline
                    if drain_deadline is not None:
                        effective_deadline = (
                            min(deadline, drain_deadline)
                            if deadline is not None
                            else drain_deadline
                        )
                    if effective_deadline is not None and now > effective_deadline:
                        missing = sorted(pending)
                        if results or signals_seen:
                            break  # degrade: keep the walks that reported
                        raise ParallelExecutionError(
                            f"walk(s) {missing} missed the deadline "
                            f"(max_time={max_time}s + join_timeout={join_timeout}s "
                            f"+ {_STARTUP_ALLOWANCE}s startup allowance)"
                        )
                    continue
                pending.pop(walk_index, None)
                if kind == "ok":
                    results.append(SolveResult.from_dict(payload))
                else:  # pragma: no cover - defensive
                    errors.append(f"walk {walk_index}: {payload}")
        finally:
            # On success this is the normal join; on error or interrupt it
            # also tells the surviving walks to stop before reaping them.
            stop_event.set()
            for proc in workers:
                proc.join(timeout=join_timeout if not pending else 0.1)
                if proc.is_alive():
                    proc.terminate()
            if in_main_thread:
                for signum, handler in old_handlers.items():
                    signal.signal(signum, handler)
        elapsed = time.perf_counter() - start

        if not results:
            if signals_seen:
                raise ParallelExecutionError(
                    f"interrupted by signal {signals_seen[0]} before any walk reported"
                )
            raise ParallelExecutionError(
                "every worker failed: " + "; ".join(errors) if errors else "no results"
            )
        best = SolveResult.best_of(results)
        return MultiWalkResult(
            best,
            results,
            len(workers),
            elapsed,
            list(seeds),
            missing_walks=missing,
            interrupted=bool(signals_seen),
        )
