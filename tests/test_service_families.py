"""Multi-family serving tests: every registered problem family through the
service facade and the HTTP front-end, plus the HTTP body-handling fixes.

The acceptance criterion of the problem-registry PR: ``submit(kind=k)`` and
``POST /solve {"kind": k}`` succeed for all four registered families, with
store-tier answers deduplicated under each family's own symmetry group, and
the Costas path unchanged.
"""

from __future__ import annotations

import json
import socket
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.problems import get_family, list_families
from repro.service.api import ServiceConfig, SolverService
from repro.service.http import ServiceHTTPServer

#: Orders small enough that even the search tier answers within seconds.
_SERVE_ORDERS = {"costas": 12, "queens": 12, "all-interval": 10, "magic-square": 4}
_SEARCH_ORDERS = {"costas": 9, "queens": 8, "all-interval": 8, "magic-square": 3}


@pytest.fixture()
def service(tmp_path):
    config = ServiceConfig(
        store_path=str(tmp_path / "families.db"),
        n_workers=2,
        default_max_time=120.0,
    )
    with SolverService(config) as svc:
        yield svc


@pytest.fixture()
def server(tmp_path):
    srv = ServiceHTTPServer(
        ("127.0.0.1", 0),
        config=ServiceConfig(
            store_path=str(tmp_path / "families-http.db"),
            n_workers=2,
            default_max_time=120.0,
        ),
    )
    srv.start_background()
    yield srv
    srv.stop(drain=False)


def _call(server, method, path, body=None):
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8") or "{}")


class TestServiceAllFamilies:
    @pytest.mark.parametrize("kind", [f.name for f in list_families()])
    def test_submit_solves_and_second_request_hits_store(self, service, kind):
        family = get_family(kind)
        order = _SERVE_ORDERS[kind]
        first = service.submit(order, kind=kind).result(timeout=120)
        assert first.solved and first.kind == kind
        assert family.validator(np.asarray(first.solution))
        # Constructible families answer at the construction tier, exactly
        # like Welch/Lempel/Golomb answer Costas orders.
        if family.try_construct(order) is not None:
            assert first.source == "construction"
        second = service.submit(order, kind=kind).result(timeout=30)
        assert second.source == "store"
        assert family.validator(np.asarray(second.solution))

    @pytest.mark.parametrize("kind", [f.name for f in list_families()])
    def test_search_tier_runs_for_every_family(self, service, kind):
        family = get_family(kind)
        order = _SEARCH_ORDERS[kind]
        response = service.submit(
            order, kind=kind, use_store=False, use_constructions=False
        ).result(timeout=120)
        assert response.solved and response.source == "search"
        assert family.validator(np.asarray(response.solution))
        # The search result warmed the store under the family's group.
        assert service.store.contains_class(kind, np.asarray(response.solution))

    def test_aliases_accepted_and_normalised(self, service):
        response = service.submit(12, kind="n-queens").result(timeout=30)
        assert response.solved and response.kind == "queens"

    def test_store_rows_are_deduplicated_per_family_group(self, service):
        """After a solve, inserting any group image of the answer is a
        duplicate — the store deduped under the family's own group."""
        for kind in ("queens", "all-interval"):
            family = get_family(kind)
            order = _SERVE_ORDERS[kind]
            response = service.submit(order, kind=kind).result(timeout=120)
            solution = np.asarray(response.solution)
            for image in family.symmetry.images(solution):
                assert not service.store.insert(kind, image)
            assert service.store.count(kind, family.instance_size(order)) == 1

    def test_per_kind_stats(self, service):
        service.submit(12, kind="queens").result(timeout=30)
        service.submit(12, kind="queens").result(timeout=30)
        service.submit(12, kind="costas").result(timeout=30)
        stats = service.stats()
        assert stats["kinds"]["queens"]["requests"] == 2
        assert stats["kinds"]["queens"]["construction"] == 1
        assert stats["kinds"]["queens"]["store"] == 1
        assert stats["kinds"]["costas"]["requests"] == 1
        assert stats["store"]["by_kind"]["queens"]["stored_classes"] >= 1

    def test_model_options_are_part_of_the_coalescing_identity(self):
        key_a = SolverService._instance_key(
            "costas", 15, {"model_options": {"err_weight": "constant"}}
        )
        key_b = SolverService._instance_key("costas", 15, {"model_options": {}})
        key_c = SolverService._instance_key(
            "costas", 15, {"model_options": {"err_weight": "constant"}}
        )
        assert key_a != key_b
        assert key_a == key_c
        # Different kinds never coalesce, even at equal orders.
        assert SolverService._instance_key(
            "queens", 15, {"model_options": {}}
        ) != SolverService._instance_key("costas", 15, {"model_options": {}})

    def test_model_options_reach_the_workers(self, service):
        response = service.submit(
            9,
            kind="costas",
            model_options={"err_weight": "constant", "dedicated_reset": False},
            use_store=False,
            use_constructions=False,
        ).result(timeout=120)
        assert response.solved and response.source == "search"


class TestHTTPAllFamilies:
    @pytest.mark.parametrize("kind", [f.name for f in list_families()])
    def test_post_solve_round_trip(self, server, kind):
        family = get_family(kind)
        status, payload = _call(
            server,
            "POST",
            "/solve",
            {"order": _SERVE_ORDERS[kind], "kind": kind, "wait": True},
        )
        assert status == 200, payload
        assert payload["solved"] and payload["kind"] == kind
        assert family.validator(np.asarray(payload["solution"]))

    def test_unknown_kind_is_400(self, server):
        status, payload = _call(
            server, "POST", "/solve", {"order": 9, "kind": "sudoku"}
        )
        assert status == 400
        assert "unknown problem kind" in payload["error"]

    def test_solver_kind_mismatch_is_400(self, server):
        status, payload = _call(
            server,
            "POST",
            "/solve",
            {"order": 8, "kind": "queens", "solver": "cp"},
        )
        assert status == 400
        assert "does not accept" in payload["error"]

    def test_bad_model_options_is_400(self, server):
        status, _ = _call(
            server,
            "POST",
            "/solve",
            {"order": 9, "kind": "costas", "model_options": ["constant"]},
        )
        assert status == 400

    def test_problems_endpoint_lists_families(self, server):
        status, payload = _call(server, "GET", "/problems")
        assert status == 200
        listing = {entry["kind"]: entry for entry in payload["problems"]}
        assert set(listing) == {"costas", "queens", "all-interval", "magic-square"}
        assert listing["costas"]["symmetry_group"] == "dihedral-8"
        assert listing["magic-square"]["symmetry_group"] == "grid-dihedral-8"
        assert listing["magic-square"]["symmetry_order"] == 8
        assert listing["queens"]["has_construction"] is True

    def test_stats_reports_per_kind_counters(self, server):
        _call(server, "POST", "/solve", {"order": 12, "kind": "queens", "wait": True})
        status, payload = _call(server, "GET", "/stats")
        assert status == 200
        assert payload["kinds"]["queens"]["requests"] >= 1


class TestChunkedBodiesRejected:
    def test_chunked_post_solve_is_400_not_defaults(self, server):
        """A chunked body has no Content-Length; treating it as empty would
        silently solve with default parameters.  It must be a clean 400."""
        body = json.dumps({"order": 9, "kind": "queens"}).encode()
        chunked = b"%x\r\n%s\r\n0\r\n\r\n" % (len(body), body)
        # Deliberately no "Connection: close": the server must close anyway,
        # because the unread chunked body would desync a reused connection
        # (its bytes would be parsed as the next request line).
        request = (
            b"POST /solve HTTP/1.1\r\n"
            b"Host: 127.0.0.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n" + chunked
        )
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(request)
            sock.settimeout(10)
            response = b""
            while True:
                piece = sock.recv(4096)
                if not piece:
                    break
                response += piece
        status_line, _, rest = response.partition(b"\r\n")
        assert b"400" in status_line, response[:200]
        assert b"Transfer-Encoding" in rest
        assert b"Connection: close" in rest
        # recv() returning b"" above proves the server closed the socket
        # instead of waiting to misparse the leftover body.
