"""Tests for the All-Interval Series and Magic Square models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ASParameters, solve
from repro.exceptions import ModelError
from repro.models.all_interval import AllIntervalProblem
from repro.models.magic_square import MagicSquareProblem

perm_strategy = st.integers(min_value=3, max_value=10).flatmap(
    lambda n: st.permutations(list(range(n)))
)


def all_interval_brute_cost(perm) -> int:
    diffs = [abs(perm[i + 1] - perm[i]) for i in range(len(perm) - 1)]
    return len(diffs) - len(set(diffs))


class TestAllInterval:
    def test_requires_minimum_size(self):
        with pytest.raises(ModelError):
            AllIntervalProblem(2)

    @given(perm_strategy)
    def test_cost_matches_brute_force(self, perm):
        problem = AllIntervalProblem(len(perm))
        problem.set_configuration(perm)
        assert problem.cost() == all_interval_brute_cost(list(perm))

    def test_known_solution(self):
        # 0, n-1, 1, n-2, ... is a classic all-interval series.
        n = 8
        zigzag = []
        lo, hi = 0, n - 1
        for k in range(n):
            zigzag.append(lo if k % 2 == 0 else hi)
            if k % 2 == 0:
                lo += 1
            else:
                hi -= 1
        problem = AllIntervalProblem(n)
        problem.set_configuration(zigzag)
        assert problem.cost() == 0
        assert sorted(problem.intervals()) == list(range(1, n))

    @given(perm_strategy, st.data())
    def test_incremental_swap_consistency(self, perm, data):
        problem = AllIntervalProblem(len(perm))
        problem.set_configuration(perm)
        i = data.draw(st.integers(min_value=0, max_value=len(perm) - 1))
        j = data.draw(st.integers(min_value=0, max_value=len(perm) - 1))
        before = problem.cost()
        delta = problem.swap_delta(i, j)
        after = problem.apply_swap(i, j)
        assert after == before + delta
        problem.check_consistency()

    @given(perm_strategy)
    def test_variable_errors_sign(self, perm):
        problem = AllIntervalProblem(len(perm))
        problem.set_configuration(perm)
        errors = problem.variable_errors()
        assert (errors.sum() == 0) == (problem.cost() == 0)

    def test_engine_solves(self):
        result = solve(
            AllIntervalProblem(11), seed=3, params=ASParameters.for_problem_size(11)
        )
        assert result.solved


class TestMagicSquare:
    def test_requires_minimum_size(self):
        with pytest.raises(ModelError):
            MagicSquareProblem(2)

    def test_magic_constant_and_grid(self):
        problem = MagicSquareProblem(3)
        assert problem.side == 3
        assert problem.magic_constant == 3 * (9 - 1) // 2  # 0-based values
        assert problem.grid().shape == (3, 3)

    def test_known_magic_square_has_zero_cost(self):
        # The Lo Shu square (1-based values), converted to 0-based cell values.
        lo_shu = np.array([[2, 7, 6], [9, 5, 1], [4, 3, 8]]) - 1
        problem = MagicSquareProblem(3)
        problem.set_configuration(lo_shu.reshape(-1))
        assert problem.cost() == 0
        assert problem.is_magic()

    def test_cost_positive_for_sorted_layout(self):
        problem = MagicSquareProblem(3)
        problem.set_configuration(list(range(9)))
        assert problem.cost() > 0
        assert not problem.is_magic()

    @given(st.permutations(list(range(16))), st.data())
    def test_incremental_swap_consistency(self, perm, data):
        problem = MagicSquareProblem(4)
        problem.set_configuration(perm)
        i = data.draw(st.integers(min_value=0, max_value=15))
        j = data.draw(st.integers(min_value=0, max_value=15))
        before = problem.cost()
        delta = problem.swap_delta(i, j)
        after = problem.apply_swap(i, j)
        assert after == before + delta
        problem.check_consistency()

    def test_variable_errors_shape_and_sign(self):
        problem = MagicSquareProblem(4)
        problem.set_configuration(list(range(16)))
        errors = problem.variable_errors()
        assert errors.shape == (16,)
        assert errors.sum() > 0

    def test_engine_solves_small_square(self):
        result = solve(
            MagicSquareProblem(3),
            seed=5,
            params=ASParameters.for_problem_size(9, plateau_probability=0.95),
        )
        assert result.solved
        problem = MagicSquareProblem(3)
        problem.set_configuration(result.configuration)
        assert problem.is_magic()
