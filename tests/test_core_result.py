"""Tests for SolveResult and RunLimits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.result import RunLimits, SolveResult


def make_result(**overrides) -> SolveResult:
    defaults = dict(
        solved=True,
        configuration=np.array([2, 0, 1]),
        cost=0,
        iterations=10,
        local_minima=3,
        wall_time=0.5,
        seed=42,
        problem="costas(n=3)",
    )
    defaults.update(overrides)
    return SolveResult(**defaults)


class TestSolveResult:
    def test_configuration_coerced_to_array(self):
        result = SolveResult(solved=True, configuration=[1, 0], cost=0)
        assert isinstance(result.configuration, np.ndarray)
        assert result.configuration.dtype == np.int64

    def test_iterations_per_second(self):
        result = make_result(iterations=100, wall_time=2.0)
        assert result.iterations_per_second == pytest.approx(50.0)
        assert make_result(wall_time=0.0).iterations_per_second == 0.0

    def test_dict_roundtrip(self):
        original = make_result(extra={"walk_index": 3})
        copy = SolveResult.from_dict(original.as_dict())
        assert copy.solved == original.solved
        assert list(copy.configuration) == list(original.configuration)
        assert copy.extra == original.extra
        assert copy.seed == original.seed
        assert copy.problem == original.problem

    def test_summary_mentions_status_and_problem(self):
        assert "solved" in make_result().summary()
        failed = make_result(solved=False, cost=5, stop_reason="max_iterations")
        assert "max_iterations" in failed.summary()

    def test_best_of_prefers_solved_then_cost_then_iterations(self):
        solved_slow = make_result(iterations=100)
        solved_fast = make_result(iterations=10)
        unsolved = make_result(solved=False, cost=7)
        assert SolveResult.best_of([unsolved, solved_slow, solved_fast]) is solved_fast
        assert SolveResult.best_of([unsolved]) is unsolved
        cheaper = make_result(solved=False, cost=2)
        assert SolveResult.best_of([unsolved, cheaper]) is cheaper

    def test_best_of_empty_raises(self):
        with pytest.raises(ValueError):
            SolveResult.best_of([])


class TestRunLimits:
    def test_defaults(self):
        limits = RunLimits()
        assert limits.max_iterations is None
        assert limits.max_time is None
        assert limits.external_stop is False
