"""Bad fixture: lock-order cycle plus blocking work under a held lock.

Exercised by tests/test_lint.py -- line numbers are asserted exactly, so
keep edits append-only or update the tests.
"""

import threading
import time


class Tangled:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self._state = threading.Lock()
        self.conn = None
        self.jobs_q = None

    def forward(self):
        with self._a:
            with self._b:
                pass

    def backward(self):
        with self._b:
            with self._a:
                pass

    def commit_under_lock(self):
        with self._state:
            self.conn.commit()

    def sleep_under_lock(self):
        with self._state:
            time.sleep(0.5)

    def drain_under_lock(self):
        with self._state:
            return self.jobs_q.get(timeout=1.0)

    def outer(self):
        with self._state:
            self._slow_helper()

    def _slow_helper(self):
        time.sleep(1.0)
