"""Good fixture: every overload response carries the retry contract."""


class Handler:
    def _send_json(self, status, body, headers=None):
        pass

    def unavailable(self):
        self._send_json(
            503,
            {"error": "overloaded", "retry": True, "retry_after": 2},
            headers={"Retry-After": "2"},
        )

    def built_up_body(self):
        body = {"error": "overloaded"}
        body["retry"] = True
        body["retry_after"] = 2
        self._send_json(503, body, headers={"Retry-After": "2"})

    async def throttled(self):
        return (
            429,
            {"error": "quota", "retry": True, "retry_after": 1},
            False,
            {"Retry-After": "1"},
        )

    def batch_item(self):
        return {
            "status": "error",
            "code": 504,
            "error": "deadline",
            "retry": True,
            "retry_after": 1,
        }

    def success_is_unconstrained(self):
        self._send_json(200, {"ok": True})
