"""Bad fixture: suppression comments without the mandatory justification."""

import random


def unjustified_inline():
    return random.random()  # repro-lint: ignore[unseeded-random]


def justified_inline():
    # repro-lint: ignore[unseeded-random] -- fixture demonstrating that a
    # justified suppression is honoured.
    return random.random()
