"""Good fixture: all entropy flows through seeded constructors."""

import random

import numpy as np

from repro.core.rng import derive_seed, ensure_generator


def seeded_generator(seed):
    return np.random.default_rng(derive_seed(seed, "fixture"))


def seeded_local_random():
    return random.Random(7).random()


def ensured(seed):
    return ensure_generator(seed)


def monotonic_is_fine():
    import time

    return time.perf_counter(), time.monotonic()
