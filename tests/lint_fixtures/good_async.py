"""Good fixture: blocking work hops through the executor."""

import asyncio


class Handler:
    async def _call(self, fn, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, fn, *args)

    async def handle(self):
        stats = await self._call(self.service.stats)
        await asyncio.sleep(0.01)
        return stats

    def sync_path_is_not_checked(self):
        return self.service.stats()
