"""Good fixture: consistent lock order, blocking work outside the lock."""

import threading
import time


class Tidy:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()
        self._state = threading.Lock()
        self.conn = None

    def forward(self):
        with self._a:
            with self._b:
                pass

    def also_forward(self):
        with self._a:
            with self._b:
                return 1

    def commit_outside_lock(self):
        with self._state:
            snapshot = dict(vars(self))
        self.conn.commit()
        time.sleep(0.01)
        return snapshot
