"""Bad fixture: every ambient-entropy shape the determinism lint forbids."""

import random
import time

import numpy as np

from repro.core.rng import ensure_generator


def module_draw():
    return random.random()


def system_random():
    return random.SystemRandom()


def legacy_numpy():
    return np.random.rand(3)


def legacy_state():
    return np.random.RandomState(0)


def clock_seed():
    return time.time()


def unseeded_generator():
    return np.random.default_rng()


def none_seeded_generator():
    return ensure_generator(None)
