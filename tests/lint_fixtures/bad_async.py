"""Bad fixture: blocking calls directly on the event loop."""

import time


class Handler:
    async def handle(self):
        time.sleep(0.1)
        with open("/tmp/fixture") as fh:
            data = fh.read()
        stats = self.service.stats()
        return stats, data

    async def settle(self, future):
        return future.result(5.0)
