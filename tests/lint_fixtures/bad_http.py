"""Bad fixture: overload responses that drop the retry contract."""


class Handler:
    def _send_json(self, status, body, headers=None):
        pass

    def unavailable(self):
        self._send_json(503, {"error": "overloaded"})

    async def throttled(self):
        return 429, {"error": "quota"}, False

    def batch_item(self):
        return {"status": "error", "code": 504, "error": "deadline"}
