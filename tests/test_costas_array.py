"""Tests for repro.costas.array: permutation validation, Costas predicate, CostasArray."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.costas.array import (
    CostasArray,
    as_permutation,
    difference_triangle,
    is_costas,
    is_permutation,
    random_permutation,
    violating_pairs,
    violation_count,
)
from repro.exceptions import InvalidPermutationError

permutations = st.integers(min_value=2, max_value=9).flatmap(
    lambda n: st.permutations(list(range(n)))
)


class TestAsPermutation:
    def test_accepts_valid_permutation(self):
        out = as_permutation([2, 0, 1])
        assert out.dtype == np.int64
        assert list(out) == [2, 0, 1]

    def test_rejects_empty(self):
        with pytest.raises(InvalidPermutationError):
            as_permutation([])

    def test_rejects_duplicates(self):
        with pytest.raises(InvalidPermutationError):
            as_permutation([0, 1, 1])

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidPermutationError):
            as_permutation([0, 1, 3])

    def test_rejects_negative(self):
        with pytest.raises(InvalidPermutationError):
            as_permutation([-1, 0, 1])

    def test_rejects_2d_input(self):
        with pytest.raises(InvalidPermutationError):
            as_permutation(np.zeros((2, 2), dtype=int))

    def test_rejects_non_integral_floats(self):
        with pytest.raises(InvalidPermutationError):
            as_permutation([0.5, 1.0, 2.0])

    def test_accepts_integral_floats(self):
        assert list(as_permutation([2.0, 0.0, 1.0])) == [2, 0, 1]

    @given(permutations)
    def test_accepts_any_permutation(self, perm):
        assert is_permutation(perm)

    def test_is_permutation_false_on_bad_input(self):
        assert not is_permutation([1, 2, 3])  # missing 0


class TestRandomPermutation:
    def test_is_valid_permutation(self):
        perm = random_permutation(10, rng=3)
        assert is_permutation(perm)

    def test_deterministic_with_seed(self):
        assert list(random_permutation(8, rng=7)) == list(random_permutation(8, rng=7))

    def test_rejects_nonpositive_order(self):
        with pytest.raises(InvalidPermutationError):
            random_permutation(0)


class TestDifferenceTriangle:
    def test_paper_example(self, example_costas_5):
        # The paper's difference triangle for [3,4,2,1,5] (values are base-independent).
        rows = difference_triangle(example_costas_5)
        assert [list(r) for r in rows] == [
            [1, -2, -1, 4],
            [-1, -3, 3],
            [-2, 1],
            [2],
        ]

    @given(permutations)
    def test_row_lengths(self, perm):
        rows = difference_triangle(perm)
        n = len(perm)
        assert len(rows) == n - 1
        assert [len(r) for r in rows] == [n - d for d in range(1, n)]


class TestIsCostas:
    def test_paper_example_is_costas(self, example_costas_5):
        assert is_costas(example_costas_5)

    def test_known_non_costas(self):
        # Identity permutation has constant differences in every row.
        assert not is_costas(list(range(5)))

    def test_all_orders_up_to_three(self):
        assert is_costas([0])
        assert is_costas([0, 1])
        assert is_costas([1, 0])

    def test_raises_on_non_permutation(self):
        with pytest.raises(InvalidPermutationError):
            is_costas([0, 0, 1])

    @given(permutations)
    def test_equivalent_to_violation_count_zero(self, perm):
        assert is_costas(perm) == (violation_count(perm) == 0)

    @given(permutations)
    def test_chang_half_triangle_equivalence(self, perm):
        # Chang's remark: checking d <= (n-1)//2 is sufficient.
        assert (violation_count(perm, half=True) == 0) == is_costas(perm)


class TestViolations:
    def test_identity_has_many_violations(self):
        n = 6
        count = violation_count(list(range(n)))
        assert count == sum((n - d) - 1 for d in range(1, n))

    def test_violating_pairs_consistent_with_count(self):
        perm = [0, 1, 2, 3, 4]
        pairs = violating_pairs(perm)
        assert len(pairs) == violation_count(perm)

    @given(permutations)
    def test_pairs_reference_same_difference(self, perm):
        p = np.asarray(perm)
        for d, i, j, diff in violating_pairs(perm):
            assert p[i + d] - p[i] == diff
            assert p[j + d] - p[j] == diff
            assert i < j


class TestCostasArrayClass:
    def test_from_one_based_matches_paper(self, example_costas_5):
        array = CostasArray.from_one_based([3, 4, 2, 1, 5])
        assert list(array.permutation) == example_costas_5
        assert array.to_one_based() == (3, 4, 2, 1, 5)

    def test_rejects_non_costas(self):
        with pytest.raises(ValueError):
            CostasArray.from_permutation(list(range(5)))

    def test_rejects_non_permutation(self):
        with pytest.raises(InvalidPermutationError):
            CostasArray.from_permutation([0, 0, 1])

    def test_order_len_iter_getitem(self, example_costas_5):
        array = CostasArray.from_permutation(example_costas_5)
        assert array.order == len(array) == 5
        assert list(array) == example_costas_5
        assert array[0] == example_costas_5[0]

    def test_grid_has_one_mark_per_row_and_column(self, example_costas_5):
        grid = CostasArray.from_permutation(example_costas_5).to_grid()
        assert grid.shape == (5, 5)
        assert np.all(grid.sum(axis=0) == 1)
        assert np.all(grid.sum(axis=1) == 1)

    def test_displacement_vectors_all_distinct(self, example_costas_5):
        array = CostasArray.from_permutation(example_costas_5)
        vectors = array.displacement_vectors()
        assert len(vectors) == 5 * 4 // 2
        assert len(set(vectors)) == len(vectors)

    def test_symmetries_are_costas_and_at_most_eight(self, example_costas_5):
        array = CostasArray.from_permutation(example_costas_5)
        orbit = array.symmetries()
        assert 1 <= len(orbit) <= 8
        assert all(isinstance(a, CostasArray) for a in orbit)

    def test_canonical_is_in_orbit_and_minimal(self, example_costas_5):
        array = CostasArray.from_permutation(example_costas_5)
        canonical = array.canonical()
        orbit_keys = [a.permutation for a in array.symmetries()]
        assert canonical.permutation in orbit_keys
        assert canonical.permutation == min(orbit_keys)

    def test_render_contains_one_mark_per_line(self, example_costas_5):
        text = CostasArray.from_permutation(example_costas_5).render()
        lines = text.splitlines()
        assert len(lines) == 5
        assert all(line.count("X") == 1 for line in lines)

    def test_to_array_is_a_copy(self, example_costas_5):
        array = CostasArray.from_permutation(example_costas_5)
        copy = array.to_array()
        copy[0] = 99
        assert array[0] == example_costas_5[0]
