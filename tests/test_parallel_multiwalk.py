"""Tests for the multiprocessing-based independent multi-walk solver."""

from __future__ import annotations

import pytest

from repro.core.params import ASParameters
from repro.costas.array import is_costas
from repro.exceptions import ParallelExecutionError
from repro.experiments.base import costas_factory
from repro.parallel.multiwalk import MultiWalkSolver


class TestSingleWorker:
    def test_inline_path_solves(self):
        solver = MultiWalkSolver(
            costas_factory(9), ASParameters.for_costas(9), n_workers=1, seed_root=1
        )
        outcome = solver.solve()
        assert outcome.solved
        assert outcome.n_workers == 1
        assert len(outcome.results) == 1
        assert is_costas(outcome.best.configuration)
        assert outcome.total_iterations == outcome.best.iterations
        assert len(outcome.seeds) == 1

    def test_explicit_seeds_are_used(self):
        solver = MultiWalkSolver(
            costas_factory(9),
            ASParameters.for_costas(9),
            n_workers=1,
            seeds=[1234],
        )
        outcome = solver.solve()
        assert outcome.seeds == [1234]
        assert outcome.best.seed == 1234


class TestValidation:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ParallelExecutionError):
            MultiWalkSolver(costas_factory(9), n_workers=0)

    def test_rejects_too_few_seeds(self):
        with pytest.raises(ParallelExecutionError):
            MultiWalkSolver(costas_factory(9), n_workers=4, seeds=[1, 2])


class TestMultiProcess:
    def test_two_workers_solve_and_terminate_early(self):
        solver = MultiWalkSolver(
            costas_factory(10),
            ASParameters.for_costas(10, check_period=8),
            n_workers=2,
            seed_root=7,
        )
        outcome = solver.solve(max_time=120.0)
        assert outcome.solved
        assert outcome.n_workers == 2
        assert len(outcome.results) == 2
        assert is_costas(outcome.best.configuration)
        # Every worker reports, and at least one of them actually solved.
        assert any(r.solved for r in outcome.results)
        assert all("walk_index" in r.extra for r in outcome.results)

    def test_parallel_helper_function(self):
        from repro import parallel_solve_costas

        outcome = parallel_solve_costas(9, n_workers=2, seed_root=3, max_time=120.0)
        assert outcome.solved


def _exit_without_reporting(*args, **kwargs):  # pragma: no cover - child body
    import os

    os._exit(3)


class TestDeadWorkerDetection:
    def test_partial_results_survive_a_dead_loser(self, monkeypatch):
        # One walk reports (and solves), the other is killed before reporting:
        # the solved outcome must be returned, with the gap recorded, instead
        # of being discarded by an exception.
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("requires the fork start method")
        import repro.parallel.multiwalk as mw

        real_worker = mw._worker

        def selective(factory, params, seed, walk_index, stop_event, queue, max_time):
            if walk_index == 0:
                real_worker(
                    factory, params, seed, walk_index, stop_event, queue, max_time
                )
            else:  # pragma: no cover - child body
                import os

                os._exit(3)

        monkeypatch.setattr(mw, "_worker", selective)
        solver = MultiWalkSolver(
            costas_factory(9),
            ASParameters.for_costas(9),
            n_workers=2,
            seed_root=1,
            mp_context="fork",
        )
        outcome = solver.solve(join_timeout=1.0)
        assert outcome.solved
        assert outcome.missing_walks == [1]
        assert len(outcome.results) == 1

    def test_worker_death_raises_listing_missing_walks(self, monkeypatch):
        # A worker that hard-crashes (os._exit, OOM kill) never puts anything
        # on the queue; solve() used to block forever on queue.get().  With
        # the fork start method the child inherits the monkeypatched module,
        # so every walk dies silently and there is nothing to salvage.
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("requires the fork start method")
        import repro.parallel.multiwalk as mw

        monkeypatch.setattr(mw, "_worker", _exit_without_reporting)
        solver = MultiWalkSolver(
            costas_factory(9),
            ASParameters.for_costas(9),
            n_workers=2,
            seed_root=1,
            mp_context="fork",
        )
        with pytest.raises(ParallelExecutionError) as excinfo:
            solver.solve(join_timeout=1.0)
        message = str(excinfo.value)
        assert "died without reporting" in message
        assert "[0, 1]" in message

    def test_deadline_backstop_when_worker_hangs(self, monkeypatch):
        # A worker that never reports but stays alive must trip the
        # max_time-derived deadline instead of blocking forever.
        import multiprocessing as mp
        import time as time_module

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("requires the fork start method")
        import repro.parallel.multiwalk as mw

        def _hang(*args, **kwargs):  # pragma: no cover - child body
            time_module.sleep(60)

        monkeypatch.setattr(mw, "_worker", _hang)
        # The mechanism is under test, not the production grace constant.
        monkeypatch.setattr(mw, "_STARTUP_ALLOWANCE", 0.5)
        solver = MultiWalkSolver(
            costas_factory(9),
            ASParameters.for_costas(9),
            n_workers=2,
            seed_root=1,
            mp_context="fork",
        )
        start = time_module.perf_counter()
        with pytest.raises(ParallelExecutionError) as excinfo:
            solver.solve(max_time=0.5, join_timeout=0.5)
        assert time_module.perf_counter() - start < 30
        assert "deadline" in str(excinfo.value)
