"""Tests for the multiprocessing-based independent multi-walk solver."""

from __future__ import annotations

import pytest

from repro.core.params import ASParameters
from repro.costas.array import is_costas
from repro.exceptions import ParallelExecutionError
from repro.experiments.base import costas_factory
from repro.parallel.multiwalk import MultiWalkSolver


class TestSingleWorker:
    def test_inline_path_solves(self):
        solver = MultiWalkSolver(
            costas_factory(9), ASParameters.for_costas(9), n_workers=1, seed_root=1
        )
        outcome = solver.solve()
        assert outcome.solved
        assert outcome.n_workers == 1
        assert len(outcome.results) == 1
        assert is_costas(outcome.best.configuration)
        assert outcome.total_iterations == outcome.best.iterations
        assert len(outcome.seeds) == 1

    def test_explicit_seeds_are_used(self):
        solver = MultiWalkSolver(
            costas_factory(9),
            ASParameters.for_costas(9),
            n_workers=1,
            seeds=[1234],
        )
        outcome = solver.solve()
        assert outcome.seeds == [1234]
        assert outcome.best.seed == 1234


class TestValidation:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ParallelExecutionError):
            MultiWalkSolver(costas_factory(9), n_workers=0)

    def test_rejects_too_few_seeds(self):
        with pytest.raises(ParallelExecutionError):
            MultiWalkSolver(costas_factory(9), n_workers=4, seeds=[1, 2])


class TestMultiProcess:
    def test_two_workers_solve_and_terminate_early(self):
        solver = MultiWalkSolver(
            costas_factory(10),
            ASParameters.for_costas(10, check_period=8),
            n_workers=2,
            seed_root=7,
        )
        outcome = solver.solve(max_time=120.0)
        assert outcome.solved
        assert outcome.n_workers == 2
        assert len(outcome.results) == 2
        assert is_costas(outcome.best.configuration)
        # Every worker reports, and at least one of them actually solved.
        assert any(r.solved for r in outcome.results)
        assert all("walk_index" in r.extra for r in outcome.results)

    def test_parallel_helper_function(self):
        from repro import parallel_solve_costas

        outcome = parallel_solve_costas(9, n_workers=2, seed_root=3, max_time=120.0)
        assert outcome.solved
